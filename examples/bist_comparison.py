#!/usr/bin/env python3
"""Structured self-test vs plain pseudorandom BIST (paper §3.5).

Grades the same fault universe against:

* the generated self-test program (template architecture, LFSR operand
  data, register masking, out wrappers); and
* raw 17-bit LFSR states applied as instruction words (the paper's
  pseudorandom BIST baseline).

at equal vector counts, then prints both coverage curves.  The structured
program wins by a wide margin because random words rarely decode into
instruction sequences that excite *and* observe the datapath.

Run:  python examples/bist_comparison.py
"""

from repro.baselines.pseudorandom import pseudorandom_bist_words
from repro.faults.coverage import coverage_curve
from repro.faults.hierarchical import HierarchicalFaultSimulator
from repro.harness.reporting import format_curve
from repro.metrics.table import build_metrics_table
from repro.selftest.generator import SelfTestGenerator
from repro.selftest.vectors import expand_program

N_VECTORS = 1200


def main() -> None:
    print("generating the self-test program ...")
    table = build_metrics_table(
        n_controllability_samples=80, n_observability_good=4
    )
    selftest = SelfTestGenerator(table=table).generate()
    iterations = max(1, N_VECTORS // len(selftest.program.loop_lines))
    self_words = expand_program(selftest.program, iterations)

    print(f"grading self-test ({len(self_words)} vectors) ...")
    self_result = HierarchicalFaultSimulator().run(self_words)
    self_report = self_result.coverage_report("self test")

    bist_words = pseudorandom_bist_words(len(self_words))
    print(f"grading pseudorandom BIST ({len(bist_words)} vectors) ...")
    bist_result = HierarchicalFaultSimulator().run(bist_words)
    bist_report = bist_result.coverage_report("pseudorandom BIST")

    print()
    print(self_report)
    print()
    print(bist_report)

    step = max(1, len(self_words) // 8)
    print("\nself-test coverage curve:")
    print(format_curve(coverage_curve(self_result.first_detect,
                                      len(self_words), step)))
    print("\npseudorandom BIST coverage curve:")
    print(format_curve(coverage_curve(bist_result.first_detect,
                                      len(bist_words), step)))
    ratio = self_report.fault_coverage / max(bist_report.fault_coverage,
                                             1e-9)
    print(f"\nself-test / BIST coverage ratio at equal vectors: {ratio:.1f}x")


if __name__ == "__main__":
    main()
