#!/usr/bin/env python3
"""Phase 3 enhancements: control-bit constraints and ATPG one-shots.

Reproduces the paper's §3.4 analysis interactively:

1. fault-simulate the shifter with each control-bit mode excluded — the
   "10"/"11" modes turn out discardable while "01" is load-bearing;
2. find the adder/subtracter's hardest faults, run PODEM on them, and
   synthesise the one-shot instruction sequences that deliver each ATPG
   pattern through the instruction set (the paper's "21 lines to test the
   adder with just one pattern").

Run:  python examples/constraint_analysis.py
"""

from repro.atpg.podem import Podem
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import collapse_faults
from repro.harness.reporting import format_table
from repro.rtl.arith import make_addsub
from repro.selftest.justify import synthesize_addsub_oneshot
from repro.selftest.phase3 import constraint_study, discardable_modes


def shifter_constraints() -> None:
    print("shifter control-bit constraint study (paper §3.4):")
    results = constraint_study("shifter", n_patterns=4096)
    rows = []
    for result in results:
        modes = "{" + ",".join(
            f"{m:02b}" for m in result.allowed_modes
        ) + "}"
        rows.append([modes, result.n_undetected,
                     f"{result.fault_coverage:.2%}"])
    print(format_table(["allowed modes", "undetected", "fault coverage"],
                       rows))
    modes = discardable_modes(results, loss_budget=10)
    pretty = ", ".join(f"{m:02b}" for m in modes)
    print(f"discardable modes (loss <= 10 faults): {pretty}")
    print("-> the metrics-table columns for those modes can be dropped,\n"
          "   exactly as the paper drops the shifter's '10'/'11' columns.\n")


def adder_oneshots() -> None:
    print("ATPG one-shot sequences for adder faults (paper §3.4):")
    netlist = make_addsub(18)
    sim = CombFaultSimulator(netlist)
    engine = Podem(netlist, backtrack_limit=3000)
    shown = 0
    for fault in collapse_faults(netlist).faults[::40]:
        result = engine.generate(fault)
        if not result.detected:
            continue
        sequence = synthesize_addsub_oneshot(
            fault, result.pattern_words(netlist), sim
        )
        if sequence is None:
            print(f"  {fault.describe(netlist)}: pattern not deliverable "
                  "through the ISA (the difficulty the paper warns about)")
            continue
        print(f"  {fault.describe(netlist)}: "
              f"{len(sequence.lines)}-instruction one-shot sequence")
        for line in sequence.lines:
            print(f"      {line.symbolic()}")
        shown += 1
        if shown == 2:
            break


def main() -> None:
    shifter_constraints()
    adder_oneshots()


if __name__ == "__main__":
    main()
