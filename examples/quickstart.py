#!/usr/bin/env python3
"""Quickstart: generate and grade a self-test program for the DSP core.

Runs the paper's whole flow end to end at laptop-friendly sample sizes:

1. measure instruction-level controllability/observability metrics
   (Table 2);
2. Phase 1 greedy covering + Phase 2 sequences → the Fig. 7-style looped
   self-test program;
3. expand the program through the template architecture (LFSR data fill,
   register masking) into concrete 17-bit test vectors;
4. fault-grade the vectors with the hierarchical fault simulator and
   print the coverage report and golden MISR signature.

Run:  python examples/quickstart.py
"""

from repro.faults.hierarchical import HierarchicalFaultSimulator
from repro.metrics.table import build_metrics_table
from repro.selftest.generator import SelfTestGenerator
from repro.selftest.vectors import expand_program, run_with_misr

ITERATIONS = 60


def main() -> None:
    print("measuring instruction-level testability metrics ...")
    table = build_metrics_table(
        n_controllability_samples=80, n_observability_good=4
    )
    print(f"  {len(table.rows)} instruction variants x "
          f"{len(table.columns)} component-mode columns")

    print("\nrunning Phase 1 / Phase 2 program generation ...")
    selftest = SelfTestGenerator(table=table).generate()
    print(selftest.phase1.summary())
    print(selftest.phase2.summary())

    print("\nself-test program (paper Fig. 7 style):")
    print(selftest.program.render())

    words = expand_program(selftest.program, ITERATIONS)
    golden = run_with_misr(words)
    print(f"\n{len(words)} test vectors "
          f"({ITERATIONS} loop iterations x "
          f"{len(selftest.program.loop_lines)} instructions)")
    print(f"golden MISR signature: 0x{golden.signature:02x}")

    print("\nfault-grading (hierarchical fault simulation) ...")
    result = HierarchicalFaultSimulator().run(words)
    report = result.coverage_report("self test")
    print(report)
    seconds = report.test_time_seconds()
    print(f"test time at the paper's 500 MHz clock: {seconds * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
