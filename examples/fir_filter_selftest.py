#!/usr/bin/env python3
"""A DSP workload plus in-field self-test on the same core.

The paper motivates self-test for cores embedded in SoCs that spend their
life running signal-processing kernels.  This example:

1. runs a real 4-tap FIR filter on the DSP core (MAC instructions over
   4.4 fixed-point samples) and checks it against a float reference;
2. runs the self-test program as it would run in the field — between
   workload bursts — compacting responses into a MISR;
3. injects a stuck-at fault into the register file and shows that the
   *workload still looks plausible* while the self-test signature catches
   the defect (the reason structured self-test exists).

Run:  python examples/fir_filter_selftest.py
"""

import random

from repro.bist.misr import Misr
from repro.bist.template import RandomLoad
from repro.dsp.core import DspCore
from repro.dsp.fixedpoint import float_to_q44, q44_to_float
from repro.dsp.isa import Instruction, Opcode, encode
from repro.selftest.program import TestProgram
from repro.selftest.vectors import expand_program

TAPS = [0.5, 0.25, -0.125, 0.0625]


def fir_program(samples, taps):
    """Assemble an N-tap FIR over ``samples`` using MACA instructions.

    Registers: R1..R4 hold the taps, R5..R8 the sliding window; each
    output is AccA after len(taps) MACs, observed with ``outa``.
    """
    program = []
    for i, tap in enumerate(taps):
        program.append(Instruction(Opcode.LDI, imm=float_to_q44(tap),
                                   dest=1 + i))
    window = [0.0] * len(taps)
    for sample in samples:
        window = [sample] + window[:-1]
        for i, value in enumerate(window):
            program.append(Instruction(Opcode.LDI, imm=float_to_q44(value),
                                       dest=5 + i))
        # acc <- x[0]*h[0]; acc += x[i]*h[i]
        program.append(Instruction(Opcode.MPYA, rega=5, regb=1, dest=12))
        for i in range(1, len(taps)):
            program.append(Instruction(Opcode.MACA_ADD, rega=5 + i,
                                       regb=1 + i, dest=12))
        program.append(Instruction(Opcode.OUTA))
    return program


def run_fir(core, samples):
    program = fir_program(samples, TAPS)
    words = [encode(i) for i in program]
    words += [encode(Instruction(Opcode.NOP))] * 4
    outputs = []
    for word in words:
        result = core.step(word)
        if result.out_valid:
            outputs.append(q44_to_float(result.out_value))
    return outputs


def reference_fir(samples, taps):
    window = [0.0] * len(taps)
    outputs = []
    for sample in samples:
        window = [sample] + window[:-1]
        outputs.append(sum(x * h for x, h in zip(window, taps)))
    return outputs


def selftest_signature(core):
    """A compact in-field self-test burst on the given core."""
    program = TestProgram()
    program.add(RandomLoad(0))
    program.add(RandomLoad(1))
    program.add(Instruction(Opcode.MPYA, rega=0, regb=1, dest=2))
    program.add(Instruction(Opcode.MACB_ADD, rega=0, regb=1, dest=3))
    program.add(Instruction(Opcode.NOP))
    program.add(Instruction(Opcode.NOP))
    program.add(Instruction(Opcode.OUT, regb=2))
    program.add(Instruction(Opcode.OUT, regb=3))
    program.add(Instruction(Opcode.OUTA))
    program.add(Instruction(Opcode.OUTB))
    words = expand_program(program, 40)
    misr = Misr(8)
    nop = encode(Instruction(Opcode.NOP))
    for word in list(words) + [nop] * 4:
        misr.absorb(core.step(word).port)
    return misr.signature


def main() -> None:
    rng = random.Random(7)
    samples = [rng.uniform(-2, 2) for _ in range(12)]

    print("4-tap FIR on the DSP core (4.4 fixed point):")
    got = run_fir(DspCore(), samples)
    want = reference_fir(samples, TAPS)
    for g, w in zip(got, want):
        print(f"  core {g:+8.4f}   reference {w:+8.4f}   "
              f"err {abs(g - w):.4f}")
    worst = max(abs(g - w) for g, w in zip(got, want))
    print(f"worst error {worst:.4f} (quantisation bound ~{8/16:.3f})")

    print("\nself-test burst on a fault-free core:")
    golden = selftest_signature(DspCore())
    print(f"  golden MISR signature: 0x{golden:02x}")

    # A stuck bit in R6 (one of the FIR window registers).
    stuck = {("reg", 6): (0xFF & ~0x04, 0x00)}
    faulty = DspCore(stuck_bits=stuck)
    fir_out = run_fir(faulty, samples)
    worst_faulty = max(abs(g - w) for g, w in zip(fir_out, want))
    print("\nsame flow with R6 bit2 stuck at 0:")
    print(f"  FIR worst error {worst_faulty:.4f} "
          "(may pass for quantisation noise!)")
    signature = selftest_signature(DspCore(stuck_bits=stuck))
    print(f"  self-test signature: 0x{signature:02x} "
          + ("(MISMATCH -> defect caught)" if signature != golden
             else "(alias)"))


if __name__ == "__main__":
    main()
