#!/usr/bin/env python3
"""Diagnosing a failing part from its self-test response.

Production flow: every part runs the self-test and compares one MISR
signature.  For failing parts, the tester captures the raw output stream
once and effect-cause diagnosis names the defect:

1. build the fault dictionary (one fault-simulation pass of the self-test
   stream);
2. play three "defective parts" (a stuck register-file bit, a stuck
   accumulator bit, a stuck gate inside the limiter);
3. diagnose each from its output stream alone and check the culprit is
   ranked first.

Run:  python examples/fault_diagnosis.py
"""

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.isa import Instruction, Opcode
from repro.faults.diagnosis import FaultDiagnoser
from repro.faults.hierarchical import (
    ComponentFault,
    DspFaultUniverse,
    StorageFault,
)


def build_diagnoser() -> FaultDiagnoser:
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACB_SUB, rega=0, regb=1, dest=3),
        Instruction(Opcode.OUT, regb=3),
        Instruction(Opcode.SHIFTA, rega=0, dest=4),
        Instruction(Opcode.OUT, regb=4),
        Instruction(Opcode.OUTA),
        Instruction(Opcode.OUTB),
    ]
    words = TemplateArchitecture(program).expand(15)
    universe = DspFaultUniverse(
        components=["mux7", "macreg", "limiter", "acca", "addsub"],
    )
    print(f"building the fault dictionary over {len(words)} vectors / "
          f"{len(universe.all_faults())} faults ...")
    return FaultDiagnoser(words, universe=universe)


def main() -> None:
    diagnoser = build_diagnoser()
    report = diagnoser.dictionary.coverage_report("dictionary stream")
    print(f"dictionary coverage: {report.fault_coverage:.1%}\n")

    def first_detected(predicate):
        return next(f for f in diagnoser.dictionary.detected
                    if predicate(f))

    defects = [
        first_detected(lambda f: isinstance(f, StorageFault)
                       and f.target[0] == "reg"),
        StorageFault(("acca",), "q", 8, 1),
        first_detected(lambda f: isinstance(f, ComponentFault)
                       and f.component == "limiter"),
    ]
    for defect in defects:
        observed = diagnoser.faulty_response(defect)
        if observed == diagnoser.golden:
            print(f"{defect.describe()}: not excited by this stream "
                  "(would escape; lengthen the self-test)")
            continue
        ranked = diagnoser.diagnose(observed, top_k=5)
        print(f"defective part with {defect.describe()}:")
        for rank, candidate in enumerate(ranked, 1):
            marker = "  <- exact explanation" if candidate.score == 1.0 \
                else ""
            print(f"  #{rank} {candidate.describe()}{marker}")
        exact = [c for c in ranked if c.score == 1.0]
        print(f"  -> {len(exact)} fault(s) explain the response exactly "
              "(equivalent under this test set)\n")


if __name__ == "__main__":
    main()
