"""Ablations — what each piece of the method buys.

The paper motivates several design elements without isolating them; these
ablations quantify each on our core:

* **register masking (LFSR2)** — "exercising a different group of
  registers each iteration through the test program": without masking the
  loop touches a fixed register subset and register-file coverage drops;
* **the `out` wrappers** — "used after the instruction to ensure that any
  faults detected by the instruction are propagated to an observable
  output": stripping them collapses coverage of everything behind MUX7;
* **the two-tier propagation** of the hierarchical fault simulator —
  single-cycle injection alone under-estimates coverage (errors masked by
  limiter saturation until they accumulate), which would misgrade the
  paper's experiments.
"""

from repro.bist.template import RandomLoad
from repro.dsp.isa import Instruction, Opcode
from repro.faults.hierarchical import HierarchicalFaultSimulator
from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.reporting import format_table
from repro.selftest.program import TestProgram
from repro.selftest.vectors import expand_program


def strip_out_wrappers(program: TestProgram) -> TestProgram:
    stripped = TestProgram()
    for line in program.lines:
        if isinstance(line.item, Instruction) \
                and line.item.opcode in (Opcode.OUT, Opcode.OUTA,
                                         Opcode.OUTB) \
                and line.phase == "wrapper":
            continue
        stripped.lines.append(line)
    return stripped


def grade(program: TestProgram, iterations: int, mask_registers=True,
          simulator=None):
    words = expand_program(program, iterations,
                           mask_registers=mask_registers)
    sim = simulator if simulator is not None else \
        HierarchicalFaultSimulator()
    return sim.run(words).coverage_report(), len(words)


def test_ablations(benchmark, selftest):
    iterations = scaled(25, 150, 1500)

    def run_all():
        base, n = grade(selftest.program, iterations)
        no_mask, _ = grade(selftest.program, iterations,
                           mask_registers=False)
        no_out_program = strip_out_wrappers(selftest.program)
        no_out_iters = max(
            1, n // max(1, len(no_out_program.loop_lines))
        )
        no_out, _ = grade(no_out_program, no_out_iters)
        single_tier, _ = grade(
            selftest.program, iterations,
            simulator=HierarchicalFaultSimulator(max_continuous_starts=0),
        )
        return base, no_mask, no_out, single_tier, n

    base, no_mask, no_out, single_tier, n = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    print()
    rows = [
        ["full method", f"{base.fault_coverage:.2%}",
         f"{base.by_component['regfile'][0]}/"
         f"{base.by_component['regfile'][1]}"],
        ["no register masking (LFSR2 off)",
         f"{no_mask.fault_coverage:.2%}",
         f"{no_mask.by_component['regfile'][0]}/"
         f"{no_mask.by_component['regfile'][1]}"],
        ["no out wrappers", f"{no_out.fault_coverage:.2%}", "-"],
        ["single-tier propagation (measurement ablation)",
         f"{single_tier.fault_coverage:.2%}", "-"],
    ]
    print(format_table(
        ["configuration", f"FC @ ~{n} vectors", "regfile"], rows
    ))

    # Masking exists to spread register usage: the register file loses
    # coverage without it.
    assert no_mask.by_component["regfile"][0] \
        < base.by_component["regfile"][0]
    # Out wrappers are the propagation backbone.  (The gap narrows as
    # iterations grow — Phase 2's outa/outb observation tails remain in
    # the stripped program — but stays several points at any scale.)
    assert no_out.fault_coverage < base.fault_coverage - 0.05
    # Tier-2 (continuous injection) recovers real coverage that
    # single-cycle injection misses.  (The residual shrinks with longer
    # runs — more single-shot start attempts — but never reaches zero:
    # saturation-masked faults need error accumulation.)
    assert single_tier.fault_coverage <= base.fault_coverage
    assert base.n_detected - single_tier.n_detected >= 1

    REGISTRY.record(ExperimentResult(
        experiment_id="A1",
        description="ablations: masking / out wrappers / propagation tier",
        paper_value="(motivations in §2.3: masking spreads registers, "
                    "wrappers propagate)",
        measured_value=(
            f"full {base.fault_coverage:.1%}; no-mask regfile "
            f"{no_mask.by_component['regfile'][0]}/"
            f"{no_mask.by_component['regfile'][1]} vs "
            f"{base.by_component['regfile'][0]}/"
            f"{base.by_component['regfile'][1]}; no-out "
            f"{no_out.fault_coverage:.1%}; single-tier "
            f"{single_tier.fault_coverage:.1%}"
        ),
    ))
