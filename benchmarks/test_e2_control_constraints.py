"""E2 — §3.4: shifter fault coverage under control-bit constraints.

Paper (their shifter, 2028 faults): excluding "11" leaves 3 faults
undetected (99.86%), excluding "00" 59 (97.21%), excluding "01" 1829
(13.4%), excluding "10" 1 (99.95%), allowing only {"00","01"} 5 (99.76%).
The conclusion — modes "10"/"11" are discardable, "01" is load-bearing —
must reproduce on our shifter.
"""

from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.reporting import format_table
from repro.selftest.phase3 import constraint_study, discardable_modes


def test_shifter_constraints(benchmark):
    results = benchmark.pedantic(
        constraint_study,
        kwargs=dict(component="shifter",
                    n_patterns=scaled(1024, 8192, 32768)),
        rounds=1, iterations=1,
    )

    print()
    rows = [
        ["{" + ",".join(f"{m:02b}" for m in r.allowed_modes) + "}",
         r.n_faults, r.n_undetected, f"{r.fault_coverage:.2%}"]
        for r in results
    ]
    print(format_table(["allowed modes", "faults", "undetected",
                        "fault coverage"], rows))
    modes = discardable_modes(results, loss_budget=10)
    print("discardable modes:", ", ".join(f"{m:02b}" for m in modes))

    by_modes = {r.allowed_modes: r for r in results}
    baseline = by_modes[(0, 1, 2, 3)]
    loss = {
        excl: by_modes[tuple(m for m in (0, 1, 2, 3) if m != excl)]
        .n_undetected - baseline.n_undetected
        for excl in (0, 1, 2, 3)
    }
    # Shape: excluding 01 is catastrophic; 10 and 11 are nearly free.
    assert loss[1] > 20 * max(loss[2], loss[3], 1)
    assert loss[2] <= 8 and loss[3] <= 8
    only_00_01 = by_modes[(0, 1)].n_undetected - baseline.n_undetected
    assert only_00_01 <= 12
    assert 2 in modes and 3 in modes and 1 not in modes

    REGISTRY.record(ExperimentResult(
        experiment_id="E2",
        description="shifter control-bit constraint study",
        paper_value="excl 10/11: -1/-3 faults; excl 01: -1829 (13.4% FC); "
                    "only 00+01: -5",
        measured_value=(
            f"excl 10/11: -{loss[2]}/-{loss[3]}; excl 01: -{loss[1]} "
            f"({by_modes[(0, 2, 3)].fault_coverage:.1%} FC); "
            f"only 00+01: -{only_00_01}"
        ),
    ))
