"""Shared fixtures for the per-artefact benchmark suite.

Workload sizes follow ``REPRO_SCALE`` (quick / default / full); see
``repro.harness.experiments.scaled``.  The session summary prints the
paper-vs-measured table collected in the experiment registry — the same
table EXPERIMENTS.md records.
"""

import pytest

from repro.harness.experiments import REGISTRY, scaled
from repro.harness.perf import TRAJECTORY
from repro.metrics.table import build_metrics_table
from repro.selftest.generator import SelfTestGenerator


@pytest.fixture(scope="session")
def metrics_table():
    """The Table 2 metrics table at the active scale."""
    return build_metrics_table(
        n_controllability_samples=scaled(40, 150, 400),
        n_observability_good=scaled(2, 8, 16),
    )


@pytest.fixture(scope="session")
def selftest(metrics_table):
    """The generated self-test program (phases 1-2) at the active scale."""
    return SelfTestGenerator(table=metrics_table).generate()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if TRAJECTORY.samples:
        path = TRAJECTORY.write()
        terminalreporter.write_line(
            f"campaign perf trajectory: {len(TRAJECTORY.samples)} "
            f"sample(s) -> {path}"
        )
    if not REGISTRY.results:
        return
    terminalreporter.write_sep("=", "paper vs measured (experiment registry)")
    terminalreporter.write_line(REGISTRY.markdown_table())
