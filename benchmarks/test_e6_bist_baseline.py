"""E6 — §3.5: plain pseudorandom BIST vs the structured self-test.

Paper: the BIST baseline feeds all 131,071 states of a 17-bit LFSR as raw
instruction words — "the LFSR does not take into account the core's
present state or the core's behavior".  The structured self-test program
achieves far higher coverage at far fewer vectors.
"""

from repro.baselines.pseudorandom import pseudorandom_bist_words
from repro.faults.coverage import coverage_curve
from repro.faults.hierarchical import HierarchicalFaultSimulator
from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.reporting import format_curve, format_table
from repro.selftest.vectors import expand_program


def test_bist_vs_selftest(benchmark, selftest):
    n_vectors = scaled(400, 4000, 131071)

    def run_both():
        bist_words = pseudorandom_bist_words(n_vectors)
        bist = HierarchicalFaultSimulator().run(bist_words)
        iterations = max(1, n_vectors // len(selftest.program.loop_lines))
        self_words = expand_program(selftest.program, iterations)
        self_result = HierarchicalFaultSimulator().run(self_words)
        return bist, bist_words, self_result, self_words

    bist, bist_words, self_result, self_words = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    bist_report = bist.coverage_report("pseudorandom BIST")
    self_report = self_result.coverage_report("self test")

    print()
    print(format_table(
        ["scheme", "vectors", "fault coverage"],
        [["pseudorandom BIST", len(bist_words),
          f"{bist_report.fault_coverage:.2%}"],
         ["structured self-test", len(self_words),
          f"{self_report.fault_coverage:.2%}"]],
    ))
    step = max(1, len(bist_words) // 8)
    print("\nBIST coverage curve:")
    print(format_curve(coverage_curve(bist.first_detect, len(bist_words),
                                      step)))

    # Shape: the structured program dominates at equal-or-fewer vectors.
    assert self_report.fault_coverage > bist_report.fault_coverage + 0.15
    assert bist_report.fault_coverage < 0.85

    REGISTRY.record(ExperimentResult(
        experiment_id="E6",
        description="pseudorandom BIST baseline",
        paper_value="17-bit LFSR, all 131,071 vectors; clearly below the "
                    "self-test scheme",
        measured_value=(
            f"BIST {bist_report.fault_coverage:.2%} vs self-test "
            f"{self_report.fault_coverage:.2%} at ~{n_vectors} vectors"
        ),
    ))
