"""F7 (+F2/F3) — Figure 7: the assembled self-test program after Phase 2,
and the template architecture that executes it."""

from repro.bist.lfsr import Lfsr
from repro.bist.template import RandomLoad
from repro.dsp.isa import Instruction, decode
from repro.harness.experiments import REGISTRY, ExperimentResult
from repro.selftest.vectors import expand_program, run_with_misr


def test_generated_program(benchmark, selftest):
    program = benchmark.pedantic(lambda: selftest.program, rounds=1,
                                 iterations=1)

    print()
    print(program.render())
    print(f"\n{len(program.loop_lines)} loop instructions "
          f"(paper's program: 34)")
    print(f"thresholds used: C_th={selftest.thresholds_used[0]:.2f}, "
          f"O_th={selftest.thresholds_used[1]:.2f}")

    # Figure 7's structural facts.
    assert not selftest.phase2.still_uncovered
    # The program starts by loading pseudorandom operands (ld rnd).
    assert isinstance(program.lines[0].item, RandomLoad)
    # It contains accumulator randomisation sequences and observation outs.
    comments = " ".join(line.comment for line in program.lines)
    assert "randomize acc" in comments
    assert "observe result" in comments
    assert "Output random value" in comments
    # Program length is the same order as the paper's 34 instructions.
    assert 15 <= len(program.loop_lines) <= 80

    # The template architecture instantiates it (Fig. 2): ld-rnd trapping
    # fills immediates from LFSR1, register fields are masked by LFSR2.
    words = expand_program(program, 8, lfsr1=Lfsr(16, seed=0xACE1),
                           lfsr2=Lfsr(8, seed=0x5A))
    imms = [decode(w).imm for w in words
            if decode(w).opcode.name == "LDI"]
    assert len(set(imms)) > 3  # pseudorandom data differs across loops
    golden = run_with_misr(words)
    print(f"golden MISR signature over {golden.n_vectors} vectors: "
          f"0x{golden.signature:02x}")

    REGISTRY.record(ExperimentResult(
        experiment_id="F7",
        description="Fig. 7: assembled self-test program",
        paper_value="34-instruction loop; randomisation seqs + wrappers",
        measured_value=(
            f"{len(program.loop_lines)}-instruction loop; full column "
            f"coverage after Phase 2"
        ),
    ))
