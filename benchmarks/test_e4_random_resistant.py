"""E4 — §3.4: ATPG one-shot sequences for random-resistant faults.

Paper: ATPG targets the faults the looped program leaves behind; the
delivery sequences live outside the loop and run once ("It took 21 lines
to test the adder with just one pattern"), and justifying some patterns
through the instruction set "may be very hard".
"""

from repro.atpg.podem import Podem
from repro.atpg.random_resistant import find_random_resistant
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import collapse_faults
from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.reporting import format_table
from repro.rtl.arith import make_addsub
from repro.rtl.shifter import make_shifter
from repro.selftest.justify import synthesize_addsub_oneshot
from repro.selftest.phase3 import append_one_shots
from repro.selftest.program import TestProgram


def run_e4():
    # 1. Identify random-resistant faults per component.
    shifter = make_shifter()
    resistant_shifter = find_random_resistant(
        shifter, n_patterns=scaled(1024, 8192, 65536)
    )
    addsub = make_addsub(18)
    # The adder is easily random-testable, so take its hardest faults by
    # sampling the collapsed list and targeting each with PODEM.
    sample = collapse_faults(addsub).faults[:: scaled(40, 12, 4)]

    # 2. PODEM patterns + ISA delivery sequences for the adder sample.
    engine = Podem(addsub, backtrack_limit=4000)
    sim = CombFaultSimulator(addsub)
    sequences, undeliverable = [], 0
    for fault in sample:
        result = engine.generate(fault)
        if not result.detected:
            continue
        sequence = synthesize_addsub_oneshot(
            fault, result.pattern_words(addsub), sim
        )
        if sequence is None:
            undeliverable += 1
        else:
            sequences.append(sequence)
    return resistant_shifter, shifter, sequences, undeliverable, len(sample)


def test_random_resistant_oneshots(benchmark):
    (resistant_shifter, shifter, sequences, undeliverable,
     n_sampled) = benchmark.pedantic(run_e4, rounds=1, iterations=1)

    print()
    print(f"shifter random-resistant faults "
          f"(survive random patterns): {len(resistant_shifter)}")
    rows = [[s.fault.describe(make_addsub(18)), len(s.lines)]
            for s in sequences[:8]]
    print(format_table(["adder fault", "one-shot length (lines)"], rows))
    print(f"delivered {len(sequences)}/{n_sampled} sampled adder patterns; "
          f"{undeliverable} not justifiable through the ISA "
          f"(the difficulty the paper reports)")
    if sequences:
        print("\nexample delivery sequence:")
        for line in sequences[0].lines:
            print("   ", line.symbolic())

    # One-shots attach outside the loop.
    program = TestProgram()
    from repro.dsp.isa import Instruction, Opcode
    program.add(Instruction(Opcode.NOP))
    extended = append_one_shots(program, sequences)
    assert len(extended.one_shot_lines) == sum(len(s.lines)
                                               for s in sequences)
    assert extended.n_vectors(100) == \
        len(extended.one_shot_lines) + 100

    # Shape: sequences exist, have the paper's order of length, and some
    # patterns are genuinely undeliverable.
    assert sequences, "no deliverable one-shot sequences found"
    lengths = [len(s.lines) for s in sequences]
    assert all(5 <= n <= 30 for n in lengths)  # paper: 21 lines

    REGISTRY.record(ExperimentResult(
        experiment_id="E4",
        description="random-resistant ATPG one-shots",
        paper_value="21-line delivery per adder pattern; some patterns "
                    "very hard to justify",
        measured_value=(
            f"{len(sequences)} sequences of {min(lengths)}-{max(lengths)} "
            f"lines; {undeliverable}/{n_sampled} not deliverable"
        ),
    ))
