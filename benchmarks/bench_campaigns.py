#!/usr/bin/env python
"""Serial-vs-parallel campaign sweep → ``BENCH_campaigns.json``.

Runs the two campaign-heavy experiments — E1 (hierarchical fault
grading of the generated self-test program) and E5 (the whole-core
sequential ATPG baseline) — once on the serial backend and once per
requested worker count, and records wall clock, units/second, shared
compile/trace cache hit rates and the speedup over serial for each.

Workload sizes follow ``REPRO_SCALE`` (quick / default / full), like
the benchmark suite.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_campaigns.py --jobs 4
    PYTHONPATH=src REPRO_SCALE=quick python benchmarks/bench_campaigns.py

The artefact is honest by construction: every number in the JSON is
measured on the machine that wrote it (CPU count included in the
context block), not asserted.
"""

from __future__ import annotations

import argparse
import time

from repro import obs
from repro.harness.experiments import scaled
from repro.harness.perf import BENCH_FILENAME, PerfTrajectory, cache_delta
from repro.runtime.cache import cache_stats, clear_caches
from repro.runtime.campaigns import AtpgBaselineCampaign, HierarchicalCampaign
from repro.runtime.pool import resolve_jobs


def measure(trajectory, experiment, label, jobs, build):
    """Time one campaign run and record its sample.

    Runs under a profile-only observability session, so the sample's
    ``meta`` carries the per-phase wall-clock breakdown
    (``CampaignReport.timings``) alongside the aggregate cache rates.
    """
    clear_caches()
    before = cache_stats()
    campaign = build(jobs)
    start = time.perf_counter()
    with obs.enabled_session(trace=False, metrics=False, profile=True,
                             seed=2004):
        outcome = campaign.run()
    elapsed = time.perf_counter() - start
    counts = outcome.report.counts()
    sample = trajectory.record(
        experiment=experiment, label=label, jobs=campaign.runner.jobs,
        units=counts["executed"], wall_seconds=round(elapsed, 3),
        cache=cache_delta(before, cache_stats()),
        degraded=counts["degraded"], quarantined=counts["quarantined"],
        timings=outcome.report.timings,
    )
    print(f"  {label:<24} {elapsed:8.2f}s  "
          f"{sample.units_per_second:8.1f} units/s  "
          f"(trace hit rate {sample.cache['trace_hit_rate']:.0%})")
    return sample


def selftest_words():
    """The E1 workload: the generated self-test program, expanded."""
    from repro.metrics.table import build_metrics_table
    from repro.selftest.generator import SelfTestGenerator
    from repro.selftest.vectors import expand_program

    table = build_metrics_table(
        n_controllability_samples=scaled(40, 150, 400),
        n_observability_good=scaled(2, 8, 16),
    )
    selftest = SelfTestGenerator(table=table).generate()
    return expand_program(selftest.program, scaled(40, 400, 6000))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default="auto",
                        help="parallel worker counts to sweep, comma-"
                             "separated (integers or 'auto'; default auto)")
    parser.add_argument("--output", default=BENCH_FILENAME,
                        help=f"artefact path (default {BENCH_FILENAME})")
    args = parser.parse_args(argv)
    sweep = []
    for token in str(args.jobs).split(","):
        jobs = resolve_jobs(token.strip())
        if jobs > 1 and jobs not in sweep:
            sweep.append(jobs)

    trajectory = PerfTrajectory()

    print("E1: self-test fault grading (hierarchical campaign)")
    words = selftest_words()
    build_e1 = lambda jobs: HierarchicalCampaign(words, jobs=jobs)  # noqa: E731
    measure(trajectory, "E1", "grade jobs=1", 1, build_e1)
    for jobs in sweep:
        measure(trajectory, "E1", f"grade jobs={jobs}", jobs, build_e1)

    print("E5: sequential ATPG baseline campaign")
    build_e5 = lambda jobs: AtpgBaselineCampaign(  # noqa: E731
        n_frames=scaled(4, 5, 8),
        backtrack_limit=scaled(40, 300, 1000),
        fault_sample=scaled(8, 60, 300),
        jobs=jobs,
    )
    measure(trajectory, "E5", "atpg jobs=1", 1, build_e5)
    for jobs in sweep:
        measure(trajectory, "E5", f"atpg jobs={jobs}", jobs, build_e5)

    path = trajectory.write(args.output)   # fills speedup_vs_serial
    for sample in trajectory.samples:
        if sample.speedup_vs_serial is not None:
            print(f"{sample.experiment} {sample.label}: "
                  f"{sample.speedup_vs_serial:.2f}x vs serial")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
