"""E3 — §3.4: execution-frequency boosting shortens the test.

Paper: repeating the shifter/adder instructions inside the loop made
coverage rise faster — the enhanced program needed only 27,346 vectors to
beat what the original achieved with 204,000, and reached 98.42% at full
length.

We grade the original and the boosted programs over equal vector budgets
and compare (a) the vectors needed to reach a common coverage target and
(b) the final coverage.
"""

from repro.faults.coverage import coverage_curve
from repro.faults.hierarchical import HierarchicalFaultSimulator
from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.reporting import format_table
from repro.selftest.phase3 import boost_frequency, slow_components
from repro.selftest.vectors import expand_program


def vectors_to_reach(first_detect, n_vectors, target):
    curve = coverage_curve(first_detect, n_vectors,
                           step=max(1, n_vectors // 200))
    for x, y in curve:
        if y >= target:
            return x
    return None


def test_frequency_boost(benchmark, selftest):
    budget = scaled(600, 8000, 204000)

    def run_both():
        base_iters = max(1, budget // len(selftest.program.loop_lines))
        base_words = expand_program(selftest.program, base_iters)
        base = HierarchicalFaultSimulator().run(base_words)

        # The paper's selection rule: fault simulation identifies the
        # slow-to-cover components (it found the shifter and adder).
        targets = slow_components(base, max_components=2)
        boosted_program = boost_frequency(
            selftest.program, components=targets, repeats=3
        )
        boosted_iters = max(1, budget // len(boosted_program.loop_lines))
        boosted_words = expand_program(boosted_program, boosted_iters)
        boosted = HierarchicalFaultSimulator().run(boosted_words)
        return base, base_words, boosted, boosted_words, targets

    base, base_words, boosted, boosted_words, targets = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print(f"\nfault-simulation-selected boost targets: {targets}")
    base_report = base.coverage_report("original")
    boosted_report = boosted.coverage_report("boosted")

    # Vectors each program needs to reach a common early target.
    target = min(base_report.fault_coverage,
                 boosted_report.fault_coverage) * 0.98
    base_need = vectors_to_reach(base.first_detect, len(base_words), target)
    boosted_need = vectors_to_reach(boosted.first_detect,
                                    len(boosted_words), target)

    print()
    print(format_table(
        ["program", "vectors", "final FC", f"vectors to {target:.1%}"],
        [["original", len(base_words),
          f"{base_report.fault_coverage:.2%}", base_need],
         ["boosted", len(boosted_words),
          f"{boosted_report.fault_coverage:.2%}", boosted_need]],
    ))
    shifter_base = base_report.by_component["shifter"]
    shifter_boost = boosted_report.by_component["shifter"]
    print(f"shifter coverage: original {shifter_base[0]}/{shifter_base[1]}"
          f" vs boosted {shifter_boost[0]}/{shifter_boost[1]}")

    # Shape: the boosted program's coverage is at least on par and it
    # reaches the common target with fewer vectors (paper: 27,346 vs
    # 204,000 — a large factor; we assert the direction and a margin).
    assert boosted_report.fault_coverage >= base_report.fault_coverage - 0.01
    assert base_need is not None and boosted_need is not None
    assert boosted_need <= base_need * 1.05

    REGISTRY.record(ExperimentResult(
        experiment_id="E3",
        description="execution-frequency boosting",
        paper_value="27,346 vectors beat the original's 204,000; "
                    "98.42% final FC",
        measured_value=(
            f"boosted reaches {target:.1%} in {boosted_need} vs "
            f"{base_need} vectors; final {boosted_report.fault_coverage:.2%}"
            f" vs {base_report.fault_coverage:.2%}"
        ),
    ))
