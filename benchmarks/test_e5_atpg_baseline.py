"""E5 — §3.5: whole-core sequential ATPG does badly.

Paper: "we generated test patterns with the Tetramax ATPG tool.  The test
only gave us an 8.51% fault coverage.  Because our core is a relatively
complex circuit, it is just too hard for the ATPG tool to determine good
sequential test patterns."

We run time-frame-expansion PODEM over a deterministic sample of the flat
core's collapsed fault list.  The expected *shape* is a fault coverage far
below the self-test program's — dominated by aborts on faults whose
excitation needs instruction sequences the gate-level view cannot see.
"""

import time

from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.perf import TRAJECTORY, cache_delta
from repro.runtime.cache import cache_stats
from repro.runtime.campaigns import AtpgBaselineCampaign


def test_sequential_atpg_baseline(benchmark):
    campaign = AtpgBaselineCampaign(
        n_frames=scaled(4, 5, 8),
        backtrack_limit=scaled(40, 300, 1000),
        fault_sample=scaled(8, 60, 300),
        jobs=None,                      # honours REPRO_JOBS
    )
    cache_before = cache_stats()
    start = time.perf_counter()
    outcome = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    TRAJECTORY.record(
        experiment="E5", label=f"atpg jobs={campaign.runner.jobs}",
        jobs=campaign.runner.jobs,
        units=outcome.report.counts()["executed"],
        wall_seconds=round(time.perf_counter() - start, 3),
        cache=cache_delta(cache_before, cache_stats()),
    )
    result = outcome.result

    print()
    print(f"frames: {result.n_frames}, sampled faults: {result.n_faults}")
    print(f"detected: {result.n_detected} "
          f"(random phase {result.n_detected_random_phase}, "
          f"deterministic {result.n_detected - result.n_detected_random_phase})"
          f"  untestable-within-frames: {result.n_untestable_within_frames}"
          f"  aborted: {result.n_aborted}")
    print(f"fault coverage: {result.fault_coverage:.2%} "
          f"(paper with Tetramax: 8.51%)")
    if result.patterns:
        print("example generated frame sequence:",
              [format(w, '017b') for w in result.patterns[0]])

    # Shape: sequential ATPG collapses on the pipelined core — the bulk of
    # the sample aborts, and the little coverage achieved comes from the
    # random-pattern phase, not the deterministic engine.
    assert result.fault_coverage < 0.25
    assert result.n_aborted + result.n_untestable_within_frames \
        >= 0.6 * result.n_faults

    REGISTRY.record(ExperimentResult(
        experiment_id="E5",
        description="whole-core sequential ATPG baseline",
        paper_value="8.51% fault coverage (Tetramax)",
        measured_value=(
            f"{result.fault_coverage:.2%} on a {result.n_faults}-fault "
            f"sample ({result.n_frames} frames; "
            f"{result.n_aborted} aborted)"
        ),
        campaign_counts=outcome.report.counts(),
    ))


def test_e5_guided_backtrace_reduces_backtracks(benchmark):
    """ISSUE 8 acceptance gate: the SCOAP-guided backtrace must not
    increase total PODEM backtracks on the E5 survivor set, and must
    never contradict the unguided engine's proofs (an abort on either
    side is 'no verdict', not a disagreement)."""
    kwargs = dict(
        n_frames=scaled(4, 5, 8),
        backtrack_limit=scaled(40, 300, 1000),
        fault_sample=scaled(8, 60, 300),
        jobs=None,
    )
    plain = AtpgBaselineCampaign(**kwargs)
    plain_outcome = plain.run()
    campaign = AtpgBaselineCampaign(guided=True, **kwargs)
    cache_before = cache_stats()
    start = time.perf_counter()
    outcome = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    TRAJECTORY.record(
        experiment="E5", label=f"atpg guided jobs={campaign.runner.jobs}",
        jobs=campaign.runner.jobs,
        units=outcome.report.counts()["executed"],
        wall_seconds=round(time.perf_counter() - start, 3),
        cache=cache_delta(cache_before, cache_stats()),
    )
    guided, unguided = outcome.result, plain_outcome.result

    print()
    print(f"unguided: {unguided.total_backtracks} backtracks, "
          f"{unguided.total_decisions} decisions")
    print(f"guided:   {guided.total_backtracks} backtracks, "
          f"{guided.total_decisions} decisions")

    # Proof parity per fault: detected-vs-untestable is a contradiction.
    proofs = {"detected", "untestable"}
    for unit_id, plain_result in plain_outcome.report.results.items():
        guided_result = outcome.report.results.get(unit_id)
        if guided_result is None:
            continue
        a = (plain_result.value or {}).get("status")
        g = (guided_result.value or {}).get("status")
        if a in proofs and g in proofs:
            assert a == g, f"{unit_id}: unguided={a} guided={g}"

    assert guided.total_backtracks <= unguided.total_backtracks

    saved = unguided.total_backtracks - guided.total_backtracks
    REGISTRY.record(ExperimentResult(
        experiment_id="E5g",
        description="testability-guided PODEM backtrace vs unguided",
        paper_value="n/a (engineering gate, ISSUE 8)",
        measured_value=(
            f"{guided.total_backtracks} vs {unguided.total_backtracks} "
            f"backtracks ({saved} saved) on {guided.n_faults} faults, "
            f"verdicts contradiction-free"
        ),
        campaign_counts=outcome.report.counts(),
    ))
