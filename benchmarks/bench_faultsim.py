#!/usr/bin/env python
"""Interpreted-vs-batched fault-simulation bench → ``BENCH_faultsim.json``.

Times the two ``CombFaultSimulator`` engines on the paper core's
heaviest components across the workload shapes E1 actually runs:

* **sustained grading** — every fault graded over many pattern blocks
  (the E1 inner loop at scale; compiled cone kernels amortise and the
  batched engine wins several-fold);
* **fault dropping** — one ``run_with_dropping`` pass where most
  faults detect within a block or two (adaptive compilation keeps the
  batched engine at interpreted speed instead of paying compile time
  for kernels that would run once);
* **hierarchical E1 sample** — the mixed-level core simulator end to
  end on a template program, both engines.

Engines are bit-for-bit identical (``tests/test_faults_batched.py``
enforces it); this artefact records what the speed difference actually
measured on the machine that wrote it.  Workload sizes follow
``REPRO_SCALE``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_faultsim.py
    PYTHONPATH=src REPRO_SCALE=quick python benchmarks/bench_faultsim.py \
        --assert-speedup 3

``--assert-speedup N`` exits nonzero unless the aggregate sustained-
grading speedup (total interpreted wall / total batched wall) is at
least ``N`` — the CI gate that keeps the engine's headline honest.
"""

from __future__ import annotations

import argparse
import random
import time

from repro.faults.combsim import CombFaultSimulator
from repro.harness.experiments import scaled
from repro.harness.perf import (
    FAULTSIM_BENCH_FILENAME, PerfTrajectory, cache_delta,
)
from repro.runtime.cache import cache_stats, clear_caches

#: Components for the combinational workloads, heaviest first.
COMPONENTS = ("multiplier", "shifter", "addsub")

#: Patterns packed per word (the batched engine's default width).
BLOCK_WIDTH = 128


def pattern_blocks(netlist, seed, n_blocks, width):
    """Seeded random stimulus blocks over the netlist's input buses."""
    rng = random.Random(("bench_faultsim", seed).__repr__())
    in_nets = set(netlist.inputs)
    buses = {name: nets for name, nets in netlist.buses.items()
             if nets and all(n in in_nets for n in nets)}
    return [{name: [rng.getrandbits(len(nets)) for _ in range(width)]
             for name, nets in buses.items()} for _ in range(n_blocks)]


def measure(trajectory, experiment, engine, units, run):
    """Time ``run()`` from cold caches and record one sample.

    Interpreted is recorded first per experiment, so
    :meth:`PerfTrajectory.finish` fills the batched sample's
    ``speedup_vs_serial`` against it.
    """
    clear_caches()
    before = cache_stats()
    start = time.perf_counter()
    run()
    elapsed = time.perf_counter() - start
    sample = trajectory.record(
        experiment=experiment, label=engine, jobs=1, units=units,
        wall_seconds=round(elapsed, 4),
        cache=cache_delta(before, cache_stats()), engine=engine,
    )
    print(f"  {experiment:<22} {engine:<12} {elapsed:8.3f}s  "
          f"{sample.units_per_second:10.0f} units/s")
    return sample


def bench_combinational(trajectory, n_blocks):
    from repro.dsp.components import component_by_name
    for name in COMPONENTS:
        netlist = component_by_name(name).netlist()
        blocks = pattern_blocks(netlist, name, n_blocks, BLOCK_WIDTH)
        for engine in ("interpreted", "batched"):
            sim = CombFaultSimulator(netlist, engine=engine,
                                     block_width=BLOCK_WIDTH)
            n_faults = len(sim.fault_list.faults)
            measure(
                trajectory, f"sustained:{name}", engine,
                n_faults * n_blocks,
                lambda s=sim: [s.detect(b) for b in blocks],
            )
        for engine in ("interpreted", "batched"):
            sim = CombFaultSimulator(netlist, engine=engine,
                                     block_width=BLOCK_WIDTH)
            measure(
                trajectory, f"dropping:{name}", engine,
                len(sim.fault_list.faults),
                lambda s=sim: s.run_with_dropping(blocks),
            )


def bench_hierarchical(trajectory, iterations):
    from repro.bist.template import RandomLoad, TemplateArchitecture
    from repro.dsp.isa import Instruction, Opcode
    from repro.faults.hierarchical import HierarchicalFaultSimulator

    words = TemplateArchitecture([
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACB_ADD, rega=0, regb=1, dest=3),
        Instruction(Opcode.OUT, regb=3),
        Instruction(Opcode.OUTA), Instruction(Opcode.OUTB),
    ]).expand(iterations)
    for engine in ("interpreted", "batched"):
        sim = HierarchicalFaultSimulator(engine=engine)
        units = len(sim.universe.all_faults())
        measure(trajectory, "e1_hierarchical", engine, units,
                lambda s=sim: s.run(words))


def sustained_speedup(trajectory):
    """Aggregate sustained-grading speedup: Σ interpreted / Σ batched."""
    walls = {"interpreted": 0.0, "batched": 0.0}
    for sample in trajectory.samples:
        if sample.experiment.startswith("sustained:"):
            walls[sample.label] += sample.wall_seconds
    return walls["interpreted"] / walls["batched"] if walls["batched"] else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=FAULTSIM_BENCH_FILENAME,
                        help=f"artefact path "
                             f"(default {FAULTSIM_BENCH_FILENAME})")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="N",
                        help="exit nonzero unless the aggregate sustained "
                             "speedup is at least N")
    parser.add_argument("--skip-hierarchical", action="store_true",
                        help="combinational workloads only")
    args = parser.parse_args(argv)

    trajectory = PerfTrajectory(schema="repro.bench_faultsim/1")
    n_blocks = scaled(48, 96, 384)
    print(f"combinational grading: {n_blocks} blocks x {BLOCK_WIDTH} "
          f"patterns per component")
    bench_combinational(trajectory, n_blocks)
    if not args.skip_hierarchical:
        iterations = scaled(20, 60, 6000)
        print(f"hierarchical E1 sample: {iterations} template iterations")
        bench_hierarchical(trajectory, iterations)

    path = trajectory.write(args.output)
    for sample in trajectory.samples:
        if sample.speedup_vs_serial is not None:
            print(f"{sample.experiment}: batched "
                  f"{sample.speedup_vs_serial:.2f}x vs interpreted")
    aggregate = sustained_speedup(trajectory)
    print(f"aggregate sustained speedup: {aggregate:.2f}x")
    print(f"wrote {path}")
    if args.assert_speedup is not None and aggregate < args.assert_speedup:
        print(f"FAIL: aggregate sustained speedup {aggregate:.2f}x is "
              f"below the required {args.assert_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
