"""T1/F1 — Table 1: testability metrics of the simple Fig. 1 datapath,
plus the end-to-end mini-flow on the exactly-simulable toy netlist."""

from repro.dsp.simple import make_simple_core
from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.metrics.simple_metrics import build_table1, render_table1
from repro.selftest.simple_flow import (
    generate_simple_selftest,
    grade_simple_selftest,
    simple_selftest_stimulus,
)


def test_table1_metrics(benchmark):
    table = benchmark.pedantic(
        build_table1,
        kwargs=dict(n_samples=scaled(100, 400, 2000),
                    n_good=scaled(5, 30, 100)),
        rounds=1, iterations=1,
    )
    print()
    print("Figure 1 datapath:", make_simple_core().stats())
    print(render_table1(table))

    # The paper's structural facts about Table 1.
    assert table["Mac R"]["Mult"].covered()
    covered_by_mac_r = [c for c, cell in table["Mac R"].items()
                        if cell.covered()]
    assert len(covered_by_mac_r) >= 3  # "Mac R covers three columns"
    assert table["Clr 0"]["Mult"].o == 0.0  # Clr rows: Mult O = 0.00
    assert table["Add R"]["Add"].c > table["Add 0"]["Add"].c

    # End-to-end mini-flow: Phase 1 on Table 1, exact flat grading.
    selftest = generate_simple_selftest(table)
    print()
    print(selftest.summary())
    stimulus = simple_selftest_stimulus(selftest, scaled(20, 60, 400))
    result, n_faults = grade_simple_selftest(stimulus)
    coverage = len(result.detected) / n_faults
    print(f"exact gate-level coverage of the generated loop: "
          f"{coverage:.2%} over {len(stimulus['op'])} vectors")
    assert selftest.chosen[0][0].label == "Mac R"
    assert coverage > 0.95

    REGISTRY.record(ExperimentResult(
        experiment_id="T1",
        description="Table 1: simple-datapath C/O metrics + mini-flow",
        paper_value="Mac R covers 3 columns; Clr blocks Mult (O=0.00)",
        measured_value=(
            f"Mac R covers {len(covered_by_mac_r)} columns; "
            f"Clr-row Mult O={table['Clr 0']['Mult'].o:.2f}; "
            f"generated loop reaches {coverage:.1%} exact coverage"
        ),
    ))
