"""F5/F6 — Figures 5–6: the MAC datapath and the four-stage pipelined core.

Reports the structural inventory (per-component gate/fault counts, the
first data row of the paper's Table 2) and proves the flat gate-level
assembly equivalent to the behavioural pipeline on a mixed program.
"""

import random

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.components import COMPONENTS
from repro.dsp.core import DspCore
from repro.dsp.gatelevel import make_gatelevel_core
from repro.dsp.isa import Instruction, Opcode
from repro.faults.hierarchical import DspFaultUniverse
from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.reporting import format_table
from repro.logic.sequential import SequentialSimulator


def _equivalence_run(flat, n_iterations):
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYSHIFTMACB, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACTA_SUB, rega=0, regb=1, dest=3),
        Instruction(Opcode.SHIFTA, rega=1, dest=4),
        Instruction(Opcode.OUT, regb=4),
        Instruction(Opcode.OUTA),
        Instruction(Opcode.OUTB),
        Instruction(Opcode.MOV, regb=2, dest=5),
        Instruction(Opcode.OUT, regb=5),
    ]
    words = TemplateArchitecture(program).expand(n_iterations)
    behav = DspCore()
    gate = SequentialSimulator(flat)
    for word in words:
        r = behav.step(word)
        g = gate.step_bus({"instr": word})
        assert (r.out_valid, r.port) == (bool(g["out_valid"]), g["out"])
    return len(words)


def test_core_structure_and_equivalence(benchmark):
    flat = make_gatelevel_core()
    n_cycles = benchmark.pedantic(
        _equivalence_run, args=(flat, scaled(3, 12, 40)),
        rounds=1, iterations=1,
    )

    print()
    stats = flat.stats()
    print(f"flat core: {stats}")
    from repro.logic.analysis import logic_depth, region_inventory
    depth = logic_depth(flat)
    print(f"logic depth: max {depth.max_depth} "
          f"(mean over sinks {depth.mean_output_depth:.1f})")
    inventory = region_inventory(flat)
    print("gates per region:",
          {k: inventory[k] for k in sorted(inventory)})
    universe = DspFaultUniverse()
    counts = universe.counts_by_component()
    rows = []
    for spec in COMPONENTS:
        netlist_gates = (spec.netlist().stats().n_gates
                         if spec.kind == "comb" else "-")
        rows.append([spec.name, spec.kind, spec.output_width,
                     len(spec.modes), netlist_gates,
                     counts.get(spec.name, 0)])
    rows.append(["regfile", "storage", 8, 1, "-", counts["regfile"]])
    print(format_table(
        ["component", "kind", "width", "modes", "gates", "faults"], rows
    ))
    total = len(universe.all_faults())
    print(f"total core fault universe: {total} collapsed stuck-at faults")
    print(f"gate-level vs behavioural: {n_cycles} cycles bit-identical")

    assert stats.n_dffs > 250
    assert counts["multiplier"] > 500       # paper: 2162 (their netlist)
    assert counts["shifter"] > 300          # paper: 2028
    assert counts["addsub"] > 100           # paper: 700
    assert counts["acca"] == counts["accb"] == 74  # paper: 404

    REGISTRY.record(ExperimentResult(
        experiment_id="F5/F6",
        description="Figs. 5-6: MAC datapath + 4-stage pipelined core",
        paper_value="industrial core; per-component faults "
                    "(mult 2162, shifter 2028, add/sub 700, AccA 404)",
        measured_value=(
            f"{stats.n_gates} gates / {stats.n_dffs} DFFs; "
            f"mult {counts['multiplier']}, shifter {counts['shifter']}, "
            f"add/sub {counts['addsub']}, AccA {counts['acca']} faults; "
            f"flat==behavioural over {n_cycles} cycles"
        ),
    ))
