"""T2 — Table 2: the DSP core's instruction-level metrics table."""

from repro.dsp.isa import Opcode
from repro.harness.experiments import REGISTRY, ExperimentResult
from repro.metrics.controllability import InstructionVariant


def test_table2_metrics(benchmark, metrics_table):
    table = benchmark.pedantic(lambda: metrics_table, rounds=1, iterations=1)

    print()
    print(table.render(max_columns=9))
    print(f"({len(table.rows)} rows x {len(table.columns)} columns; "
          f"showing the first 9 columns)")

    def cell(label, column):
        row = next(r for r in table.rows if r.label == label)
        return table.cell(row, column)

    # The paper's signature Table 2 facts:
    # 1. load-row shifter controllability jumps 0.18 -> 0.99 with acc state.
    assert cell("load", ("shifter", 0)).c < 0.35
    assert cell("loadR", ("shifter", 0)).c > 0.9
    # 2. the multiplier is controllable from every row, observable only
    #    through result-writing instructions.
    assert cell("load", ("multiplier", 0)).c > 0.9
    assert cell("load", ("multiplier", 0)).o == 0.0
    assert cell("MpyA", ("multiplier", 0)).o > 0.3
    # 3. shifter modes 10/11 have no cells anywhere (no instruction sets
    #    them) — Table 2's empty columns.
    for row in table.rows:
        assert table.cell(row, ("shifter", 2)) is None
        assert table.cell(row, ("shifter", 3)) is None
    # 4. AccA observability is 0.00 on every single-instruction row.
    for label in ("load", "MpyA", "MacA+", "MacA+R"):
        assert cell(label, ("acca", 0)).o == 0.0
    # 5. per-component fault counts are reported (Table 2's first row).
    assert table.fault_counts["multiplier"] > 500

    n_covered = sum(
        1 for row in table.rows for column in table.columns
        if table.is_covered(row, column)
    )
    REGISTRY.record(ExperimentResult(
        experiment_id="T2",
        description="Table 2: DSP-core C/O metrics table",
        paper_value="0.18->0.99 shifter rows; AccA O=0.00; "
                    "shifter 10/11 columns empty",
        measured_value=(
            f"{len(table.rows)}x{len(table.columns)} table, "
            f"{n_covered} covered cells; all signature facts hold"
        ),
    ))
