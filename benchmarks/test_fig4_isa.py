"""F4 — Figure 4: the 17-bit instruction formats and opcode map."""

from repro._util import bits
from repro.dsp.isa import (
    Instruction,
    LD_RND,
    Opcode,
    PAPER_MNEMONICS,
    UNUSED_OPCODES,
    decode,
    encode,
)
from repro.harness.experiments import REGISTRY, ExperimentResult
from repro.harness.reporting import format_table


def _roundtrip_all():
    count = 0
    for op in Opcode:
        for rega in range(0, 16, 5):
            for regb in range(0, 16, 5):
                for dest in range(0, 16, 5):
                    if op is Opcode.LDI:
                        instr = Instruction(op, imm=(rega * 16 + regb) & 0xFF,
                                            dest=dest)
                    else:
                        instr = Instruction(op, rega=rega, regb=regb,
                                            dest=dest)
                    assert decode(encode(instr)) == instr
                    count += 1
    return count


def test_instruction_formats(benchmark):
    count = benchmark.pedantic(_roundtrip_all, rounds=1, iterations=1)

    print()
    rows = []
    for op in sorted(Opcode, key=int):
        word = encode(Instruction(op) if op is not Opcode.LDI
                      else Instruction(op, imm=0))
        rows.append([f"{int(op):05b}", op.name,
                     f"{bits(word, 16, 12):05b}...."])
    print(format_table(["opcode", "mnemonic", "encoding"], rows))
    print(f"unused opcodes (ld-rnd trap space): "
          f"{[format(u, '05b') for u in UNUSED_OPCODES]}")
    print(f"trapped ld-rnd opcode: {LD_RND:05b}")

    # Figure 4's structural facts.
    word = encode(Instruction(Opcode.MPYA, rega=3, regb=5, dest=9))
    assert bits(word, 11, 8) == 3 and bits(word, 7, 4) == 5 \
        and bits(word, 3, 0) == 9                       # format 1
    word = encode(Instruction(Opcode.LDI, imm=0xAB, dest=2))
    assert bits(word, 11, 4) == 0xAB                    # format 2
    assert int(Opcode.MOV) == 0b00010                   # format 4's opcode
    assert len(UNUSED_OPCODES) >= 4
    # Every mnemonic the paper uses maps to an opcode.
    assert set(PAPER_MNEMONICS) >= {
        "load", "mpy", "mpyt", "Mac+", "Mac-", "Mact+", "Mact-", "shift",
        "Mpyshift", "Mpyshiftmac", "Out", "Outr",
    }

    REGISTRY.record(ExperimentResult(
        experiment_id="F4",
        description="Fig. 4: 17-bit instruction formats",
        paper_value="4 formats, 5-bit opcode, 16 registers",
        measured_value=f"all 4 formats round-trip ({count} encodings), "
                       f"{len(UNUSED_OPCODES)} trap opcodes",
    ))
