"""T3 — Table 3: the instructions chosen at the end of Phase 1."""

from repro.harness.experiments import REGISTRY, ExperimentResult
from repro.harness.reporting import format_table
from repro.selftest.phase1 import run_phase1


def test_phase1_greedy_cover(benchmark, metrics_table):
    result = benchmark.pedantic(run_phase1, args=(metrics_table,),
                                rounds=1, iterations=1)

    print()
    rows = [["(wrappers)", len(result.wrapper_covered),
             ", ".join(f"{c[0]}:{c[1]}" for c in result.wrapper_covered)]]
    for variant, columns in result.selections:
        rows.append([variant.label, len(columns),
                     ", ".join(f"{c[0]}:{c[1]}" for c in columns)])
    print(format_table(["instruction", "#columns", "columns covered"], rows))
    print("left for Phase 2:",
          ", ".join(f"{c[0]}:{c[1]}" for c in result.uncovered) or "none")

    # Paper facts: greedy picks the widest-covering instruction first
    # ("MpyR, covering eleven"), and the accumulator columns plus the
    # unreachable shifter modes are left for Phase 2.
    first_variant, first_columns = result.selections[0]
    assert len(first_columns) >= 5
    assert len(first_columns) == max(len(c) for _, c in result.selections)
    assert first_variant.acc_state == "R"  # R-rows dominate, as in Table 3
    leftovers = set(result.uncovered)
    assert ("shifter", 2) in leftovers and ("shifter", 3) in leftovers
    assert ("acca", 0) in leftovers and ("accb", 0) in leftovers

    REGISTRY.record(ExperimentResult(
        experiment_id="T3",
        description="Table 3: Phase 1 greedy covering",
        paper_value="top pick covers 11 columns (MpyR); acc + "
                    "shifter-10/11 left over",
        measured_value=(
            f"top pick {first_variant.label} covers "
            f"{len(first_columns)} columns; "
            f"{len(result.uncovered)} columns left for Phase 2"
        ),
    ))
