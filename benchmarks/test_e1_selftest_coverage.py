"""E1 — §3.3: fault coverage of the looped self-test program.

Paper: 34 instructions × 6000 iterations = 204,000 vectors → 98.14% fault
coverage / 98.33% test coverage; 0.408 ms at 500 MHz.

We grade at a scaled iteration count (pure-Python fault simulation; see
EXPERIMENTS.md) and additionally *prove* the residual untestable faults
with component-level PODEM, which is what separates test coverage from
fault coverage.
"""

import time

from repro import obs
from repro.atpg.podem import Podem
from repro.faults.coverage import coverage_curve
from repro.faults.hierarchical import ComponentFault
from repro.harness.experiments import REGISTRY, ExperimentResult, scaled
from repro.harness.perf import TRAJECTORY, cache_delta
from repro.harness.reporting import format_curve
from repro.runtime.cache import cache_stats
from repro.runtime.campaigns import HierarchicalCampaign
from repro.selftest.vectors import expand_program


def prove_untestable(result):
    """Component-level PODEM proofs for the undetected comb faults."""
    engines = {}
    proven = 0
    for fault in result.undetected:
        if not isinstance(fault, ComponentFault):
            continue
        sim = result.universe.comb_simulators[fault.component]
        if fault.component not in engines:
            engines[fault.component] = Podem(sim.netlist,
                                             backtrack_limit=4000)
        outcome = engines[fault.component].generate(fault.fault)
        if outcome.status == "untestable":
            proven += 1
    return proven


def test_selftest_fault_coverage(benchmark, selftest):
    iterations = scaled(40, 400, 6000)
    words = expand_program(selftest.program, iterations)

    # jobs=None honours REPRO_JOBS, so CI exercises the pool backend by
    # exporting it; the sample lands in BENCH_campaigns.json either way.
    campaign = HierarchicalCampaign(words, jobs=None)
    cache_before = cache_stats()
    start = time.perf_counter()
    # Profile-only observability session: the recorded sample carries the
    # per-phase timing breakdown (prepare / grade / tier-2 checks) in meta.
    with obs.enabled_session(trace=False, metrics=False, profile=True,
                             seed=2004):
        outcome = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    TRAJECTORY.record(
        experiment="E1", label=f"grade jobs={campaign.runner.jobs}",
        jobs=campaign.runner.jobs,
        units=outcome.report.counts()["executed"],
        wall_seconds=round(time.perf_counter() - start, 3),
        cache=cache_delta(cache_before, cache_stats()),
        timings=outcome.report.timings,
    )
    result = outcome.result
    report = result.coverage_report("self test")
    report.n_untestable = prove_untestable(result)

    print()
    print(report)
    print(f"test coverage (untestable excluded): {report.test_coverage:.2%}")
    print(f"test time at 500 MHz: "
          f"{report.test_time_seconds() * 1e3:.3f} ms "
          f"(paper at 204,000 vectors: 0.408 ms)")
    step = max(1, len(words) // 10)
    print(format_curve(coverage_curve(result.first_detect, len(words),
                                      step)))

    # Shape assertions: high coverage, steep-then-saturating curve.
    # (Thresholds scale with the loop count; the paper's 98% needs the
    # full 204,000 vectors.)
    assert report.fault_coverage > scaled(0.88, 0.93, 0.96)
    assert report.test_coverage > report.fault_coverage
    assert report.test_coverage > scaled(0.90, 0.95, 0.97)
    curve = coverage_curve(result.first_detect, len(words), step)
    half = curve[len(curve) // 2][1]
    assert half > 0.85 * report.fault_coverage  # most coverage comes early

    REGISTRY.record(ExperimentResult(
        experiment_id="E1",
        description="self-test fault coverage (scaled loop count)",
        paper_value="98.14% FC / 98.33% TC @ 204,000 vectors",
        measured_value=(
            f"{report.fault_coverage:.2%} FC / "
            f"{report.test_coverage:.2%} TC @ {len(words)} vectors"
        ),
        campaign_counts=outcome.report.counts(),
    ))
