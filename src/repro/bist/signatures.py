"""Interval signatures and aliasing analysis.

A single end-of-test MISR compare gives one bit of information; splitting
the response stream into intervals with one signature each (a standard
BIST refinement) bounds *when* the first error occurred, which feeds
diagnosis, and reduces the effective aliasing probability.  The classic
aliasing bound for a ``w``-bit MISR is ``2^-w`` per compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bist.misr import Misr


@dataclass(frozen=True)
class IntervalSignatures:
    """Signatures of a response stream split into fixed-size intervals."""

    interval: int
    signatures: Tuple[int, ...]
    width: int = 8

    def first_failing_interval(self, other: "IntervalSignatures"
                               ) -> Optional[int]:
        """Index of the first interval whose signatures differ."""
        if (self.interval, self.width) != (other.interval, other.width):
            raise ValueError("interval schemes differ")
        for i, (a, b) in enumerate(zip(self.signatures, other.signatures)):
            if a != b:
                return i
        if len(self.signatures) != len(other.signatures):
            return min(len(self.signatures), len(other.signatures))
        return None

    def cycle_window(self, index: int) -> Tuple[int, int]:
        """[start, end) cycle range covered by interval ``index``."""
        return index * self.interval, (index + 1) * self.interval


def interval_signatures(stream: Sequence[int], interval: int,
                        width: int = 8, seed: int = 0) -> IntervalSignatures:
    """Compact ``stream`` into per-interval MISR signatures.

    The MISR is *not* reset between intervals (each signature covers the
    stream prefix), so a single corrupted cycle changes every signature
    from its interval onward — the first mismatching interval brackets the
    first error.
    """
    if interval < 1:
        raise ValueError("interval must be positive")
    misr = Misr(width, seed=seed)
    signatures: List[int] = []
    for i, word in enumerate(stream):
        misr.absorb(word)
        if (i + 1) % interval == 0:
            signatures.append(misr.signature)
    if len(stream) % interval:
        signatures.append(misr.signature)
    return IntervalSignatures(interval=interval,
                              signatures=tuple(signatures), width=width)


def aliasing_probability(width: int, n_compares: int = 1) -> float:
    """Classic MISR aliasing bound: per-compare escape ≈ 2^-width.

    With ``n_compares`` independent signature compares the probability
    that *every* compare aliases is ``2^(-width · n_compares)``; the
    probability that a corrupted stream escapes entirely is bounded by the
    single-compare bound of the *final* signature, ``2^-width``, and
    interval signatures can only improve on it.
    """
    if width < 1 or n_compares < 1:
        raise ValueError("width and n_compares must be positive")
    return 2.0 ** (-width * n_compares)


def diagnose_interval(golden: IntervalSignatures,
                      observed: IntervalSignatures) -> Optional[Tuple[int, int]]:
    """Cycle window containing the first error, or ``None`` if clean."""
    index = golden.first_failing_interval(observed)
    if index is None:
        return None
    return golden.cycle_window(index)
