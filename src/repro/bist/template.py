"""The test-program template architecture (paper Fig. 2).

"Instructions from memory are treated as templates and various instruction
fields are instantiated with pseudorandom data during testing."  The
architecture sits between test memory and the core:

* **ld-rnd trapping** — the unused opcode :data:`~repro.dsp.isa.LD_RND` is
  trapped; its immediate field is filled from LFSR1 and the opcode is
  rewritten into a normal ``LDI``.
* **register masking** — LFSR2 provides a 4-bit mask XORed into every
  register field, changed once per loop iteration, so successive passes of
  the same program exercise different register groups while keeping the
  program's internal dataflow consistent.

The expansion below is exactly what the paper's Perl script did: unroll the
looped template program into the concrete 17-bit instruction stream the
core executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Union

from repro._util import bits, set_field
from repro.bist.lfsr import Lfsr
from repro.dsp.isa import Instruction, LD_RND, Opcode, encode


@dataclass(frozen=True)
class RandomLoad:
    """A template "ld rnd, Rd" instruction (trapped unused opcode)."""

    dest: int

    def encode_template(self) -> int:
        """The raw template word stored in test memory."""
        return set_field(set_field(0, 16, 12, LD_RND), 3, 0, self.dest)


TemplateItem = Union[Instruction, RandomLoad]

#: Opcodes whose bits[11:4] are data, not register fields — only the dest
#: field is masked for these.
_IMMEDIATE_OPS = {Opcode.LDI}
#: Opcodes with no register fields at all.
_NO_REG_OPS = {Opcode.NOP, Opcode.OUTA, Opcode.OUTB}


class TemplateArchitecture:
    """Expands a template program into the core's instruction stream."""

    def __init__(
        self,
        program: Sequence[TemplateItem],
        lfsr1: Optional[Lfsr] = None,
        lfsr2: Optional[Lfsr] = None,
        mask_registers: bool = True,
    ):
        if not program:
            raise ValueError("template program is empty")
        self.program = list(program)
        self.lfsr1 = lfsr1 if lfsr1 is not None else Lfsr(16, seed=0xACE1)
        self.lfsr2 = lfsr2 if lfsr2 is not None else Lfsr(8, seed=0x5A)
        self.mask_registers = mask_registers

    # ------------------------------------------------------------------
    def _mask_fields(self, word: int, opcode: Opcode, reg_mask: int) -> int:
        """XOR ``reg_mask`` into the word's register fields."""
        if not self.mask_registers or opcode in _NO_REG_OPS:
            return word
        word = set_field(word, 3, 0, bits(word, 3, 0) ^ reg_mask)
        if opcode in _IMMEDIATE_OPS:
            return word
        if opcode is Opcode.OUT or opcode is Opcode.MOV:
            return set_field(word, 7, 4, bits(word, 7, 4) ^ reg_mask)
        word = set_field(word, 11, 8, bits(word, 11, 8) ^ reg_mask)
        return set_field(word, 7, 4, bits(word, 7, 4) ^ reg_mask)

    def instruction_words(self, n_iterations: int) -> Iterator[int]:
        """Yield the instantiated 17-bit instruction words.

        Produces ``n_iterations × len(program)`` words.  The register mask
        advances once per iteration; LFSR1 advances at every trapped load.
        """
        for _ in range(n_iterations):
            reg_mask = self.lfsr2.next_word(4) if self.mask_registers else 0
            for item in self.program:
                if isinstance(item, RandomLoad):
                    data = self.lfsr1.next_word(8)
                    instr = Instruction(
                        Opcode.LDI, imm=data, dest=item.dest
                    )
                    word = encode(instr)
                    opcode = Opcode.LDI
                else:
                    word = encode(item)
                    opcode = item.opcode
                yield self._mask_fields(word, opcode, reg_mask)

    def expand(self, n_iterations: int) -> List[int]:
        """Materialise :meth:`instruction_words` into a list."""
        return list(self.instruction_words(n_iterations))

    def template_words(self) -> List[int]:
        """The raw template words as stored in test memory (Fig. 7 left)."""
        words = []
        for item in self.program:
            if isinstance(item, RandomLoad):
                words.append(item.encode_template())
            else:
                words.append(encode(item))
        return words

    @property
    def program_length(self) -> int:
        return len(self.program)

    def n_vectors(self, n_iterations: int) -> int:
        """Total test vectors generated: iterations × program length."""
        return n_iterations * len(self.program)
