"""BIST hardware models: LFSRs, MISR and the test-program template architecture.

These model the "minimal insertion of external LFSR hardware" of the paper:
LFSR1 feeds pseudorandom data into trapped load instructions, LFSR2
XOR-masks register fields so each pass through the test loop exercises a
different register group, and a MISR compacts the core's output stream.
"""

from repro.bist.lfsr import Lfsr, PRIMITIVE_TAPS
from repro.bist.misr import Misr
from repro.bist.signatures import (
    IntervalSignatures,
    aliasing_probability,
    interval_signatures,
)
from repro.bist.template import RandomLoad, TemplateArchitecture

__all__ = [
    "Lfsr",
    "PRIMITIVE_TAPS",
    "Misr",
    "IntervalSignatures",
    "interval_signatures",
    "aliasing_probability",
    "RandomLoad",
    "TemplateArchitecture",
]
