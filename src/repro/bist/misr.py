"""Multiple-input signature register (response compactor).

The paper's template architecture feeds the core's 8-bit output into a
MISR so the self-test response can be validated with a single signature
compare.  This is the classic MISR: an LFSR whose next state additionally
XORs the parallel input word.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro._util import mask
from repro.bist.lfsr import PRIMITIVE_TAPS


class Misr:
    """A ``width``-bit MISR with maximal-length feedback."""

    def __init__(self, width: int = 8, seed: int = 0,
                 taps: Optional[Sequence[int]] = None):
        if taps is None:
            if width not in PRIMITIVE_TAPS:
                raise ValueError(
                    f"no tabulated polynomial for width {width}; pass taps="
                )
            taps = PRIMITIVE_TAPS[width]
        self.width = width
        self.taps = tuple(taps)
        self._mask = mask(width)
        self.state = seed & self._mask

    def absorb(self, word: int) -> int:
        """Clock the MISR once with ``word`` on the parallel inputs."""
        feedback = 0
        for t in self.taps:
            feedback ^= (self.state >> (self.width - t)) & 1
        shifted = ((self.state >> 1) | (feedback << (self.width - 1)))
        self.state = (shifted ^ word) & self._mask
        return self.state

    def absorb_all(self, words: Iterable[int]) -> int:
        """Clock in a whole response stream; returns the final signature."""
        for word in words:
            self.absorb(word)
        return self.state

    @property
    def signature(self) -> int:
        return self.state

    def reset(self, seed: int = 0) -> None:
        self.state = seed & self._mask
