"""Bit-manipulation helpers shared across the library.

All datapath values in this project are stored as plain Python integers in
two's-complement *unsigned* encoding for a declared bit width.  These helpers
convert between the unsigned encoding and signed interpretation, build masks,
and slice bit fields.  They are deliberately tiny and allocation-free since
they sit on the hot path of both the behavioural and gate-level simulators.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``mask(4) == 0b1111``)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Keep the low ``width`` bits of ``value`` (unsigned encoding)."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as ``width``-bit two's complement.

    The value is truncated modulo ``2**width``, matching hardware wrap-around.
    """
    return value & mask(width)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend the low ``from_width`` bits of ``value`` to ``to_width``."""
    if to_width < from_width:
        raise ValueError(
            f"cannot sign-extend from {from_width} to narrower {to_width} bits"
        )
    return to_unsigned(to_signed(value, from_width), to_width)


def bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits(value: int, high: int, low: int) -> int:
    """Return the bit field ``value[high:low]`` inclusive, like Verilog."""
    if high < low:
        raise ValueError(f"bad bit slice [{high}:{low}]")
    return (value >> low) & mask(high - low + 1)


def set_field(word: int, high: int, low: int, field: int) -> int:
    """Return ``word`` with bits ``[high:low]`` replaced by ``field``."""
    if high < low:
        raise ValueError(f"bad bit slice [{high}:{low}]")
    width = high - low + 1
    cleared = word & ~(mask(width) << low)
    return cleared | ((field & mask(width)) << low)


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (must be non-negative)."""
    if value < 0:
        raise ValueError("popcount of negative value is undefined here")
    return bin(value).count("1")


def bit_list(value: int, width: int) -> list:
    """Return ``width`` bits of ``value`` as a list, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def from_bit_list(bits_lsb_first) -> int:
    """Inverse of :func:`bit_list`: assemble an integer from LSB-first bits."""
    word = 0
    for i, b in enumerate(bits_lsb_first):
        if b:
            word |= 1 << i
    return word
