"""Observability: structured tracing, metrics and profiling hooks.

The runtime's hot paths call the module-level hooks below
(:func:`span`, :func:`incr`, :func:`observe`, :func:`section`,
:func:`point`).  Exactly like :mod:`repro.runtime.chaos`, the layer is
**inert unless armed**: a single module-global session reference is
``None`` by default, every hook starts with that one ``is None`` check,
and the disabled fast path allocates nothing and returns shared no-op
singletons.  ``tests/test_obs_inert.py`` holds the layer to that
contract — byte-identical campaign output and near-zero timing delta
with the session off.

Arm it with :func:`configure` (or the :func:`enabled_session` context
manager)::

    from repro import obs

    session = obs.configure(seed=2004)
    ...run a campaign...
    session.tracer.write_jsonl("trace.jsonl")
    obs.disable()

The three components (each optional):

* ``tracer`` — nested spans with deterministic ids, JSONL + Chrome
  trace-event export (:mod:`repro.obs.trace`);
* ``registry`` — counters/gauges/histograms with associative,
  commutative merges (:mod:`repro.obs.metrics`);
* ``profiler`` — accumulated per-section wall clock
  (:mod:`repro.obs.profile`).

Pool workers call :func:`export_worker_payload` after each unit and
ship the result through the result stream; the parent folds it back
with :func:`merge_worker_payload`.  Span ids are keyed by unit id, so
a pooled trace matches its serial twin span-for-span.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import Span, Tracer

__all__ = [
    "MetricsRegistry", "ObsSession", "Profiler", "Span", "Tracer",
    "active", "configure", "disable", "enabled",
    "enabled_session", "span", "point", "incr", "gauge_max", "observe",
    "section", "export_worker_payload", "merge_worker_payload",
    "reset_after_fork", "profile_timings",
]


class ObsSession:
    """One armed observability session (tracer + registry + profiler)."""

    def __init__(self, trace: bool = True, metrics: bool = True,
                 profile: bool = True, seed: int = 0):
        self.seed = seed
        self.tracer: Optional[Tracer] = Tracer(seed) if trace else None
        self.registry: Optional[MetricsRegistry] = \
            MetricsRegistry() if metrics else None
        self.profiler: Optional[Profiler] = Profiler() if profile else None


#: The switchboard: ``None`` = every hook below is a no-op.
_SESSION: Optional[ObsSession] = None


class _NullSpan:
    """Shared no-op span (returned by :func:`span` when disabled)."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullSection:
    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_SECTION = _NullSection()


# ---------------------------------------------------------------------
# session control
def configure(trace: bool = True, metrics: bool = True,
              profile: bool = True, seed: int = 0) -> ObsSession:
    """Arm observability; returns the installed session."""
    global _SESSION
    _SESSION = ObsSession(trace=trace, metrics=metrics, profile=profile,
                          seed=seed)
    return _SESSION


def disable() -> None:
    global _SESSION
    _SESSION = None


def active() -> Optional[ObsSession]:
    return _SESSION


def enabled() -> bool:
    return _SESSION is not None


@contextlib.contextmanager
def enabled_session(trace: bool = True, metrics: bool = True,
                    profile: bool = True, seed: int = 0):
    """``with obs.enabled_session() as s: ...`` — arm, then restore."""
    global _SESSION
    previous = _SESSION
    session = configure(trace=trace, metrics=metrics, profile=profile,
                        seed=seed)
    try:
        yield session
    finally:
        _SESSION = previous


# ---------------------------------------------------------------------
# hot-path hooks (one ``is None`` check when disabled)
def span(name: str, key: Any = None, **attrs: Any):
    """Open a nested span: ``with obs.span("unit", key=uid) as s: ...``"""
    if _SESSION is None or _SESSION.tracer is None:
        return _NULL_SPAN
    return _SESSION.tracer.span(name, key=key, **attrs)


def point(name: str, **fields: Any) -> None:
    """Record a time-series sample (e.g. coverage-vs-time)."""
    if _SESSION is None or _SESSION.tracer is None:
        return
    _SESSION.tracer.point(name, **fields)


def incr(name: str, n: int = 1) -> None:
    if _SESSION is None or _SESSION.registry is None:
        return
    _SESSION.registry.incr(name, n)


def gauge_max(name: str, value: float) -> None:
    if _SESSION is None or _SESSION.registry is None:
        return
    _SESSION.registry.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    if _SESSION is None or _SESSION.registry is None:
        return
    _SESSION.registry.observe(name, value)


def section(name: str):
    """Accumulate this block's wall clock under ``name``."""
    if _SESSION is None or _SESSION.profiler is None:
        return _NULL_SECTION
    return _SESSION.profiler.section(name)


def profile_timings() -> Dict[str, Dict[str, float]]:
    if _SESSION is None or _SESSION.profiler is None:
        return {}
    return _SESSION.profiler.timings()


# ---------------------------------------------------------------------
# pool transport
def export_worker_payload() -> Optional[Dict[str, Any]]:
    """Drain this process's spans/metrics/timings for the result stream.

    Called by pool workers after each unit; drained state is *removed*
    so every payload is a clean delta.  Returns ``None`` when disabled
    (the common case — the wire stays free of dead weight).
    """
    if _SESSION is None:
        return None
    payload: Dict[str, Any] = {}
    if _SESSION.tracer is not None:
        payload["records"] = _SESSION.tracer.drain()
    if _SESSION.registry is not None:
        payload["metrics"] = _SESSION.registry.snapshot()
        _SESSION.registry.reset()
    if _SESSION.profiler is not None:
        payload["timings"] = _SESSION.profiler.timings()
        _SESSION.profiler.reset()
    return payload


def merge_worker_payload(payload: Optional[Dict[str, Any]]) -> None:
    """Fold a worker payload into the parent session (order-insensitive:
    every merge operator is associative and commutative)."""
    if _SESSION is None or not payload:
        return
    if _SESSION.tracer is not None and payload.get("records"):
        _SESSION.tracer.absorb(payload["records"])
    if _SESSION.registry is not None and payload.get("metrics"):
        _SESSION.registry.merge_snapshot(payload["metrics"])
    if _SESSION.profiler is not None and payload.get("timings"):
        _SESSION.profiler.merge_timings(payload["timings"])


def reset_after_fork() -> None:
    """Called in pool workers: drop observability state inherited
    copy-on-write from the parent so payloads only carry worker work."""
    if _SESSION is None:
        return
    if _SESSION.tracer is not None:
        _SESSION.tracer.reset_after_fork()
    if _SESSION.registry is not None:
        _SESSION.registry.reset()
    if _SESSION.profiler is not None:
        _SESSION.profiler.reset()
