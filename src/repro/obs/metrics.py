"""Counters, gauges and histograms with explicit merge semantics.

Everything here is designed around *mergeability*: a pooled campaign
runs one registry per worker process and folds the snapshots back into
the parent's registry through the result stream, so the aggregate must
not depend on how the work was sharded.  Each instrument therefore
documents its merge operator, and every operator is associative and
commutative:

* **Counter** — merge is addition.
* **Gauge** — a high-water mark; merge is ``max``.  (A last-write-wins
  gauge cannot merge deterministically across shards, so we don't
  offer one.)
* **Histogram** — fixed bucket bounds; merge adds bucket counts and
  combines count/total/min/max.  Two histograms only merge when their
  bounds agree.

Snapshots are plain JSON-able dicts — they ride the pool's result
stream next to the unit record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Default histogram bounds: exponential, tuned for durations in
#: seconds (1 µs .. ~4.5 min) but serviceable for counts too.
DEFAULT_BOUNDS = tuple(1e-6 * 4 ** k for k in range(14))


@dataclass
class Counter:
    """A monotonically increasing count.  Merge: addition."""

    value: int = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class Gauge:
    """A high-water mark.  Merge: ``max`` (associative, commutative)."""

    value: float = float("-inf")

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        self.set_max(other.value)


@dataclass
class Histogram:
    """Fixed-bound bucketed distribution.  Merge: bucket-wise addition.

    ``counts[i]`` holds observations ``<= bounds[i]``; the final slot
    (``counts[len(bounds)]``) is the overflow bucket.
    """

    bounds: tuple = DEFAULT_BOUNDS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if tuple(other.bounds) != tuple(self.bounds):
            raise ValueError("cannot merge histograms with different bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        for theirs in (other.min,):
            if theirs is not None and (self.min is None or theirs < self.min):
                self.min = theirs
        for theirs in (other.max,):
            if theirs is not None and (self.max is None or theirs > self.max):
                self.max = theirs


class MetricsRegistry:
    """Named instruments plus snapshot/merge plumbing for the pool."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- hot-path updates ---------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.add(n)

    def gauge_max(self, name: str, value: float) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set_max(value)

    def observe(self, name: str, value: float,
                bounds: tuple = DEFAULT_BOUNDS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds=bounds)
        histogram.observe(value)

    # -- snapshot / merge ---------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able copy of every instrument's state."""
        return {
            "counters": {k: c.value for k, c in self.counters.items()},
            "gauges": {k: g.value for k, g in self.gauges.items()},
            "histograms": {
                k: {
                    "bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "total": h.total,
                    "min": h.min, "max": h.max,
                }
                for k, h in self.histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.incr(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, h in snapshot.get("histograms", {}).items():
            incoming = Histogram(
                bounds=tuple(h["bounds"]), counts=list(h["counts"]),
                count=h["count"], total=h["total"],
                min=h["min"], max=h["max"],
            )
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = incoming
            else:
                mine.merge(incoming)

    def reset(self) -> None:
        """Zero every instrument (workers reset between units so each
        payload carries a clean delta)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Pure-function merge used by tests: fold snapshots left-to-right."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()
