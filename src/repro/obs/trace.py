"""Span-based tracing with deterministic ids and JSONL/Chrome export.

A *span* is a named, nested interval of work.  Span ids are **not**
random: they derive from the session seed, the parent span's id, the
span name and either an explicit ``key`` (the runner passes the unit
id) or a per-``(parent, name)`` sequence number — the same recipe
:mod:`repro.runtime.rng` uses to derive per-stream RNGs.  Two
consequences:

* replaying a campaign with the same seed yields the same span ids, so
  traces diff cleanly run-over-run;
* a unit graded in a pool worker gets the *same* span id it would have
  had serially (the unit id keys it), so pooled and serial traces are
  comparable even though the work landed on different processes.

Export formats:

* **JSONL** — one header line (``kind: trace-header``) followed by one
  object per finished span (``kind: span``) and per recorded point
  (``kind: point``).  Schema in :mod:`repro.obs.schema`.
* **Chrome trace events** — ``chrome://tracing`` / Perfetto-compatible
  JSON with complete (``ph: "X"``) events.

Workers drain their finished spans with :meth:`Tracer.drain` and ship
them through the pool's result stream; the parent folds them back in
with :meth:`Tracer.absorb`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.schema import TRACE_SCHEMA

_PERF = time.perf_counter


def _derive_id(seed: int, parent: str, name: str, key: Any) -> str:
    token = f"{seed}:{parent}:{name}:{key}"
    return hashlib.sha256(token.encode()).hexdigest()[:16]


class Span:
    """An open span; closes (and records itself) on ``__exit__``.

    ``with tracer.span("unit", key=unit_id) as span: span.set(status="ok")``

    The ``try/finally`` discipline lives in the ``with`` protocol:
    ``__exit__`` runs for *any* exception — including
    :class:`~repro.runtime.chaos.ChaosKill`, which subclasses
    ``BaseException`` precisely to escape quarantine nets — so span
    trees always balance.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id",
                 "attrs", "_t0", "_wall")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = 0.0
        self._wall = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._wall = time.time()
        self._t0 = _PERF()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = _PERF() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self, duration)


class Tracer:
    """Per-session span collector (thread-safe, fork-aware)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.root_id = _derive_id(seed, "", "root", "")
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq: Dict[tuple, int] = {}

    # -- span stack ----------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_id(self) -> str:
        stack = self._stack()
        return stack[-1].span_id if stack else self.root_id

    def depth(self) -> int:
        return len(self._stack())

    def span(self, name: str, key: Any = None, **attrs: Any) -> Span:
        parent = self.current_id()
        if key is None:
            with self._lock:
                seq = self._seq.get((parent, name), 0)
                self._seq[(parent, name)] = seq + 1
            key = seq
        span_id = _derive_id(self.seed, parent, name, key)
        return Span(self, name, span_id, parent, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # defensive: never let one bad span corrupt the stack
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        record = {
            "kind": "span", "id": span.span_id, "parent": span.parent_id,
            "name": span.name, "pid": os.getpid(),
            "start": round(span._wall, 6), "dur": round(duration, 9),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        with self._lock:
            self._records.append(record)

    # -- points (time series, e.g. coverage-vs-time) -------------------
    def point(self, name: str, **fields: Any) -> None:
        record = {"kind": "point", "name": name, "pid": os.getpid(),
                  "t": round(time.time(), 6)}
        if fields:
            record["fields"] = fields
        with self._lock:
            self._records.append(record)

    # -- transport -----------------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return every finished record (worker → parent)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def absorb(self, records: List[Dict[str, Any]]) -> None:
        """Fold a worker's drained records into this tracer."""
        with self._lock:
            self._records.extend(records)

    @property
    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def reset_after_fork(self) -> None:
        """Drop records inherited copy-on-write from the parent process."""
        self._records = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = {}

    # -- export --------------------------------------------------------
    def header(self) -> Dict[str, Any]:
        return {"kind": "trace-header", "schema": TRACE_SCHEMA,
                "seed": self.seed, "root": self.root_id}

    def write_jsonl(self, path: str) -> int:
        """Write header + records as JSONL; returns the span count."""
        records = self.records
        with open(path, "w") as handle:
            handle.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return sum(1 for r in records if r["kind"] == "span")

    def chrome_trace(self) -> Dict[str, Any]:
        """``chrome://tracing`` / Perfetto ``traceEvents`` document."""
        events = []
        for record in self.records:
            if record["kind"] != "span":
                continue
            events.append({
                "name": record["name"], "ph": "X",
                "ts": record["start"] * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": record["pid"], "tid": record["pid"],
                "args": dict(record.get("attrs", {}),
                             id=record["id"], parent=record["parent"]),
            })
        events.sort(key=lambda e: e["ts"])
        return {"traceEvents": events,
                "metadata": {"schema": TRACE_SCHEMA, "seed": self.seed}}

    def write_chrome(self, path: str) -> int:
        doc = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(doc, handle)
        return len(doc["traceEvents"])
