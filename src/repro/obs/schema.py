"""The trace JSONL schema and its validator.

A trace file is JSONL: the first line is a header, every following
line is a span or a point.  CI's trace-smoke step and
``repro trace check`` both call :func:`validate_trace_file`; tests call
:func:`validate_span_record` directly.

Header::

    {"kind": "trace-header", "schema": "repro.trace/1",
     "seed": <int>, "root": <16-hex>}

Span::

    {"kind": "span", "id": <16-hex>, "parent": <16-hex>,
     "name": <str>, "pid": <int>, "start": <unix-seconds>,
     "dur": <seconds >= 0>, "attrs": {<str>: <json>}?}

Point (time-series sample, e.g. Phase-1 coverage-vs-time)::

    {"kind": "point", "name": <str>, "pid": <int>, "t": <unix-seconds>,
     "fields": {<str>: <json>}?}
"""

from __future__ import annotations

import json
import string
from typing import Any, Dict, List, Tuple

TRACE_SCHEMA = "repro.trace/1"

_HEX = set(string.hexdigits.lower())


def _is_span_id(value: Any) -> bool:
    return (isinstance(value, str) and len(value) == 16
            and set(value) <= _HEX)


def validate_header(record: Dict[str, Any]) -> List[str]:
    errors = []
    if record.get("kind") != "trace-header":
        errors.append("header: kind must be 'trace-header'")
    if record.get("schema") != TRACE_SCHEMA:
        errors.append(f"header: schema must be {TRACE_SCHEMA!r}, "
                      f"got {record.get('schema')!r}")
    if not isinstance(record.get("seed"), int):
        errors.append("header: seed must be an int")
    if not _is_span_id(record.get("root")):
        errors.append("header: root must be a 16-hex span id")
    return errors


def validate_span_record(record: Dict[str, Any]) -> List[str]:
    """Schema errors for one span line ([] = valid)."""
    errors = []
    where = f"span {record.get('id')!r}"
    if record.get("kind") != "span":
        errors.append(f"{where}: kind must be 'span'")
    for field in ("id", "parent"):
        if not _is_span_id(record.get(field)):
            errors.append(f"{where}: {field} must be a 16-hex span id")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append(f"{where}: name must be a non-empty string")
    if not isinstance(record.get("pid"), int):
        errors.append(f"{where}: pid must be an int")
    if not isinstance(record.get("start"), (int, float)):
        errors.append(f"{where}: start must be a number")
    dur = record.get("dur")
    if not isinstance(dur, (int, float)) or dur < 0:
        errors.append(f"{where}: dur must be a number >= 0")
    attrs = record.get("attrs", {})
    if not isinstance(attrs, dict) or \
            any(not isinstance(k, str) for k in attrs):
        errors.append(f"{where}: attrs must be a string-keyed object")
    return errors


def validate_point_record(record: Dict[str, Any]) -> List[str]:
    errors = []
    where = f"point {record.get('name')!r}"
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append(f"{where}: name must be a non-empty string")
    if not isinstance(record.get("pid"), int):
        errors.append(f"{where}: pid must be an int")
    if not isinstance(record.get("t"), (int, float)):
        errors.append(f"{where}: t must be a number")
    fields = record.get("fields", {})
    if not isinstance(fields, dict):
        errors.append(f"{where}: fields must be an object")
    return errors


def validate_trace_file(path: str) -> Tuple[Dict[str, int], List[str]]:
    """Validate a JSONL trace end-to-end.

    Returns ``(counts, errors)`` where counts holds ``spans``/``points``
    and errors is empty for a schema-valid file.  Beyond per-record
    shape this checks referential integrity: every span's parent must
    be the header root or another span in the file.
    """
    counts = {"spans": 0, "points": 0}
    errors: List[str] = []
    ids = set()
    parents: List[str] = []
    header: Dict[str, Any] = {}
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
                continue
            if lineno == 1:
                header = record
                errors.extend(validate_header(record))
                continue
            kind = record.get("kind")
            if kind == "span":
                counts["spans"] += 1
                errors.extend(validate_span_record(record))
                if _is_span_id(record.get("id")):
                    ids.add(record["id"])
                if _is_span_id(record.get("parent")):
                    parents.append(record["parent"])
            elif kind == "point":
                counts["points"] += 1
                errors.extend(validate_point_record(record))
            else:
                errors.append(f"line {lineno}: unknown kind {kind!r}")
    if not header:
        errors.append("empty file: missing trace header")
    root = header.get("root")
    known = ids | ({root} if root else set())
    for parent in parents:
        if parent not in known:
            errors.append(f"span parent {parent!r} not in file "
                          "(broken span tree)")
    return counts, errors
