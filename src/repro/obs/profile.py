"""Lightweight profiling hooks: named, accumulated wall-clock sections.

``perf_counter``-based and deliberately simple: a section is a
``with`` block that adds its duration (and a call count) to a named
accumulator.  Sections nest freely; each level accounts its own wall
clock, so nested totals overlap by design (the report is a where-does
-time-go table, not a flame graph — the tracer owns that).

Timings are plain dicts (``name -> {"calls", "seconds"}``) so pool
workers can ship them through the result stream; merge is addition.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

_PERF = time.perf_counter


class _Section:
    __slots__ = ("profiler", "name", "_t0")

    def __init__(self, profiler: "Profiler", name: str):
        self.profiler = profiler
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        self._t0 = _PERF()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.profiler.add(self.name, _PERF() - self._t0)


class Profiler:
    """Accumulates ``section`` durations by name."""

    def __init__(self) -> None:
        self._acc: Dict[str, List[float]] = {}  # name -> [calls, seconds]

    def section(self, name: str) -> _Section:
        return _Section(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        entry = self._acc.get(name)
        if entry is None:
            entry = self._acc[name] = [0, 0.0]
        entry[0] += calls
        entry[1] += seconds

    # -- snapshot / merge ---------------------------------------------
    def timings(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"calls": calls, "seconds": round(seconds, 6)}
            for name, (calls, seconds) in sorted(self._acc.items())
        }

    def merge_timings(self, timings: Dict[str, Dict[str, float]]) -> None:
        for name, entry in timings.items():
            self.add(name, entry["seconds"], calls=int(entry["calls"]))

    def delta(self, before: Dict[str, Dict[str, float]]) \
            -> Dict[str, Dict[str, float]]:
        """Timings accumulated since ``before`` (an earlier snapshot)."""
        out = {}
        for name, entry in self.timings().items():
            prior = before.get(name, {"calls": 0, "seconds": 0.0})
            calls = entry["calls"] - prior["calls"]
            seconds = round(entry["seconds"] - prior["seconds"], 6)
            if calls or seconds:
                out[name] = {"calls": calls, "seconds": max(seconds, 0.0)}
        return out

    def reset(self) -> None:
        self._acc.clear()

    # -- reporting -----------------------------------------------------
    def rows(self) -> List[Tuple[str, int, float, float]]:
        """(name, calls, total seconds, mean ms) sorted by total desc."""
        rows = []
        for name, (calls, seconds) in self._acc.items():
            mean_ms = (seconds / calls * 1e3) if calls else 0.0
            rows.append((name, calls, seconds, mean_ms))
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows
