"""Primitive gate types and their pattern-parallel evaluation.

Every net value is a plain Python integer whose bit *k* is the logic value of
the net under pattern *k*.  Evaluating a gate for ``W`` patterns is therefore
a single bitwise operation, which is what makes pure-Python fault simulation
tractable.  Inverting gates need the all-ones mask for the active pattern
width, which the simulator passes in.
"""

from __future__ import annotations

from enum import Enum
from functools import reduce
from operator import and_, or_, xor


class GateType(str, Enum):
    """Primitive gate kinds supported by the netlist model.

    ``AND``/``OR``/``NAND``/``NOR`` accept two or more inputs; ``XOR`` and
    ``XNOR`` accept exactly two; ``NOT``/``BUF`` exactly one; the constants
    take none.
    """

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"


#: Gate types whose output is the complement of a simpler function, i.e. the
#: ones whose evaluation needs the pattern-width mask.
INVERTING = frozenset(
    {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR, GateType.CONST1}
)

#: Allowed input arity per gate type: (min, max) with ``None`` = unbounded.
ARITY = {
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.BUF: (1, 1),
    GateType.NOT: (1, 1),
    GateType.AND: (2, None),
    GateType.OR: (2, None),
    GateType.NAND: (2, None),
    GateType.NOR: (2, None),
    GateType.XOR: (2, 2),
    GateType.XNOR: (2, 2),
}


def check_arity(kind: GateType, n_inputs: int) -> None:
    """Raise ``ValueError`` if ``kind`` cannot take ``n_inputs`` inputs."""
    lo, hi = ARITY[kind]
    if n_inputs < lo or (hi is not None and n_inputs > hi):
        raise ValueError(f"{kind.value} gate cannot have {n_inputs} inputs")


def eval_gate(kind: GateType, inputs, width_mask: int) -> int:
    """Evaluate one gate over packed pattern values.

    ``inputs`` is a sequence of packed integer values and ``width_mask`` is
    the all-ones mask for the active pattern width (used by inverting gates
    and constants).
    """
    if kind is GateType.AND:
        return reduce(and_, inputs)
    if kind is GateType.OR:
        return reduce(or_, inputs)
    if kind is GateType.NAND:
        return reduce(and_, inputs) ^ width_mask
    if kind is GateType.NOR:
        return reduce(or_, inputs) ^ width_mask
    if kind is GateType.XOR:
        return reduce(xor, inputs)
    if kind is GateType.XNOR:
        return reduce(xor, inputs) ^ width_mask
    if kind is GateType.NOT:
        return inputs[0] ^ width_mask
    if kind is GateType.BUF:
        return inputs[0]
    if kind is GateType.CONST0:
        return 0
    if kind is GateType.CONST1:
        return width_mask
    raise ValueError(f"unknown gate type {kind!r}")


def eval_scalar(kind: GateType, inputs) -> int:
    """Evaluate one gate over single-bit (0/1) inputs.

    Convenience wrapper around :func:`eval_gate` with a width-1 mask, used by
    tests and the ATPG engine's forward implication.
    """
    return eval_gate(kind, inputs, 1) & 1
