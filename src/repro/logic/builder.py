"""Structural construction helpers for :class:`~repro.logic.netlist.Netlist`.

The builder hands out fresh net ids, wires gates, and offers the small set of
word-level idioms (buses, 2:1 muxes, constants) that the RTL component
library in :mod:`repro.rtl` is written in terms of.  Muxes are deliberately
*composed from primitive gates* rather than being a gate type so that the
stuck-at fault universe resembles a synthesised standard-cell netlist.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


class NetlistBuilder:
    """Incrementally constructs a :class:`Netlist`.

    Typical usage::

        b = NetlistBuilder("adder8")
        a = b.input_bus("a", 8)
        c = b.input_bus("b", 8)
        total, carry = ripple_adder(b, a, c)
        b.output_bus("sum", total)
        netlist = b.finish()
    """

    def __init__(self, name: str):
        self.netlist = Netlist(name)
        self._fresh = 0
        self._const0: Optional[int] = None
        self._const1: Optional[int] = None
        self._region: Optional[str] = None

    # ------------------------------------------------------------------
    # Nets and ports
    # ------------------------------------------------------------------
    def net(self, name: Optional[str] = None) -> int:
        """Create a net; anonymous nets get a unique ``_t<N>`` name."""
        if name is None:
            name = f"_t{self._fresh}"
            self._fresh += 1
        net_id = self.netlist.add_net(name)
        if self._region is not None:
            self.netlist.net_regions[net_id] = self._region
        return net_id

    def region(self, label: str):
        """Context manager tagging every net created inside with ``label``.

        Used when assembling flat designs from component generators, so
        flat fault populations can be reported per component::

            with b.region("multiplier"):
                product = multiplier_into(b, opa, opb)
        """
        builder = self

        class _Region:
            def __enter__(self):
                self.previous = builder._region
                builder._region = label

            def __exit__(self, *exc):
                builder._region = self.previous
                return False

        return _Region()

    def input(self, name: str) -> int:
        """Declare a scalar primary input, registered as a 1-bit bus too."""
        net = self.netlist.add_net(name)
        self.netlist.add_input(net)
        self.netlist.add_bus(name, [net])
        return net

    def input_bus(self, name: str, width: int) -> List[int]:
        nets = []
        for i in range(width):
            net = self.netlist.add_net(f"{name}[{i}]")
            self.netlist.add_input(net)
            nets.append(net)
        self.netlist.add_bus(name, nets)
        return nets

    def output(self, net: int, name: Optional[str] = None) -> int:
        # ``name`` is accepted for symmetry but outputs reuse the net name.
        del name
        self.netlist.add_output(net)
        return net

    def output_bus(self, name: str, nets: Sequence[int]) -> List[int]:
        for net in nets:
            self.netlist.add_output(net)
        return self.netlist.add_bus(name, nets)

    def bus(self, name: str, nets: Sequence[int]) -> List[int]:
        """Register an internal bus (metadata only)."""
        return self.netlist.add_bus(name, nets)

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def gate(self, kind: GateType, inputs: Sequence[int],
             name: Optional[str] = None) -> int:
        out = self.net(name)
        self.netlist.add_gate(kind, out, inputs)
        return out

    def const0(self) -> int:
        if self._const0 is None:
            self._const0 = self.gate(GateType.CONST0, (), name="_const0")
        return self._const0

    def const1(self) -> int:
        if self._const1 is None:
            self._const1 = self.gate(GateType.CONST1, (), name="_const1")
        return self._const1

    def const_value(self, net: int) -> Optional[int]:
        """0/1 if ``net`` is a known constant generator, else ``None``.

        Lets word-level generators specialise logic fed by constants
        instead of building gates with untestable stuck-at faults.
        """
        if net == self._const0:
            return 0
        if net == self._const1:
            return 1
        return None

    def const_bus(self, value: int, width: int) -> List[int]:
        """A bus of constant nets holding ``value`` (LSB first)."""
        return [
            self.const1() if (value >> i) & 1 else self.const0()
            for i in range(width)
        ]

    def not_(self, a: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.NOT, (a,), name)

    def buf(self, a: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.BUF, (a,), name)

    def and_(self, *ins: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.AND, ins, name)

    def or_(self, *ins: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.OR, ins, name)

    def nand(self, *ins: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.NAND, ins, name)

    def nor(self, *ins: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.NOR, ins, name)

    def xor(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.XOR, (a, b), name)

    def xnor(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate(GateType.XNOR, (a, b), name)

    # ------------------------------------------------------------------
    # Word-level idioms
    # ------------------------------------------------------------------
    def mux2(self, sel: int, a: int, b: int, name: Optional[str] = None) -> int:
        """2:1 mux from primitive gates: ``sel ? b : a``."""
        nsel = self.not_(sel)
        t_a = self.and_(a, nsel)
        t_b = self.and_(b, sel)
        return self.or_(t_a, t_b, name=name)

    def mux2_bus(self, sel: int, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Bit-wise 2:1 mux over two equal-width buses."""
        if len(a) != len(b):
            raise ValueError(f"mux2_bus width mismatch: {len(a)} vs {len(b)}")
        return [self.mux2(sel, ai, bi) for ai, bi in zip(a, b)]

    def mux4_bus(self, sel: Sequence[int], options: Sequence[Sequence[int]]) -> List[int]:
        """4:1 bus mux from a 2-bit select (``sel[0]`` is the LSB)."""
        if len(sel) != 2 or len(options) != 4:
            raise ValueError("mux4_bus needs 2 select bits and 4 options")
        low = self.mux2_bus(sel[0], options[0], options[1])
        high = self.mux2_bus(sel[0], options[2], options[3])
        return self.mux2_bus(sel[1], low, high)

    def dff(self, d: int, init: int = 0, name: Optional[str] = None) -> int:
        q = self.net(name)
        self.netlist.add_dff(q, d, init)
        return q

    def dff_bus(self, name: str, d: Sequence[int], init: int = 0) -> List[int]:
        qs = [
            self.dff(bit, (init >> i) & 1, name=f"{name}[{i}]")
            for i, bit in enumerate(d)
        ]
        self.netlist.add_bus(name, qs)
        return qs

    # ------------------------------------------------------------------
    def finish(self, validate: bool = True) -> Netlist:
        """Return the completed netlist, optionally validating it."""
        if validate:
            self.netlist.validate()
        return self.netlist
