"""Cycle-based sequential simulation.

Drives a netlist's combinational logic once per clock cycle and then
advances every D flip-flop.  Values are pattern-parallel like the
combinational simulator, which lets callers run several *independent
sequences* side by side (one per packed bit) — the trick the fault-parallel
sequential fault simulator in :mod:`repro.faults.seqsim` relies on.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.logic.netlist import Netlist
from repro.logic.simulator import CombSimulator, pack_patterns, unpack_output


class SequentialSimulator:
    """Steps a sequential netlist cycle by cycle.

    The flip-flop state lives inside the simulator; :meth:`reset` returns it
    to each DFF's declared ``init`` value.
    """

    def __init__(self, netlist: Netlist, n_patterns: int = 1):
        from repro.runtime.cache import compiled_evaluator
        self.netlist = netlist
        self.comb = CombSimulator(netlist)
        # Unforced cycles run through the shared compiled evaluator
        # (fetched from the structural-hash cache, so many simulator
        # instances over identical netlists compile once); forcing falls
        # back to the interpreted simulator, which pins nets mid-graph.
        self._compiled = compiled_evaluator(netlist)
        self.n_patterns = n_patterns
        self._mask = (1 << n_patterns) - 1
        self.state: Dict[int, int] = {}
        self.reset()

    def reset(self) -> None:
        """Load every DFF with its ``init`` value (replicated per pattern)."""
        self.state = {
            dff.q: (self._mask if dff.init else 0) for dff in self.netlist.dffs
        }

    def step(
        self,
        inputs: Mapping[int, int],
        forced: Optional[Mapping[int, int]] = None,
        force_masks: Optional[Mapping[int, tuple]] = None,
    ) -> List[int]:
        """Run one clock cycle; returns all net values *before* the edge.

        ``forced`` pins nets for this cycle only (fault injection); forced
        DFF Q nets stay forced across the clock edge, i.e. a stuck state bit
        remains stuck.  ``force_masks`` applies per-pattern-bit forcing
        ``v = (v & and) | or`` (see :meth:`CombSimulator.run`), likewise
        kept stuck across the edge for state nets.
        """
        if forced or force_masks:
            values = self.comb.run(
                inputs, self.n_patterns, state=self.state,
                forced=forced, force_masks=force_masks,
            )
        else:
            values = self._compiled.run(inputs, self.n_patterns,
                                        state=self.state)
        for dff in self.netlist.dffs:
            new = values[dff.d]
            if forced and dff.q in forced:
                new = forced[dff.q] & self._mask
            if force_masks and dff.q in force_masks:
                and_mask, or_mask = force_masks[dff.q]
                new = (new & and_mask) | (or_mask & self._mask)
            self.state[dff.q] = new
        return values

    def step_bus(
        self,
        bus_inputs: Mapping[str, int],
        forced: Optional[Mapping[int, int]] = None,
    ) -> Dict[str, int]:
        """Single-pattern convenience: step with word inputs, word outputs."""
        packed: Dict[int, int] = {}
        for name, word in bus_inputs.items():
            for i, net in enumerate(self.netlist.buses[name]):
                packed[net] = (word >> i) & 1
        values = self.step(packed, forced=forced)
        out: Dict[str, int] = {}
        for name, nets in self.netlist.buses.items():
            out[name] = unpack_output([values[n] for n in nets], 0)
        return out

    def run_sequence(
        self,
        bus_sequences: Mapping[str, Sequence[int]],
        output_bus: str,
        forced: Optional[Mapping[int, int]] = None,
    ) -> List[int]:
        """Apply per-cycle word inputs and collect one output bus per cycle."""
        lengths = {len(seq) for seq in bus_sequences.values()}
        if len(lengths) != 1:
            raise ValueError("all input sequences must have equal length")
        n_cycles = lengths.pop()
        outputs: List[int] = []
        for t in range(n_cycles):
            step_inputs = {name: seq[t] for name, seq in bus_sequences.items()}
            values = self.step_bus(step_inputs, forced=forced)
            outputs.append(values[output_bus])
        return outputs
