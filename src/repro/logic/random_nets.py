"""Seeded random netlist generation for differential testing.

The cross-validation sweep (``tests/test_cross_validation.py``) grades
the interpreted simulator, the compiled evaluator and the sequential
engine against each other on hundreds of structurally random netlists.
This module generates those netlists deterministically from a seed —
the same seed always yields the same structure — and serialises any
netlist back to the JSON document format understood by
:func:`repro.lint.artifacts.netlist_from_doc`, so a failing case can be
dumped as a self-contained repro artifact and re-loaded (or linted)
without re-running the sweep.

Generation is construction-ordered: every gate reads only nets that are
already driven (inputs, DFF Q nets, earlier gate outputs), so the
result is loop-free by construction; ``validate()`` is still run before
returning as a belt-and-braces check on the generator itself.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist

_BINARY = (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
           GateType.XOR, GateType.XNOR)
_WIDE = (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR)
_UNARY = (GateType.NOT, GateType.BUF)
_CONST = (GateType.CONST0, GateType.CONST1)


def random_netlist(seed: int, n_inputs: int = 6, n_gates: int = 40,
                   n_dffs: int = 0, name: Optional[str] = None) -> Netlist:
    """A structurally random, valid netlist derived purely from ``seed``.

    Gate kinds are drawn with a bias toward two-input gates, with
    occasional three-input AND/OR/NAND/NOR, unary gates and constants,
    so every ``GateType`` branch of both evaluators gets exercised.
    DFF D inputs and ``init`` values are also seed-derived; primary
    outputs sample roughly a fifth of the gate outputs.  Buses ``"in"``
    and ``"out"`` alias the primary inputs/outputs (LSB first).
    """
    rng = random.Random(("random_netlist", seed).__repr__())
    netlist = Netlist(name or f"rand{seed}")
    sources = []
    for i in range(n_inputs):
        net = netlist.add_net(f"in{i}")
        netlist.add_input(net)
        sources.append(net)
    qs = []
    for i in range(n_dffs):
        q = netlist.add_net(f"q{i}")
        qs.append(q)
        sources.append(q)
    driven = list(sources)
    for i in range(n_gates):
        out = netlist.add_net(f"g{i}")
        roll = rng.random()
        if roll < 0.62:
            kind = rng.choice(_BINARY)
            ins = [rng.choice(driven), rng.choice(driven)]
        elif roll < 0.76:
            kind = rng.choice(_WIDE)
            ins = [rng.choice(driven) for _ in range(3)]
        elif roll < 0.96:
            kind = rng.choice(_UNARY)
            ins = [rng.choice(driven)]
        else:
            kind = rng.choice(_CONST)
            ins = []
        netlist.add_gate(kind, out, ins)
        driven.append(out)
    for q in qs:
        netlist.add_dff(q, d=rng.choice(driven), init=rng.randrange(2))
    gate_outs = [gate.output for gate in netlist.gates]
    for net in sorted(rng.sample(gate_outs, max(1, len(gate_outs) // 5))):
        netlist.add_output(net)
    netlist.add_bus("in", list(netlist.inputs))
    netlist.add_bus("out", list(netlist.outputs))
    netlist.validate()
    return netlist


def netlist_to_doc(netlist: Netlist) -> Dict[str, Any]:
    """Serialise ``netlist`` to the lint-artifact JSON document format.

    The result round-trips through
    :func:`repro.lint.artifacts.netlist_from_doc` to a netlist that
    simulates identically — which is what makes dumped differential
    failures replayable.
    """
    names = netlist.net_names
    return {
        "kind": "netlist",
        "name": netlist.name,
        "nets": list(names),
        "inputs": [names[n] for n in netlist.inputs],
        "outputs": [names[n] for n in netlist.outputs],
        "gates": [
            {"kind": gate.kind.value, "output": names[gate.output],
             "inputs": [names[n] for n in gate.inputs]}
            for gate in netlist.gates
        ],
        "dffs": [
            {"q": names[dff.q], "d": names[dff.d], "init": dff.init}
            for dff in netlist.dffs
        ],
        "buses": {
            bus: [names[n] for n in nets]
            for bus, nets in netlist.buses.items()
        },
    }
