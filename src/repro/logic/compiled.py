"""Code-generated netlist evaluation.

Interpreted gate-by-gate evaluation pays Python's per-gate dispatch cost on
every call.  For hot paths (fault-simulation good machines, mixed-level
propagation) this module compiles a netlist's levelised gate list into one
straight-line Python function of array assignments — typically 5–10×
faster — with results bit-identical to :class:`CombSimulator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


def _gate_expression(kind: GateType, operands: List[str]) -> str:
    if kind is GateType.AND:
        return " & ".join(operands)
    if kind is GateType.OR:
        return " | ".join(operands)
    if kind is GateType.NAND:
        return f"({' & '.join(operands)}) ^ m"
    if kind is GateType.NOR:
        return f"({' | '.join(operands)}) ^ m"
    if kind is GateType.XOR:
        return " ^ ".join(operands)
    if kind is GateType.XNOR:
        return f"({' ^ '.join(operands)}) ^ m"
    if kind is GateType.NOT:
        return f"{operands[0]} ^ m"
    if kind is GateType.BUF:
        return operands[0]
    if kind is GateType.CONST0:
        return "0"
    if kind is GateType.CONST1:
        return "m"
    raise ValueError(f"unknown gate type {kind!r}")


class CompiledEvaluator:
    """A compiled combinational evaluator for one netlist.

    :meth:`eval_into` fills a pre-populated value list in place: the caller
    sets primary-input (and DFF Q) slots, the compiled body computes every
    gate output.  Forcing/fault injection is layered on top by the caller
    (cone re-evaluation), exactly as with the interpreted simulator.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        lines = ["def _eval(v, m):"]
        order = netlist.levelize()
        if not order:
            lines.append("    pass")
        for gate in order:
            operands = [f"v[{i}]" for i in gate.inputs]
            lines.append(
                f"    v[{gate.output}] = {_gate_expression(gate.kind, operands)}"
            )
        namespace: Dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        self._eval = namespace["_eval"]

    def run(self, inputs: Dict[int, int], n_patterns: int = 1,
            state: Optional[Dict[int, int]] = None) -> List[int]:
        """Drop-in equivalent of :meth:`CombSimulator.run` (no forcing)."""
        width_mask = (1 << n_patterns) - 1
        values = [0] * self.netlist.n_nets
        for net in self.netlist.inputs:
            values[net] = inputs[net] & width_mask
        for dff in self.netlist.dffs:
            if state is not None and dff.q in state:
                values[dff.q] = state[dff.q] & width_mask
            else:
                values[dff.q] = width_mask if dff.init else 0
        self._eval(values, width_mask)
        return values


class CompiledConeEvaluator:
    """Compiled fault-propagation kernels for one fault site.

    Fault simulation spends almost all of its time re-evaluating a
    fault's fanout cone on top of cached good-machine values — once per
    fault per pattern block, and per *cycle* in mixed-level continuous
    injection.  The interpreted walk pays a dict lookup per operand and
    an :func:`eval_gate` dispatch per gate; here the cone is code-
    generated once into straight-line local-variable assignments, giving
    the same 5–10× win :class:`CompiledEvaluator` gives the good
    machine.  Both stuck-at polarities of a site share one kernel (the
    stuck word is a parameter), and kernels are shared across
    structurally identical netlists via
    :func:`repro.runtime.cache.compiled_cone`.

    Two entry points are generated from a single codegen pass:

    * :meth:`detect` — the packed detected-pattern mask only (the
      fault-dropping hot path allocates nothing but ints);
    * :meth:`propagate` — ``(mask, changed)`` exactly as
      :meth:`repro.faults.combsim.CombFaultSimulator.simulate_fault`
      returns it, for callers that need the faulty net values.

    Callers are responsible for the excitation early-exit
    (``good[net] == stuck``), mirroring the interpreted engine.
    """

    def __init__(self, netlist: Netlist, net: int):
        self.netlist = netlist
        self.net = net
        cone = netlist.transitive_fanout_gates(net)
        touched = {net} | {g.output for g in cone}
        #: Primary outputs reachable from the fault site (fault effects
        #: anywhere else are unobservable in this netlist).
        self.cone_outputs = [o for o in netlist.outputs if o in touched]
        self.n_cone_gates = len(cone)
        self._cone_nets = [g.output for g in cone]
        local: Dict[int, str] = {net: "s"}
        body: List[str] = []
        for gate in cone:
            operands = [local.get(i, f"v[{i}]") for i in gate.inputs]
            name = f"t{gate.output}"
            body.append(f"    {name} = {_gate_expression(gate.kind, operands)}")
            local[gate.output] = name
        terms = [f"({local[o]} ^ v[{o}])" for o in self.cone_outputs]
        self._body = body or ["    pass"]
        self._detect_expr = " | ".join(terms) if terms else "0"
        self._values_expr = ", ".join(local[n] for n in self._cone_nets) \
            + ("," if len(self._cone_nets) == 1 else "")
        # Only the mask-only kernel is compiled eagerly: fault dropping
        # calls nothing else, and compile time is the batched engine's
        # main fixed cost.  The value-returning kernel (needed only once
        # a fault is detected, or for faulty-word extraction) compiles
        # lazily on first use.
        self.detect = self._exec(
            "def _k(v, s, m):\n" + "\n".join(self._body)
            + f"\n    return {self._detect_expr}"
        )
        self._propagate = None

    @staticmethod
    def _exec(source: str):
        namespace: Dict = {}
        exec(source, namespace)  # noqa: S102 - trusted codegen
        return namespace["_k"]

    def propagate(self, good: List[int], stuck: int,
                  width_mask: int) -> tuple:
        """``(detected_mask, changed)`` — bit-identical to the
        interpreted cone walk: ``changed`` holds the stuck site plus
        every cone net whose packed value differs from the good value."""
        if self._propagate is None:
            self._propagate = self._exec(
                "def _k(v, s, m):\n" + "\n".join(self._body)
                + f"\n    return {self._detect_expr}, "
                  f"({self._values_expr})"
            )
        detected, values = self._propagate(good, stuck, width_mask)
        changed = {self.net: stuck}
        for net, value in zip(self._cone_nets, values):
            if value != good[net]:
                changed[net] = value
        return detected, changed


def _gate_expression3(kind: GateType, one: List[str],
                      zero: List[str]) -> tuple:
    """(is-one expr, is-zero expr) for three-valued bitplane evaluation."""
    if kind is GateType.AND:
        return " & ".join(one), " | ".join(zero)
    if kind is GateType.OR:
        return " | ".join(one), " & ".join(zero)
    if kind is GateType.NAND:
        return " | ".join(zero), " & ".join(one)
    if kind is GateType.NOR:
        return " & ".join(zero), " | ".join(one)
    if kind is GateType.XOR:
        a1, b1 = one
        a0, b0 = zero
        return (f"({a1} & {b0}) | ({a0} & {b1})",
                f"({a1} & {b1}) | ({a0} & {b0})")
    if kind is GateType.XNOR:
        a1, b1 = one
        a0, b0 = zero
        return (f"({a1} & {b1}) | ({a0} & {b0})",
                f"({a1} & {b0}) | ({a0} & {b1})")
    if kind is GateType.NOT:
        return zero[0], one[0]
    if kind is GateType.BUF:
        return one[0], zero[0]
    if kind is GateType.CONST0:
        return "0", "1"
    if kind is GateType.CONST1:
        return "1", "0"
    raise ValueError(f"unknown gate type {kind!r}")


class CompiledEvaluator3:
    """Compiled three-valued (0/1/X) evaluation over two bitplanes.

    A net's value is represented by two flags: *is-one* and *is-zero*
    (neither set = X).  Used by PODEM's implication, where the good machine
    must be fully re-evaluated on every decision.
    """

    def __init__(self, netlist: Netlist):
        if netlist.dffs:
            raise ValueError("three-valued evaluation is combinational only")
        self.netlist = netlist
        lines = ["def _eval3(v1, v0):"]
        order = netlist.levelize()
        if not order:
            lines.append("    pass")
        for gate in order:
            one = [f"v1[{i}]" for i in gate.inputs]
            zero = [f"v0[{i}]" for i in gate.inputs]
            e1, e0 = _gate_expression3(gate.kind, one, zero)
            lines.append(f"    v1[{gate.output}] = {e1}")
            lines.append(f"    v0[{gate.output}] = {e0}")
        namespace: Dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        self._eval3 = namespace["_eval3"]

    def run(self, assignments: Dict[int, int]) -> tuple:
        """Evaluate with partially assigned PIs; returns ``(is1, is0)``."""
        n = self.netlist.n_nets
        is1 = [0] * n
        is0 = [0] * n
        for net in self.netlist.inputs:
            value = assignments.get(net)
            if value == 1:
                is1[net] = 1
            elif value == 0:
                is0[net] = 1
        self._eval3(is1, is0)
        return is1, is0
