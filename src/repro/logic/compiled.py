"""Code-generated netlist evaluation.

Interpreted gate-by-gate evaluation pays Python's per-gate dispatch cost on
every call.  For hot paths (fault-simulation good machines, mixed-level
propagation) this module compiles a netlist's levelised gate list into one
straight-line Python function of array assignments — typically 5–10×
faster — with results bit-identical to :class:`CombSimulator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


def _gate_expression(kind: GateType, operands: List[str]) -> str:
    if kind is GateType.AND:
        return " & ".join(operands)
    if kind is GateType.OR:
        return " | ".join(operands)
    if kind is GateType.NAND:
        return f"({' & '.join(operands)}) ^ m"
    if kind is GateType.NOR:
        return f"({' | '.join(operands)}) ^ m"
    if kind is GateType.XOR:
        return " ^ ".join(operands)
    if kind is GateType.XNOR:
        return f"({' ^ '.join(operands)}) ^ m"
    if kind is GateType.NOT:
        return f"{operands[0]} ^ m"
    if kind is GateType.BUF:
        return operands[0]
    if kind is GateType.CONST0:
        return "0"
    if kind is GateType.CONST1:
        return "m"
    raise ValueError(f"unknown gate type {kind!r}")


class CompiledEvaluator:
    """A compiled combinational evaluator for one netlist.

    :meth:`eval_into` fills a pre-populated value list in place: the caller
    sets primary-input (and DFF Q) slots, the compiled body computes every
    gate output.  Forcing/fault injection is layered on top by the caller
    (cone re-evaluation), exactly as with the interpreted simulator.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        lines = ["def _eval(v, m):"]
        order = netlist.levelize()
        if not order:
            lines.append("    pass")
        for gate in order:
            operands = [f"v[{i}]" for i in gate.inputs]
            lines.append(
                f"    v[{gate.output}] = {_gate_expression(gate.kind, operands)}"
            )
        namespace: Dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        self._eval = namespace["_eval"]

    def run(self, inputs: Dict[int, int], n_patterns: int = 1,
            state: Optional[Dict[int, int]] = None) -> List[int]:
        """Drop-in equivalent of :meth:`CombSimulator.run` (no forcing)."""
        width_mask = (1 << n_patterns) - 1
        values = [0] * self.netlist.n_nets
        for net in self.netlist.inputs:
            values[net] = inputs[net] & width_mask
        for dff in self.netlist.dffs:
            if state is not None and dff.q in state:
                values[dff.q] = state[dff.q] & width_mask
            else:
                values[dff.q] = width_mask if dff.init else 0
        self._eval(values, width_mask)
        return values


def _gate_expression3(kind: GateType, one: List[str],
                      zero: List[str]) -> tuple:
    """(is-one expr, is-zero expr) for three-valued bitplane evaluation."""
    if kind is GateType.AND:
        return " & ".join(one), " | ".join(zero)
    if kind is GateType.OR:
        return " | ".join(one), " & ".join(zero)
    if kind is GateType.NAND:
        return " | ".join(zero), " & ".join(one)
    if kind is GateType.NOR:
        return " & ".join(zero), " | ".join(one)
    if kind is GateType.XOR:
        a1, b1 = one
        a0, b0 = zero
        return (f"({a1} & {b0}) | ({a0} & {b1})",
                f"({a1} & {b1}) | ({a0} & {b0})")
    if kind is GateType.XNOR:
        a1, b1 = one
        a0, b0 = zero
        return (f"({a1} & {b1}) | ({a0} & {b0})",
                f"({a1} & {b0}) | ({a0} & {b1})")
    if kind is GateType.NOT:
        return zero[0], one[0]
    if kind is GateType.BUF:
        return one[0], zero[0]
    if kind is GateType.CONST0:
        return "0", "1"
    if kind is GateType.CONST1:
        return "1", "0"
    raise ValueError(f"unknown gate type {kind!r}")


class CompiledEvaluator3:
    """Compiled three-valued (0/1/X) evaluation over two bitplanes.

    A net's value is represented by two flags: *is-one* and *is-zero*
    (neither set = X).  Used by PODEM's implication, where the good machine
    must be fully re-evaluated on every decision.
    """

    def __init__(self, netlist: Netlist):
        if netlist.dffs:
            raise ValueError("three-valued evaluation is combinational only")
        self.netlist = netlist
        lines = ["def _eval3(v1, v0):"]
        order = netlist.levelize()
        if not order:
            lines.append("    pass")
        for gate in order:
            one = [f"v1[{i}]" for i in gate.inputs]
            zero = [f"v0[{i}]" for i in gate.inputs]
            e1, e0 = _gate_expression3(gate.kind, one, zero)
            lines.append(f"    v1[{gate.output}] = {e1}")
            lines.append(f"    v0[{gate.output}] = {e0}")
        namespace: Dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        self._eval3 = namespace["_eval3"]

    def run(self, assignments: Dict[int, int]) -> tuple:
        """Evaluate with partially assigned PIs; returns ``(is1, is0)``."""
        n = self.netlist.n_nets
        is1 = [0] * n
        is0 = [0] * n
        for net in self.netlist.inputs:
            value = assignments.get(net)
            if value == 1:
                is1[net] = 1
            elif value == 0:
                is0[net] = 1
        self._eval3(is1, is0)
        return is1, is0
