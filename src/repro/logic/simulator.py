"""Pattern-parallel combinational simulation.

Net values are Python integers packing one bit per test pattern, so a single
gate evaluation computes the gate for every pattern at once.  The simulator
supports *forced nets* — nets whose computed value is overridden with a
constant pattern — which is the primitive that stuck-at fault injection is
built from.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.logic.gates import GateType, eval_gate
from repro.logic.netlist import Netlist


def pack_patterns(per_pattern_values: Sequence[int], bit_index: int) -> int:
    """Pack bit ``bit_index`` of each pattern value into one integer.

    ``per_pattern_values[k]`` is the word applied under pattern *k*; the
    result has bit *k* equal to bit ``bit_index`` of that word.
    """
    packed = 0
    for k, word in enumerate(per_pattern_values):
        if (word >> bit_index) & 1:
            packed |= 1 << k
    return packed


def pack_bus_patterns(bus_width: int, per_pattern_words: Sequence[int]) -> List[int]:
    """Pack a sequence of per-pattern words into per-net packed values.

    Returns a list of ``bus_width`` integers, one per net (LSB first), each
    packing the corresponding bit across all patterns.
    """
    return [pack_patterns(per_pattern_words, i) for i in range(bus_width)]


def unpack_output(packed_bits: Sequence[int], pattern: int) -> int:
    """Extract pattern ``pattern``'s word from packed per-net values."""
    word = 0
    for i, packed in enumerate(packed_bits):
        if (packed >> pattern) & 1:
            word |= 1 << i
    return word


class CombSimulator:
    """Evaluates the combinational portion of a netlist.

    DFF Q nets are treated as extra inputs supplied via ``state``; DFF D
    values appear in the returned value table like any other net.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.order = netlist.levelize()

    def run(
        self,
        inputs: Mapping[int, int],
        n_patterns: int = 1,
        state: Optional[Mapping[int, int]] = None,
        forced: Optional[Mapping[int, int]] = None,
        force_masks: Optional[Mapping[int, tuple]] = None,
    ) -> List[int]:
        """Evaluate all nets and return values indexed by net id.

        ``inputs`` maps primary-input net ids to packed pattern values;
        ``state`` maps DFF Q net ids to packed values (defaults to each
        DFF's ``init`` replicated over all patterns); ``forced`` overrides
        the computed value of any net (applied to sources immediately and to
        gate outputs as they are produced).  ``force_masks`` maps net id to
        ``(and_mask, or_mask)`` pairs applied as ``v = (v & and) | or`` —
        the per-pattern-bit forcing used by fault-parallel fault simulation.
        """
        width_mask = (1 << n_patterns) - 1
        values: List[int] = [0] * self.netlist.n_nets
        for net in self.netlist.inputs:
            values[net] = inputs[net] & width_mask
        for dff in self.netlist.dffs:
            if state is not None and dff.q in state:
                values[dff.q] = state[dff.q] & width_mask
            else:
                values[dff.q] = width_mask if dff.init else 0
        if forced:
            for net, val in forced.items():
                values[net] = val & width_mask
        if force_masks:
            for net, (and_mask, or_mask) in force_masks.items():
                values[net] = (values[net] & and_mask) | (or_mask & width_mask)
        for gate in self.order:
            out = gate.output
            if forced and out in forced:
                continue  # already pinned
            value = eval_gate(
                gate.kind,
                [values[i] for i in gate.inputs],
                width_mask,
            )
            if force_masks and out in force_masks:
                and_mask, or_mask = force_masks[out]
                value = (value & and_mask) | (or_mask & width_mask)
            values[out] = value
        return values

    def run_bus(
        self,
        bus_inputs: Mapping[str, Sequence[int]],
        n_patterns: int = 1,
        state: Optional[Mapping[int, int]] = None,
        forced: Optional[Mapping[int, int]] = None,
    ) -> Dict[str, List[int]]:
        """Like :meth:`run` but addressed by bus names.

        ``bus_inputs`` maps input bus names to per-pattern *words*; the
        result maps every declared bus name to per-pattern words.
        """
        packed: Dict[int, int] = {}
        for name, words in bus_inputs.items():
            nets = self.netlist.buses[name]
            if len(words) > n_patterns:
                raise ValueError(
                    f"bus {name!r}: {len(words)} words for {n_patterns} patterns"
                )
            for i, net in enumerate(nets):
                packed[net] = pack_patterns(words, i)
        values = self.run(packed, n_patterns, state=state, forced=forced)
        result: Dict[str, List[int]] = {}
        for name, nets in self.netlist.buses.items():
            bits = [values[n] for n in nets]
            result[name] = [unpack_output(bits, k) for k in range(n_patterns)]
        return result

    def evaluate_word(self, bus_inputs: Mapping[str, int],
                      state: Optional[Mapping[int, int]] = None) -> Dict[str, int]:
        """Single-pattern convenience: word in, word out per bus."""
        single = {name: [word] for name, word in bus_inputs.items()}
        result = self.run_bus(single, n_patterns=1, state=state)
        return {name: words[0] for name, words in result.items()}
