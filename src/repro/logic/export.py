"""Structural Verilog export.

The paper's flow moves between behavioural VHDL, a synthesised gate-level
netlist, and testbenches.  This module provides the equivalent escape
hatch: any :class:`~repro.logic.netlist.Netlist` can be written as a
self-contained structural Verilog module (primitive-gate instances plus
positive-edge flip-flops with synchronous reset), suitable for inspection
or for feeding an external tool.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist

_VERILOG_OP = {
    GateType.AND: ("&", False),
    GateType.OR: ("|", False),
    GateType.NAND: ("&", True),
    GateType.NOR: ("|", True),
    GateType.XOR: ("^", False),
    GateType.XNOR: ("^", True),
}

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _sanitise(name: str) -> str:
    """Make a net name a legal Verilog identifier (escaped if needed)."""
    candidate = name.replace("[", "_").replace("]", "").replace("/", "_")
    if _IDENT.match(candidate):
        return candidate
    return "\\" + name + " "


def to_verilog(netlist: Netlist, module_name: str = None) -> str:
    """Render ``netlist`` as structural Verilog source.

    Nets that belong to a declared bus are named ``<bus>_<index>`` so
    ports keep their architectural names even when the underlying nets
    were anonymous.
    """
    module = module_name or _sanitise(netlist.name)
    preferred: Dict[int, str] = {}
    for bus_name, nets in netlist.buses.items():
        for i, net in enumerate(nets):
            preferred.setdefault(
                net,
                bus_name if len(nets) == 1 else f"{bus_name}[{i}]",
            )
    names: Dict[int, str] = {}
    used = set()
    for net_id, raw in enumerate(netlist.net_names):
        name = _sanitise(preferred.get(net_id, raw))
        while name in used:
            name += "_"
        names[net_id] = name
        used.add(name)

    inputs = [names[n] for n in netlist.inputs]
    outputs = [names[n] for n in netlist.outputs]
    lines: List[str] = []
    ports = ["clk", "rst"] + inputs + outputs
    lines.append(f"module {module} (")
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    lines.append("  input clk, rst;")
    for name in inputs:
        lines.append(f"  input {name};")
    for name in outputs:
        lines.append(f"  output {name};")
    declared = set(netlist.inputs) | set(netlist.outputs)
    for gate in netlist.gates:
        if gate.output not in declared:
            lines.append(f"  wire {names[gate.output]};")
            declared.add(gate.output)
    for dff in netlist.dffs:
        lines.append(f"  reg {names[dff.q]};")

    for gate in netlist.gates:
        out = names[gate.output]
        ins = [names[i] for i in gate.inputs]
        if gate.kind is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif gate.kind is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        elif gate.kind is GateType.BUF:
            lines.append(f"  assign {out} = {ins[0]};")
        elif gate.kind is GateType.NOT:
            lines.append(f"  assign {out} = ~{ins[0]};")
        else:
            op, inverted = _VERILOG_OP[gate.kind]
            expr = f" {op} ".join(ins)
            if inverted:
                expr = f"~({expr})"
            lines.append(f"  assign {out} = {expr};")

    if netlist.dffs:
        lines.append("  always @(posedge clk) begin")
        lines.append("    if (rst) begin")
        for dff in netlist.dffs:
            # No-reset flops (init=None) power up unknown; 1'bx keeps the
            # exported RTL honest about that.
            init = "x" if dff.init is None else dff.init
            lines.append(f"      {names[dff.q]} <= 1'b{init};")
        lines.append("    end else begin")
        for dff in netlist.dffs:
            lines.append(f"      {names[dff.q]} <= {names[dff.d]};")
        lines.append("    end")
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
