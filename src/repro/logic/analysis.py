"""Structural analysis of netlists: depth, fanout, region inventories.

Synthesis reports quote logic depth (a timing proxy), fanout distribution
and per-block size; these helpers compute the same quantities for this
project's netlists and feed the Fig. 5/6 structure benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.logic.netlist import Netlist


@dataclass(frozen=True)
class DepthReport:
    """Combinational depth analysis (unit gate delay)."""

    max_depth: int
    mean_output_depth: float
    depth_by_output: Dict[int, int]


def logic_depth(netlist: Netlist) -> DepthReport:
    """Longest gate chain from any source to each output/DFF input.

    Sources (PIs, DFF Qs, constants) have depth 0; each gate adds one
    unit.  The maximum over POs and DFF D inputs is the classic levelised
    depth a synthesis tool would report before technology mapping.
    """
    depth: Dict[int, int] = {net: 0 for net in netlist.inputs}
    for dff in netlist.dffs:
        depth[dff.q] = 0
    for gate in netlist.levelize():
        if gate.inputs:
            depth[gate.output] = 1 + max(depth[i] for i in gate.inputs)
        else:
            depth[gate.output] = 0
    sinks = list(netlist.outputs) + [dff.d for dff in netlist.dffs]
    depth_by_output = {net: depth.get(net, 0) for net in sinks}
    values = list(depth_by_output.values()) or [0]
    return DepthReport(
        max_depth=max(values),
        mean_output_depth=sum(values) / len(values),
        depth_by_output=depth_by_output,
    )


def fanout_histogram(netlist: Netlist, buckets: Tuple[int, ...] = (1, 2, 4, 8)
                     ) -> Dict[str, int]:
    """Histogram of net fanouts, bucketed (`<=1`, `<=2`, ..., `>last`).

    With ``buckets=()`` every loaded net lands in a single ``>0``
    overflow bucket.  A netlist with no gates and no DFFs yields a
    histogram whose counts are all zero.
    """
    counts: Dict[int, int] = {}
    for gate in netlist.gates:
        for net in gate.inputs:
            counts[net] = counts.get(net, 0) + 1
    for dff in netlist.dffs:
        counts[dff.d] = counts.get(dff.d, 0) + 1
    overflow = f">{buckets[-1]}" if buckets else ">0"
    histogram: Dict[str, int] = {f"<={b}": 0 for b in buckets}
    histogram[overflow] = 0
    for fanout in counts.values():
        for bucket in buckets:
            if fanout <= bucket:
                histogram[f"<={bucket}"] += 1
                break
        else:
            histogram[overflow] += 1
    return histogram


def region_inventory(netlist: Netlist) -> Dict[str, int]:
    """Gate count per provenance region (see ``NetlistBuilder.region``).

    Gates whose output net carries no region label are grouped under
    ``"(glue)"`` — pipeline latches, forwarding comparators and the like.
    """
    inventory: Dict[str, int] = {}
    for gate in netlist.gates:
        region = netlist.net_regions.get(gate.output, "(glue)")
        inventory[region] = inventory.get(region, 0) + 1
    return inventory
