"""Gate-level netlist substrate.

This package provides the minimal structural netlist model that the rest of
the library is built on:

* :mod:`repro.logic.gates` — primitive gate types and their pattern-parallel
  evaluation semantics (many test patterns packed into one Python integer).
* :mod:`repro.logic.netlist` — the :class:`~repro.logic.netlist.Netlist`
  container (nets, gates, flip-flops, buses) with levelisation and
  validation.
* :mod:`repro.logic.builder` — :class:`~repro.logic.builder.NetlistBuilder`,
  a convenience layer for constructing netlists structurally.
* :mod:`repro.logic.simulator` — combinational pattern-parallel simulation
  with support for forced nets (the hook used by stuck-at fault injection).
* :mod:`repro.logic.sequential` — cycle-based sequential simulation over the
  netlist's D flip-flops.
"""

from repro.logic.gates import GateType
from repro.logic.netlist import Gate, Dff, Netlist, NetlistStats
from repro.logic.builder import NetlistBuilder
from repro.logic.simulator import CombSimulator, pack_patterns, unpack_output
from repro.logic.sequential import SequentialSimulator

__all__ = [
    "GateType",
    "Gate",
    "Dff",
    "Netlist",
    "NetlistStats",
    "NetlistBuilder",
    "CombSimulator",
    "SequentialSimulator",
    "pack_patterns",
    "unpack_output",
]
