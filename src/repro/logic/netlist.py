"""The structural netlist container.

A :class:`Netlist` is a flat graph of primitive gates over integer net ids.
Net names are kept in a side table for debugging and for addressing nets
from tests; all simulation works on the integer ids.  Sequential elements
are positive-edge D flip-flops whose Q nets act as pseudo-primary-inputs for
combinational analysis and whose D nets act as pseudo-primary-outputs.

Buses (ordered lists of nets, LSB first) are pure metadata: they let the RTL
layer and the fault-simulation layer talk about multi-bit ports without the
netlist itself knowing about words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.gates import GateType, check_arity


def _config_error(message: str) -> ValueError:
    """A :class:`~repro.runtime.errors.ConfigError`, imported lazily.

    ``repro.runtime``'s package init imports the cache layer, which
    imports this module — a top-level import here would be circular.
    ``ConfigError`` subclasses ``ValueError``, so callers written against
    the historical bare ``ValueError`` keep working.
    """
    from repro.runtime.errors import ConfigError
    return ConfigError(message)


@dataclass(frozen=True)
class Gate:
    """One primitive gate: ``output = kind(inputs)``."""

    kind: GateType
    output: int
    inputs: Tuple[int, ...]


@dataclass(frozen=True)
class Dff:
    """A positive-edge D flip-flop with reset value ``init``.

    ``init=None`` models a flop with no reset: its power-up value is
    unknown.  Simulators treat an unknown init as 0 (they test the field
    for truthiness); the lint pass flags any path from such a flop to an
    observable output (rule NET004).
    """

    q: int
    d: int
    init: Optional[int] = 0


@dataclass(frozen=True)
class NetlistStats:
    """Size summary of a netlist, used in reports and benchmarks."""

    name: str
    n_nets: int
    n_gates: int
    n_dffs: int
    n_inputs: int
    n_outputs: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.n_gates} gates, {self.n_dffs} DFFs, "
            f"{self.n_nets} nets, {self.n_inputs} PIs, {self.n_outputs} POs"
        )


class Netlist:
    """A flat gate-level netlist.

    Attributes of interest to callers:

    * ``inputs`` / ``outputs`` — primary input / output net ids, in
      declaration order.
    * ``gates`` — list of :class:`Gate`; each net has at most one driver.
    * ``dffs`` — list of :class:`Dff`.
    * ``buses`` — name → list of net ids (LSB first), pure metadata.
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.net_names: List[str] = []
        self._ids_by_name: Dict[str, int] = {}
        self.gates: List[Gate] = []
        self.driver: Dict[int, int] = {}  # net id -> index into self.gates
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self.dffs: List[Dff] = []
        self._dff_q: Dict[int, Dff] = {}
        self.buses: Dict[str, List[int]] = {}
        #: optional provenance: driven net id -> region label (set by the
        #: builder's ``region`` context; used for per-component analyses
        #: of flat assemblies).
        self.net_regions: Dict[int, str] = {}
        self._topo: Optional[List[Gate]] = None
        self._fanout: Optional[Dict[int, List[int]]] = None
        self._topo_pos: Optional[List[int]] = None

    @property
    def _topo_cache(self) -> Optional[List[Gate]]:
        return self._topo

    @_topo_cache.setter
    def _topo_cache(self, value: Optional[List[Gate]]) -> None:
        # Invalidating the topological order (structural mutation) must
        # also drop the derived fanout map and topo-position caches;
        # routing the write through a setter keeps callers that assign
        # ``_topo_cache = None`` directly (artifact loading, tests)
        # correct.
        self._topo = value
        if value is None:
            self._fanout = None
            self._topo_pos = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> int:
        """Create a net named ``name`` and return its id."""
        if name in self._ids_by_name:
            raise _config_error(f"duplicate net name {name!r}")
        net_id = len(self.net_names)
        self.net_names.append(name)
        self._ids_by_name[name] = net_id
        return net_id

    def net_id(self, name: str) -> int:
        """Look up a net id by name."""
        return self._ids_by_name[name]

    def has_net(self, name: str) -> bool:
        return name in self._ids_by_name

    def add_input(self, net: int) -> int:
        self.inputs.append(net)
        return net

    def add_output(self, net: int) -> int:
        self.outputs.append(net)
        return net

    def add_gate(self, kind: GateType, output: int, inputs: Sequence[int]) -> Gate:
        """Attach a gate driving ``output``; each net may have one driver."""
        check_arity(kind, len(inputs))
        if output in self.driver:
            raise _config_error(
                f"net {self.net_names[output]!r} already has a driver"
            )
        if output in self._dff_q:
            raise _config_error(
                f"net {self.net_names[output]!r} is a DFF output"
            )
        gate = Gate(kind, output, tuple(inputs))
        self.driver[output] = len(self.gates)
        self.gates.append(gate)
        self._topo_cache = None
        return gate

    def add_dff(self, q: int, d: int, init: Optional[int] = 0) -> Dff:
        if q in self.driver or q in self._dff_q:
            raise _config_error(f"net {self.net_names[q]!r} already driven")
        dff = Dff(q, d, None if init is None else init & 1)
        self.dffs.append(dff)
        self._dff_q[q] = dff
        self._topo_cache = None
        return dff

    def add_bus(self, name: str, nets: Sequence[int]) -> List[int]:
        """Register ``nets`` (LSB first) as a named bus and return them."""
        if name in self.buses:
            raise _config_error(f"duplicate bus name {name!r}")
        self.buses[name] = list(nets)
        return self.buses[name]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    def is_state_net(self, net: int) -> bool:
        """True if ``net`` is a DFF Q output."""
        return net in self._dff_q

    def stats(self) -> NetlistStats:
        return NetlistStats(
            name=self.name,
            n_nets=self.n_nets,
            n_gates=len(self.gates),
            n_dffs=len(self.dffs),
            n_inputs=len(self.inputs),
            n_outputs=len(self.outputs),
        )

    def levelize(self) -> List[Gate]:
        """Return the gates in topological order.

        DFF Q nets and primary inputs are treated as sources.  Raises
        ``ValueError`` on combinational loops or undriven internal nets.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        ready = set(self.inputs)
        ready.update(d.q for d in self.dffs)
        remaining_inputs = {}
        consumers: Dict[int, List[int]] = {}
        for idx, gate in enumerate(self.gates):
            pending = [n for n in gate.inputs if n not in ready]
            remaining_inputs[idx] = len(pending)
            for n in pending:
                consumers.setdefault(n, []).append(idx)
        order: List[Gate] = []
        frontier = [i for i, cnt in remaining_inputs.items() if cnt == 0]
        while frontier:
            next_frontier: List[int] = []
            for idx in frontier:
                gate = self.gates[idx]
                order.append(gate)
                for consumer in consumers.get(gate.output, ()):
                    remaining_inputs[consumer] -= 1
                    if remaining_inputs[consumer] == 0:
                        next_frontier.append(consumer)
            frontier = next_frontier
        if len(order) != len(self.gates):
            stuck = [
                self.net_names[self.gates[i].output]
                for i, cnt in remaining_inputs.items()
                if cnt > 0
            ]
            raise _config_error(
                f"netlist {self.name!r} has a combinational loop or "
                f"undriven nets feeding: {stuck[:10]}"
            )
        self._topo_cache = order
        return order

    def fanout_map(self) -> Dict[int, List[int]]:
        """Map net id → indices of gates that read it (cached until the
        next structural mutation)."""
        if self._fanout is None:
            fanout: Dict[int, List[int]] = {}
            for idx, gate in enumerate(self.gates):
                for n in gate.inputs:
                    fanout.setdefault(n, []).append(idx)
            self._fanout = fanout
        return self._fanout

    def _topo_positions(self) -> List[int]:
        """Gate-list index → position in topological order (cached)."""
        if self._topo_pos is None:
            by_id = {id(g): p for p, g in enumerate(self.levelize())}
            self._topo_pos = [by_id[id(g)] for g in self.gates]
        return self._topo_pos

    def transitive_fanout_gates(self, net: int) -> List[Gate]:
        """Gates in the transitive fanout of ``net``, in topological order.

        The cone stops at DFF D inputs (state boundaries); used by the
        combinational fault simulator for per-fault cone re-evaluation.
        A worklist closure over the cached fanout map, so the cost
        scales with the cone, not the netlist — fault simulation builds
        one cone per fault site, which at whole-netlist scan cost was
        quadratic per netlist.
        """
        fanout = self.fanout_map()
        seen = set()
        work = list(fanout.get(net, ()))
        while work:
            idx = work.pop()
            if idx not in seen:
                seen.add(idx)
                work.extend(fanout.get(self.gates[idx].output, ()))
        pos = self._topo_positions()
        return [self.gates[i] for i in sorted(seen, key=pos.__getitem__)]

    def validate(self) -> None:
        """Check structural sanity.

        Raises :class:`~repro.runtime.errors.ConfigError` (a
        ``ValueError`` subclass) on undriven nets, multi-driven nets, or
        combinational loops.  The multi-driven check scans the gate list
        itself, so it also catches gates appended directly to ``gates``
        (bypassing :meth:`add_gate`'s incremental guard).
        """
        sources: Dict[int, int] = {}
        for gate in self.gates:
            sources[gate.output] = sources.get(gate.output, 0) + 1
        for dff in self.dffs:
            sources[dff.q] = sources.get(dff.q, 0) + 1
        for net in self.inputs:
            sources[net] = sources.get(net, 0) + 1
        for net, count in sources.items():
            if count > 1:
                raise _config_error(
                    f"net {self.net_names[net]!r} has {count} drivers"
                )
        driven = set(sources)
        for gate in self.gates:
            for n in gate.inputs:
                if n not in driven:
                    raise _config_error(
                        f"gate input net {self.net_names[n]!r} is undriven"
                    )
        for out in self.outputs:
            if out not in driven:
                raise _config_error(
                    f"primary output {self.net_names[out]!r} is undriven"
                )
        for dff in self.dffs:
            if dff.d not in driven:
                raise _config_error(
                    f"DFF D input {self.net_names[dff.d]!r} is undriven"
                )
        self.levelize()  # raises on combinational loops
