"""Signal-processing kernels for the DSP core.

The paper's motivation is cores that spend their lives running kernels
like these.  Each kernel is an assembler-level routine over the 4.4
fixed-point ISA with a float reference model; they serve as realistic
workloads for the examples, as a source of long instruction streams for
fault-simulation experiments, and as living documentation of the ISA.

All kernels avoid read-after-write hazards only through the core's own
forwarding — no NOP padding — so they double as pipeline stress tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dsp.core import DspCore
from repro.dsp.fixedpoint import float_to_q44, q44_to_float
from repro.dsp.isa import Instruction, Opcode, encode

#: Register convention used by the kernels.
#: R1..R4: coefficients; R5..R8: data window; R12: scratch destination.
_COEFF_BASE = 1
_DATA_BASE = 5
_SCRATCH = 12


def _run_collect(program: Sequence[Instruction]) -> List[float]:
    """Execute and collect the output-port stream as floats."""
    core = DspCore()
    outputs: List[float] = []
    words = [encode(i) for i in program]
    words += [encode(Instruction(Opcode.NOP))] * 4
    for word in words:
        result = core.step(word)
        if result.out_valid:
            outputs.append(q44_to_float(result.out_value))
    return outputs


# ----------------------------------------------------------------------
# FIR filter
# ----------------------------------------------------------------------
def fir_program(samples: Sequence[float],
                taps: Sequence[float]) -> List[Instruction]:
    """N-tap FIR: one MAC chain per output sample, observed with outa."""
    if len(taps) > 4:
        raise ValueError("register convention supports up to 4 taps")
    program: List[Instruction] = []
    for i, tap in enumerate(taps):
        program.append(Instruction(Opcode.LDI, imm=float_to_q44(tap),
                                   dest=_COEFF_BASE + i))
    window = [0.0] * len(taps)
    for sample in samples:
        window = [sample] + window[:-1]
        for i, value in enumerate(window):
            program.append(Instruction(Opcode.LDI,
                                       imm=float_to_q44(value),
                                       dest=_DATA_BASE + i))
        program.append(Instruction(Opcode.MPYA, rega=_DATA_BASE,
                                   regb=_COEFF_BASE, dest=_SCRATCH))
        for i in range(1, len(taps)):
            program.append(Instruction(Opcode.MACA_ADD,
                                       rega=_DATA_BASE + i,
                                       regb=_COEFF_BASE + i,
                                       dest=_SCRATCH))
        program.append(Instruction(Opcode.OUTA))
    return program


def fir(samples: Sequence[float], taps: Sequence[float]) -> List[float]:
    """Run the FIR on the core; returns the 4.4-quantised outputs."""
    return _run_collect(fir_program(samples, taps))


def fir_reference(samples: Sequence[float],
                  taps: Sequence[float]) -> List[float]:
    """Float model of :func:`fir` (no quantisation, no saturation)."""
    window = [0.0] * len(taps)
    outputs = []
    for sample in samples:
        window = [sample] + window[:-1]
        outputs.append(sum(x * h for x, h in zip(window, taps)))
    return outputs


# ----------------------------------------------------------------------
# Dot product
# ----------------------------------------------------------------------
def dot_product_program(xs: Sequence[float],
                        ys: Sequence[float]) -> List[Instruction]:
    """Σ x·y accumulated in AccB, observed once at the end with outb."""
    if len(xs) != len(ys):
        raise ValueError("vectors must have equal length")
    program: List[Instruction] = []
    first = True
    for x, y in zip(xs, ys):
        program.append(Instruction(Opcode.LDI, imm=float_to_q44(x),
                                   dest=_DATA_BASE))
        program.append(Instruction(Opcode.LDI, imm=float_to_q44(y),
                                   dest=_DATA_BASE + 1))
        opcode = Opcode.MPYB if first else Opcode.MACB_ADD
        program.append(Instruction(opcode, rega=_DATA_BASE,
                                   regb=_DATA_BASE + 1, dest=_SCRATCH))
        first = False
    program.append(Instruction(Opcode.OUTB))
    return program


def dot_product(xs: Sequence[float], ys: Sequence[float]) -> float:
    outputs = _run_collect(dot_product_program(xs, ys))
    return outputs[-1]


def dot_product_reference(xs: Sequence[float],
                          ys: Sequence[float]) -> float:
    return sum(x * y for x, y in zip(xs, ys))


# ----------------------------------------------------------------------
# IIR biquad (direct form I, single section)
# ----------------------------------------------------------------------
def biquad(samples: Sequence[float],
           b_coeffs: Tuple[float, float, float],
           a_coeffs: Tuple[float, float]) -> List[float]:
    """y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2].

    Feedback terms are applied with MAC−; outputs are re-quantised to
    4.4 through the limiter each step (as the hardware does).
    """
    b0, b1, b2 = b_coeffs
    a1, a2 = a_coeffs
    program: List[Instruction] = []
    for i, coeff in enumerate((b0, b1, b2, a1, a2)):
        program.append(Instruction(Opcode.LDI, imm=float_to_q44(coeff),
                                   dest=_COEFF_BASE + i))
    x1 = x2 = y1 = y2 = 0.0
    outputs_expected = []
    for x in samples:
        values = (x, x1, x2, y1, y2)
        for i, value in enumerate(values):
            program.append(Instruction(Opcode.LDI,
                                       imm=float_to_q44(value),
                                       dest=_DATA_BASE + i if i < 3
                                       else 9 + (i - 3)))
        program.append(Instruction(Opcode.MPYA, rega=_DATA_BASE,
                                   regb=_COEFF_BASE, dest=_SCRATCH))
        program.append(Instruction(Opcode.MACA_ADD, rega=_DATA_BASE + 1,
                                   regb=_COEFF_BASE + 1, dest=_SCRATCH))
        program.append(Instruction(Opcode.MACA_ADD, rega=_DATA_BASE + 2,
                                   regb=_COEFF_BASE + 2, dest=_SCRATCH))
        program.append(Instruction(Opcode.MACA_SUB, rega=9,
                                   regb=_COEFF_BASE + 3, dest=_SCRATCH))
        program.append(Instruction(Opcode.MACA_SUB, rega=10,
                                   regb=_COEFF_BASE + 4, dest=_SCRATCH))
        program.append(Instruction(Opcode.OUTA))
        # Track the architectural (quantised) feedback for the next step.
        y = _run_collect(program)[-1]
        outputs_expected.append(y)
        x2, x1 = x1, x
        y2, y1 = y1, y
    return outputs_expected


def biquad_reference(samples: Sequence[float],
                     b_coeffs: Tuple[float, float, float],
                     a_coeffs: Tuple[float, float]) -> List[float]:
    b0, b1, b2 = b_coeffs
    a1, a2 = a_coeffs
    x1 = x2 = y1 = y2 = 0.0
    outputs = []
    for x in samples:
        y = b0 * x + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2
        outputs.append(y)
        x2, x1 = x1, x
        y2, y1 = y1, y
    return outputs


# ----------------------------------------------------------------------
# Block scaler (saturating multiply by a constant)
# ----------------------------------------------------------------------
def scale(samples: Sequence[float], gain: float) -> List[float]:
    """y = saturate(gain · x) — exercises the limiter's clipping."""
    program: List[Instruction] = []
    program.append(Instruction(Opcode.LDI, imm=float_to_q44(gain),
                               dest=_COEFF_BASE))
    for sample in samples:
        program.append(Instruction(Opcode.LDI, imm=float_to_q44(sample),
                                   dest=_DATA_BASE))
        program.append(Instruction(Opcode.MPYA, rega=_DATA_BASE,
                                   regb=_COEFF_BASE, dest=_SCRATCH))
        program.append(Instruction(Opcode.OUTA))
    return _run_collect(program)


def scale_reference(samples: Sequence[float], gain: float) -> List[float]:
    clip_hi = 127 / 16
    clip_lo = -128 / 16
    return [min(clip_hi, max(clip_lo, gain * x)) for x in samples]
