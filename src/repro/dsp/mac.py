"""Behavioural MAC datapath (paper Fig. 5) with tracing and injection.

Dataflow (one EX-stage evaluation)::

    opA(8), opB(8)  ──► multiplier ──► P(18) ──► MUXa ──► X ─┐
    AccA/AccB ──► MUXg_shifter ──► shifter ──► S ──► MUXb ──► Y ─┤
                                                   adder/sub: R = Y ± X
    R ──► truncater ──► T ──► Acc[accsel]  (write-through)
    Acc' ──► MUXg_limiter ──► limiter ──► L(8) ──► MacReg

The shifter reads the accumulator value *before* the write (the feedback
loop of Fig. 5); the limiter reads the value *after* it (write-through), so
a MAC instruction's limited result is available the same cycle.

Every component evaluation is recorded in an optional trace (inputs,
output, active mode) and any component's output can be *overridden* — the
primitive that the observability metric and the hierarchical fault
simulator build on.  The unrolled MUXg instances of the paper
(``muxg_shifter`` / ``muxg_limiter``) are traced as separate components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro._util import bits, mask
from repro.dsp.fixedpoint import ACC_WIDTH, OPERAND_WIDTH
from repro.dsp.isa import ControlWord
from repro.rtl.arith import addsub_reference
from repro.rtl.multiplier import multiplier_reference
from repro.rtl.saturate import limiter_reference
from repro.rtl.shifter import shifter_reference
from repro.rtl.truncate import truncater_reference


@dataclass(frozen=True)
class MacParams:
    """Width/feature parameters of one MAC datapath instance.

    The defaults are the paper core (8-bit 4.4 operands, 18-bit 10.8
    accumulators); :mod:`repro.dsp.family` derives other points.
    """

    operand_width: int = OPERAND_WIDTH
    acc_width: int = ACC_WIDTH
    #: Fractional accumulator bits zeroed by the truncater.
    frac: int = 8
    #: Low accumulator bits the limiter window discards.
    frac_drop: int = 4
    #: Shift-amount field width (low bits of operand A).
    amt_width: int = 4
    has_truncater: bool = True
    has_limiter: bool = True


#: The paper core's MAC parameters.
PAPER_MAC = MacParams()


@dataclass
class ComponentActivity:
    """One component evaluation: named input ports, output word, mode key."""

    inputs: Dict[str, int]
    output: int
    mode: int = 0


#: A trace is component name → activity for one evaluation.
Trace = Dict[str, ComponentActivity]

#: Overrides force a component's *output* to a given word for one evaluation.
Overrides = Mapping[str, int]


@dataclass(frozen=True)
class MacControls:
    """The MAC-facing slice of a :class:`~repro.dsp.isa.ControlWord`."""

    muxa_zero: int
    muxb_shift: int
    sub: int
    shmode: int
    trunc: int
    accsel: int
    acc_we: int

    @staticmethod
    def from_control_word(cw: ControlWord) -> "MacControls":
        return MacControls(
            muxa_zero=cw.muxa_zero,
            muxb_shift=cw.muxb_shift,
            sub=cw.sub,
            shmode=cw.shmode,
            trunc=cw.trunc,
            accsel=cw.accsel,
            acc_we=cw.acc_we,
        )


@dataclass
class MacResult:
    """Outcome of one MAC evaluation."""

    acc_a: int      # accumulator values after the (possible) write
    acc_b: int
    limited: int    # 8-bit limiter output (the MacReg D input)


class MacDatapath:
    """Stateless evaluator for the MAC datapath.

    The accumulators live in the caller (the pipeline's architectural
    state); :meth:`evaluate` takes their current values and returns the
    next values plus the limited result.
    """

    @staticmethod
    def evaluate(
        opa: int,
        opb: int,
        ctrl: MacControls,
        acc_a: int,
        acc_b: int,
        trace: Optional[Trace] = None,
        overrides: Optional[Overrides] = None,
        params: MacParams = PAPER_MAC,
    ) -> MacResult:
        """Run one EX-stage evaluation of the MAC."""
        if trace is None and not overrides:
            return MacDatapath._evaluate_fast(opa, opb, ctrl, acc_a, acc_b,
                                              params)
        p = params

        def emit(name: str, inputs: Dict[str, int], output: int,
                 mode: int = 0) -> int:
            if overrides and name in overrides:
                override = overrides[name]
                output = override(inputs) if callable(override) else override
            if trace is not None:
                trace[name] = ComponentActivity(inputs, output, mode)
            return output

        product = emit(
            "multiplier", {"a": opa, "b": opb},
            multiplier_reference(opa, opb, p.operand_width, p.acc_width),
        )
        x = emit(
            "muxa", {"data": product, "en": ctrl.muxa_zero},
            0 if ctrl.muxa_zero else product,
            mode=ctrl.muxa_zero,
        )
        shift_in = emit(
            "muxg_shifter", {"a": acc_a, "b": acc_b, "sel": ctrl.accsel},
            acc_b if ctrl.accsel else acc_a,
            mode=ctrl.accsel,
        )
        amt = bits(opa, p.amt_width - 1, 0)
        shifted = emit(
            "shifter", {"data": shift_in, "amt": amt, "mode": ctrl.shmode},
            shifter_reference(shift_in, amt, ctrl.shmode, p.acc_width,
                              p.amt_width),
            mode=ctrl.shmode,
        )
        y = emit(
            "muxb", {"data": shifted, "en": ctrl.muxb_shift},
            shifted if ctrl.muxb_shift else 0,
            mode=ctrl.muxb_shift,
        )
        result = emit(
            "addsub", {"a": y, "b": x, "sub": ctrl.sub},
            addsub_reference(y, x, ctrl.sub, p.acc_width),
            mode=ctrl.sub,
        )
        if p.has_truncater:
            truncated = emit(
                "truncater", {"data": result, "en": ctrl.trunc},
                truncater_reference(result, ctrl.trunc, p.acc_width, p.frac),
                mode=ctrl.trunc,
            )
        else:
            truncated = result
        next_a = emit(
            "acca",
            {"d": truncated, "en": ctrl.acc_we & (1 - ctrl.accsel), "q": acc_a},
            truncated if (ctrl.acc_we and not ctrl.accsel) else acc_a,
        )
        next_b = emit(
            "accb",
            {"d": truncated, "en": ctrl.acc_we & ctrl.accsel, "q": acc_b},
            truncated if (ctrl.acc_we and ctrl.accsel) else acc_b,
        )
        # The limiter never reads the lowest fractional bits, so the
        # limiter-side MUXg instance is physically a narrower mux
        # (synthesis trims the dead low lanes).
        limit_in = emit(
            "muxg_limiter",
            {"a": next_a >> p.frac_drop, "b": next_b >> p.frac_drop,
             "sel": ctrl.accsel},
            (next_b if ctrl.accsel else next_a) >> p.frac_drop,
            mode=ctrl.accsel,
        )
        if p.has_limiter:
            limited = emit(
                "limiter", {"data": limit_in << p.frac_drop},
                limiter_reference(limit_in << p.frac_drop, p.acc_width,
                                  p.operand_width, p.frac_drop),
            )
        else:
            # No saturator: MacReg takes the raw window slice.
            limited = limit_in & mask(p.operand_width)
        return MacResult(acc_a=next_a, acc_b=next_b, limited=limited)

    @staticmethod
    def _evaluate_fast(opa: int, opb: int, ctrl: MacControls,
                       acc_a: int, acc_b: int,
                       params: MacParams = PAPER_MAC) -> MacResult:
        """Allocation-light twin of :meth:`evaluate` for untraced,
        non-injected cycles (the fault simulators' hot path).  Keep the
        dataflow in lock-step with :meth:`evaluate`."""
        p = params
        product = multiplier_reference(opa, opb, p.operand_width, p.acc_width)
        x = 0 if ctrl.muxa_zero else product
        shift_in = acc_b if ctrl.accsel else acc_a
        shifted = shifter_reference(shift_in, opa & mask(p.amt_width),
                                    ctrl.shmode, p.acc_width, p.amt_width)
        y = shifted if ctrl.muxb_shift else 0
        result = addsub_reference(y, x, ctrl.sub, p.acc_width)
        truncated = (truncater_reference(result, ctrl.trunc, p.acc_width,
                                         p.frac)
                     if p.has_truncater else result)
        if ctrl.acc_we:
            if ctrl.accsel:
                acc_b = truncated
            else:
                acc_a = truncated
        limit_in = acc_b if ctrl.accsel else acc_a
        if p.has_limiter:
            limited = limiter_reference(limit_in, p.acc_width,
                                        p.operand_width, p.frac_drop)
        else:
            limited = (limit_in >> p.frac_drop) & mask(p.operand_width)
        return MacResult(acc_a=acc_a, acc_b=acc_b, limited=limited)
