"""Flat gate-level assembly of the full DSP core (paper Fig. 6).

Builds the complete four-stage pipelined core as a single netlist from the
structural RTL library: instruction latch, control decoder, 16×8 register
file with forwarding muxes, the full MAC datapath (multiplier, shifter,
adder/subtracter, truncater, accumulators, limiter), MacReg/buffer/temp
registers, MUX7 and the 8-bit output port.

This is the netlist the sequential-ATPG baseline (experiment E5) attacks,
and a cross-check for the behavioural model: cycle-for-cycle equivalence
against :class:`~repro.dsp.core.DspCore` is asserted by the integration
tests.

Interface buses:

* input ``instr`` (17) — the instruction word from the template
  architecture;
* outputs ``out`` (8) and ``out_valid`` (1) — the observable port.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.dsp.fixedpoint import ACC_WIDTH, OPERAND_WIDTH
from repro.dsp.isa import CONTROL_WIDTH, N_REGISTERS, decoder_truth_table
from repro.logic.builder import NetlistBuilder
from repro.logic.gates import GateType
from repro.logic.netlist import Netlist
from repro.rtl.arith import adder_into
from repro.rtl.decoder import truth_table_logic
from repro.rtl.multiplier import multiplier_into
from repro.rtl.register import register_file_into
from repro.rtl.saturate import limiter_into
from repro.rtl.shifter import dedicated_shifter_into, shifter_into
from repro.rtl.truncate import truncater_into

#: Bit positions inside the packed control word (see ControlWord.pack).
_CTRL_BITS = {
    "muxa_zero": 0, "muxb_shift": 1, "sub": 2, "shmode0": 3, "shmode1": 4,
    "trunc": 5, "accsel": 6, "acc_we": 7, "reg_we": 8, "mux7_buffer": 9,
    "out_en": 10, "buf_imm": 11,
}


def _plain_register(b: NetlistBuilder, d: Sequence[int],
                    name: str) -> List[int]:
    """An always-loading register bank (pipeline latch)."""
    qs = []
    for i, bit in enumerate(d):
        qs.append(b.net(f"{name}[{i}]"))
        b.netlist.add_dff(qs[-1], bit, 0)
    b.netlist.add_bus(name, qs)
    return qs


def _enabled_register(b: NetlistBuilder, d: Sequence[int], en: int,
                      name: str) -> Tuple[List[int], List[int]]:
    """Register with write enable; returns ``(q_bits, next_value_bits)``.

    The next-value (D-side) bits are exposed because the limiter reads the
    accumulator *write-through* (the value being written this cycle).
    """
    qs: List[int] = []
    nexts: List[int] = []
    nsel = b.not_(en)
    for i, d_bit in enumerate(d):
        q = b.net(f"{name}[{i}]")
        hold = b.and_(q, nsel)
        load = b.and_(d_bit, en)
        nxt = b.or_(hold, load)
        b.netlist.add_dff(q, nxt, 0)
        qs.append(q)
        nexts.append(nxt)
    b.netlist.add_bus(name, qs)
    return qs, nexts


def _equal(b: NetlistBuilder, x: Sequence[int], y: Sequence[int]) -> int:
    """Bus equality comparator."""
    bits = [b.xnor(xi, yi) for xi, yi in zip(x, y)]
    return b.and_(*bits) if len(bits) > 1 else bits[0]


def make_gatelevel_core(name: str = "dsp_core", spec=None) -> Netlist:
    """The complete core as one flat netlist.

    ``spec`` selects a non-paper family point (a
    :class:`repro.dsp.family.CoreSpec`); omitted, the paper core is built
    with exactly the historical gate sequence, so its structural hash is
    stable across the family refactor.
    """
    if spec is None:
        operand_width, acc_width = OPERAND_WIDTH, ACC_WIDTH
        n_registers, depth = N_REGISTERS, 4
        shifter_style, adder_style = "barrel", "ripple"
        has_truncater = has_limiter = True
    else:
        operand_width, acc_width = spec.operand_width, spec.acc_width
        n_registers, depth = spec.n_registers, spec.pipeline_depth
        shifter_style, adder_style = spec.shifter, spec.adder
        has_truncater, has_limiter = spec.has_truncater, spec.has_limiter
    addr_bits = (n_registers - 1).bit_length()
    frac = operand_width                      # acc fractional bits
    frac_drop = operand_width - operand_width // 2
    amt_width = 4
    truth_table = decoder_truth_table()
    if not has_truncater:
        truth_table = {op: cw & ~(1 << _CTRL_BITS["trunc"])
                       for op, cw in truth_table.items()}

    b = NetlistBuilder(name)
    instr_in = b.input_bus("instr", 17)

    # ------------------------------------------------------------------
    # Pipeline latches (declared first so stages can read them).  3-deep
    # cores have no IF/ID latch — decode runs off the instruction input.
    # ------------------------------------------------------------------
    if depth >= 4:
        if_id = _plain_register(b, instr_in, "if_id")
    else:
        if_id = list(instr_in)

    # ID/EX latch fields are driven below; allocate D nets lazily via lists.
    def latch(name_: str, width: int) -> Tuple[List[int], List[int]]:
        d = [b.net(f"{name_}_d{i}") for i in range(width)]
        q = []
        for i in range(width):
            qn = b.net(f"{name_}[{i}]")
            b.netlist.add_dff(qn, d[i], 0)
            q.append(qn)
        b.netlist.add_bus(name_, q)
        return q, d

    ex_ctrl, ex_ctrl_d = latch("ex_ctrl", CONTROL_WIDTH)
    ex_opa, ex_opa_d = latch("ex_opa", operand_width)
    ex_opb, ex_opb_d = latch("ex_opb", operand_width)
    ex_imm, ex_imm_d = latch("ex_imm", operand_width)
    ex_dest, ex_dest_d = latch("ex_dest", addr_bits)
    wb_ctrl, wb_ctrl_d = latch("wb_ctrl", CONTROL_WIDTH)
    wb_dest, wb_dest_d = latch("wb_dest", addr_bits)

    def ctrl_bit(bus: Sequence[int], field: str) -> int:
        return bus[_CTRL_BITS[field]]

    # ------------------------------------------------------------------
    # EX stage: the MAC datapath, from the ID/EX latch.
    # ------------------------------------------------------------------
    with b.region("multiplier"):
        product = multiplier_into(b, ex_opa, ex_opb, acc_width)
    b.netlist.add_bus("product", product)

    muxa_zero = ctrl_bit(ex_ctrl, "muxa_zero")
    with b.region("muxa"):
        pass_product = b.not_(muxa_zero)
        x_operand = [b.and_(bit, pass_product) for bit in product]

    # Accumulators need their write-through nets, so declare them with
    # placeholder D inputs wired after the adder is built.
    accsel = ctrl_bit(ex_ctrl, "accsel")
    acc_we = ctrl_bit(ex_ctrl, "acc_we")
    acca_en = b.and_(acc_we, b.not_(accsel))
    accb_en = b.and_(acc_we, accsel)

    # Forward-declare truncater output nets for the accumulator D logic.
    trunc_out = [b.net(f"trunc_out[{i}]") for i in range(acc_width)]

    def acc_register(name_: str, en: int) -> Tuple[List[int], List[int]]:
        qs, nexts = [], []
        nsel = b.not_(en)
        for i in range(acc_width):
            q = b.net(f"{name_}[{i}]")
            hold = b.and_(q, nsel)
            load = b.and_(trunc_out[i], en)
            nxt = b.or_(hold, load)
            b.netlist.add_dff(q, nxt, 0)
            qs.append(q)
            nexts.append(nxt)
        b.netlist.add_bus(name_, qs)
        return qs, nexts

    with b.region("acca"):
        acc_a, acc_a_next = acc_register("acc_a", acca_en)
    with b.region("accb"):
        acc_b, acc_b_next = acc_register("acc_b", accb_en)

    with b.region("muxg_shifter"):
        muxg_shifter = b.mux2_bus(accsel, acc_a, acc_b)
    shmode = [ctrl_bit(ex_ctrl, "shmode0"), ctrl_bit(ex_ctrl, "shmode1")]
    shift_fn = (shifter_into if shifter_style == "barrel"
                else dedicated_shifter_into)
    with b.region("shifter"):
        shifted = shift_fn(b, muxg_shifter, ex_opa[:amt_width], shmode)

    muxb_shift = ctrl_bit(ex_ctrl, "muxb_shift")
    with b.region("muxb"):
        y_operand = [b.and_(bit, muxb_shift) for bit in shifted]

    sub = ctrl_bit(ex_ctrl, "sub")
    with b.region("addsub"):
        b_inverted = [b.xor(bit, sub) for bit in x_operand]
        adder_out, _ = adder_into(b, y_operand, b_inverted, sub,
                                  adder_style, drop_final_carry=True)

    trunc_en = ctrl_bit(ex_ctrl, "trunc")
    if has_truncater:
        with b.region("truncater"):
            trunc_src = truncater_into(b, adder_out, trunc_en, frac)
    else:
        trunc_src = adder_out
    for i in range(acc_width):
        b.netlist.add_gate(GateType.BUF, trunc_out[i], (trunc_src[i],))

    # Narrow limiter-side MUXg: the limiter never reads the dropped
    # fractional bits (14 bits wide on the paper core).
    with b.region("muxg_limiter"):
        muxg_limiter = b.mux2_bus(accsel, acc_a_next[frac_drop:],
                                  acc_b_next[frac_drop:])
    if has_limiter:
        with b.region("limiter"):
            limited = limiter_into(b, acc_a_next[:frac_drop] + muxg_limiter,
                                   operand_width, frac_drop)
    else:
        # No saturator: MacReg takes the raw accumulator window slice.
        limited = [b.buf(bit) for bit in muxg_limiter[:operand_width]]

    with b.region("macreg"):
        macreg = _plain_register(b, limited, "macreg")
    buf_imm = ctrl_bit(ex_ctrl, "buf_imm")
    with b.region("buffer"):
        buffer_d = b.mux2_bus(buf_imm, ex_opb, ex_imm)
        buffer = _plain_register(b, buffer_d, "buffer")

    # EX bypass value (what this instruction will write back).
    ex_mux7_buffer = ctrl_bit(ex_ctrl, "mux7_buffer")
    ex_bypass = b.mux2_bus(ex_mux7_buffer, limited, buffer_d)
    ex_reg_we = ctrl_bit(ex_ctrl, "reg_we")

    # Temp (forwarding) register: latches the EX write-back value.
    with b.region("temp"):
        temp, _ = _enabled_register(b, ex_bypass, ex_reg_we, "temp")

    # ------------------------------------------------------------------
    # WB stage: MUX7 from the *stored* MacReg/buffer, port, regfile write.
    # ------------------------------------------------------------------
    wb_mux7_buffer = ctrl_bit(wb_ctrl, "mux7_buffer")
    with b.region("mux7"):
        wb_value = b.mux2_bus(wb_mux7_buffer, macreg, buffer)
    out_en = ctrl_bit(wb_ctrl, "out_en")
    out_port = [b.and_(bit, out_en) for bit in wb_value]
    out_valid = out_en
    if depth >= 5:
        # Registered output port: the 5-deep family point.
        with b.region("outreg"):
            out_port = _plain_register(b, out_port, "out_port_q")
            out_valid = _plain_register(b, [out_en], "out_valid_q")[0]
    b.output_bus("out", out_port)
    b.output(out_valid)
    b.netlist.add_bus("out_valid", [out_valid])

    # ------------------------------------------------------------------
    # ID stage: decode + register read + forwarding.
    # ------------------------------------------------------------------
    opcode = if_id[12:17]
    with b.region("decoder"):
        ctrl = truth_table_logic(b, list(opcode), CONTROL_WIDTH,
                                 truth_table, prefix="dec")
    raddr_a = if_id[8:8 + addr_bits]
    raddr_b = if_id[4:4 + addr_bits]

    wb_reg_we = ctrl_bit(wb_ctrl, "reg_we")
    with b.region("regfile"):
        rdata_a, rdata_b = register_file_into(
            b, wb_value, wb_dest, wb_reg_we, raddr_a, raddr_b, n_registers
        )

    def forwarded(raddr: Sequence[int], rdata: Sequence[int]) -> List[int]:
        use_ex = b.and_(ex_reg_we, _equal(b, raddr, ex_dest))
        use_wb = b.and_(wb_reg_we, _equal(b, raddr, wb_dest))
        with_wb = b.mux2_bus(use_wb, rdata, temp)
        return b.mux2_bus(use_ex, with_wb, ex_bypass)

    opa = forwarded(raddr_a, rdata_a)
    opb = forwarded(raddr_b, rdata_b)

    # ------------------------------------------------------------------
    # Latch next-state wiring.
    # ------------------------------------------------------------------
    def drive(d_nets: Sequence[int], values: Sequence[int]) -> None:
        for d, v in zip(d_nets, values):
            b.netlist.add_gate(GateType.BUF, d, (v,))

    drive(ex_ctrl_d, ctrl)
    drive(ex_opa_d, opa)
    drive(ex_opb_d, opb)
    drive(ex_imm_d, if_id[4:4 + operand_width])
    drive(ex_dest_d, if_id[0:addr_bits])
    drive(wb_ctrl_d, ex_ctrl)
    drive(wb_dest_d, ex_dest)

    return b.finish()
