"""The DSP core's 17-bit instruction set.

The paper publishes the four instruction formats (Fig. 4) and the mnemonics
used throughout Section 3, but not the full binary opcode map (the Fig. 7
listing is partially illegible in the published text).  This module defines
a concrete, internally consistent 5-bit opcode map covering every mnemonic
the paper uses; see DESIGN.md for the correspondence.

Formats (Fig. 4)::

    F1  [16:12]=opcode [11:8]=regA [7:4]=regB  [3:0]=dest     (MAC family)
    F2  [16:12]=opcode [11:4]=immediate        [3:0]=dest     (load)
    F3  [16:12]=opcode [11:8]=xxxx [7:4]=src   [3:0]=xxxx     (out)
    F4  [16:12]=00010  [11:8]=xxxx [7:4]=src   [3:0]=dest     (move)

The per-opcode *control word* (:func:`control_word`) is the single source
of truth for both the behavioural pipeline and the gate-level decoder.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import IntEnum
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro._util import bits, set_field

INSTRUCTION_WIDTH = 17
OPCODE_WIDTH = 5
N_REGISTERS = 16


class Opcode(IntEnum):
    """5-bit opcodes.  Suffix A/B selects the accumulator."""

    NOP = 0b00000
    OUT = 0b00001           # F3: drive output port with R[src] via buffer
    MOV = 0b00010           # F4: R[dest] <- R[src] via buffer
    OUTA = 0b00011          # F3 (no fields): output AccA through the limiter
    OUTB = 0b00100
    LDI = 0b00101           # F2: R[dest] <- immediate via buffer
    MPYA = 0b01000          # acc <- P
    MPYB = 0b01001
    MPYTA = 0b01010         # acc <- trunc(P)
    MPYTB = 0b01011
    MACA_ADD = 0b01100      # acc <- acc + P
    MACB_ADD = 0b01101
    MACA_SUB = 0b01110      # acc <- acc - P
    MACB_SUB = 0b01111
    MACTA_ADD = 0b10000     # acc <- trunc(acc + P)
    MACTB_ADD = 0b10001
    MACTA_SUB = 0b10010
    MACTB_SUB = 0b10011
    SHIFTA = 0b10100        # acc <- shift(acc, amt = R[a][3:0] signed)
    SHIFTB = 0b10101
    MPYSHIFTA = 0b10110     # acc <- shift(acc, amt) + P
    MPYSHIFTB = 0b10111
    MPYSHIFTMACA = 0b11000  # acc <- shift(acc, amt) - P
    MPYSHIFTMACB = 0b11001


#: Opcode values with no architectural meaning; the template architecture
#: traps these (the paper's "load pseudorandom data" instructions).
UNUSED_OPCODES = sorted(
    set(range(1 << OPCODE_WIDTH)) - {int(op) for op in Opcode}
)

#: The trapped opcode the template architecture rewrites into an LDI whose
#: immediate comes from LFSR1 ("ld rnd" in the paper's Fig. 7).
LD_RND = UNUSED_OPCODES[1]  # 0b00111

#: Paper mnemonic → our opcode(s), for documentation and the benches.
PAPER_MNEMONICS: Dict[str, Tuple[Opcode, ...]] = {
    "load": (Opcode.LDI,),
    "mpy": (Opcode.MPYA, Opcode.MPYB),
    "mpyt": (Opcode.MPYTA, Opcode.MPYTB),
    "Mac+": (Opcode.MACA_ADD, Opcode.MACB_ADD),
    "Mac-": (Opcode.MACA_SUB, Opcode.MACB_SUB),
    "Mact+": (Opcode.MACTA_ADD, Opcode.MACTB_ADD),
    "Mact-": (Opcode.MACTA_SUB, Opcode.MACTB_SUB),
    "shift": (Opcode.SHIFTA, Opcode.SHIFTB),
    "Mpyshift": (Opcode.MPYSHIFTA, Opcode.MPYSHIFTB),
    "Mpyshiftmac": (Opcode.MPYSHIFTMACA, Opcode.MPYSHIFTMACB),
    "Out": (Opcode.OUT,),
    "Outr": (Opcode.OUTA, Opcode.OUTB),
}

_MAC_FAMILY = {
    Opcode.MPYA, Opcode.MPYB, Opcode.MPYTA, Opcode.MPYTB,
    Opcode.MACA_ADD, Opcode.MACB_ADD, Opcode.MACA_SUB, Opcode.MACB_SUB,
    Opcode.MACTA_ADD, Opcode.MACTB_ADD, Opcode.MACTA_SUB, Opcode.MACTB_SUB,
    Opcode.SHIFTA, Opcode.SHIFTB, Opcode.MPYSHIFTA, Opcode.MPYSHIFTB,
    Opcode.MPYSHIFTMACA, Opcode.MPYSHIFTMACB,
}

_ACC_B = {
    Opcode.MPYB, Opcode.MPYTB, Opcode.MACB_ADD, Opcode.MACB_SUB,
    Opcode.MACTB_ADD, Opcode.MACTB_SUB, Opcode.SHIFTB, Opcode.MPYSHIFTB,
    Opcode.MPYSHIFTMACB, Opcode.OUTB,
}

_SUB_OPS = {
    Opcode.MACA_SUB, Opcode.MACB_SUB, Opcode.MACTA_SUB, Opcode.MACTB_SUB,
    Opcode.MPYSHIFTMACA, Opcode.MPYSHIFTMACB,
}

_TRUNC_OPS = {
    Opcode.MPYTA, Opcode.MPYTB, Opcode.MACTA_ADD, Opcode.MACTB_ADD,
    Opcode.MACTA_SUB, Opcode.MACTB_SUB,
}

_SHIFT_BY_AMOUNT = {
    Opcode.SHIFTA, Opcode.SHIFTB, Opcode.MPYSHIFTA, Opcode.MPYSHIFTB,
    Opcode.MPYSHIFTMACA, Opcode.MPYSHIFTMACB,
}

#: Ops whose X (product-side) adder operand is zero rather than the product.
_ZERO_PRODUCT = {Opcode.SHIFTA, Opcode.SHIFTB}


@dataclass(frozen=True)
class ControlWord:
    """Decoded control bits for one opcode.

    The seven MAC control bits of the paper's Fig. 5 are ``muxa_zero``,
    ``muxb_shift``, ``sub``, ``shmode`` (two bits), ``trunc`` and
    ``accsel``; the rest steer the pipeline back end.
    """

    muxa_zero: int      # 1: adder X operand = 0, 0: X = product
    muxb_shift: int     # 1: adder Y operand = shifter output, 0: Y = 0
    sub: int            # 1: result = Y - X, 0: Y + X
    shmode: int         # shifter control bits (c, d): 0..3
    trunc: int          # 1: zero the 8 fractional bits before the acc
    accsel: int         # 0: AccA, 1: AccB
    acc_we: int         # accumulator write enable
    reg_we: int         # register-file write enable (dest field)
    mux7_buffer: int    # 1: MUX7 selects the stage-3 buffer, 0: MacReg
    out_en: int         # 1: drive the core output port in WB
    buf_imm: int        # 1: buffer loads the immediate field (LDI)

    def pack(self) -> int:
        """Pack into the 12-bit word implemented by the gate-level decoder."""
        word = 0
        word |= self.muxa_zero << 0
        word |= self.muxb_shift << 1
        word |= self.sub << 2
        word |= self.shmode << 3
        word |= self.trunc << 5
        word |= self.accsel << 6
        word |= self.acc_we << 7
        word |= self.reg_we << 8
        word |= self.mux7_buffer << 9
        word |= self.out_en << 10
        word |= self.buf_imm << 11
        return word

    @staticmethod
    def unpack(word: int) -> "ControlWord":
        return ControlWord(
            muxa_zero=(word >> 0) & 1,
            muxb_shift=(word >> 1) & 1,
            sub=(word >> 2) & 1,
            shmode=(word >> 3) & 3,
            trunc=(word >> 5) & 1,
            accsel=(word >> 6) & 1,
            acc_we=(word >> 7) & 1,
            reg_we=(word >> 8) & 1,
            mux7_buffer=(word >> 9) & 1,
            out_en=(word >> 10) & 1,
            buf_imm=(word >> 11) & 1,
        )


CONTROL_WIDTH = 12


@lru_cache(maxsize=None)
def control_word(opcode: Opcode) -> ControlWord:
    """Control bits for ``opcode`` — the decoder's truth table.

    Control bits only gate *writes*: during non-MAC instructions the MAC
    datapath keeps computing ``shift00(AccA) + product`` from whatever the
    register file read ports carry.  This free-running behaviour is what
    the paper's metrics table reflects (e.g. the ``load`` rows exercising
    the multiplier and shifter).
    """
    is_mac = opcode in _MAC_FAMILY
    is_outacc = opcode in (Opcode.OUTA, Opcode.OUTB)
    return ControlWord(
        muxa_zero=1 if (opcode in _ZERO_PRODUCT or is_outacc) else 0,
        muxb_shift=0 if opcode in (Opcode.MPYA, Opcode.MPYB, Opcode.MPYTA,
                                   Opcode.MPYTB) else 1,
        sub=1 if opcode in _SUB_OPS else 0,
        shmode=1 if opcode in _SHIFT_BY_AMOUNT else 0,
        trunc=1 if opcode in _TRUNC_OPS else 0,
        accsel=1 if opcode in _ACC_B else 0,
        acc_we=1 if is_mac else 0,
        reg_we=1 if (is_mac or opcode in (Opcode.LDI, Opcode.MOV)) else 0,
        mux7_buffer=0 if (is_mac or is_outacc) else 1,
        out_en=1 if opcode in (Opcode.OUT, Opcode.OUTA, Opcode.OUTB) else 0,
        buf_imm=1 if opcode is Opcode.LDI else 0,
    )


def decoder_truth_table() -> Dict[int, int]:
    """Opcode value → packed control word, for the gate-level decoder."""
    return {int(op): control_word(op).pack() for op in Opcode}


# ----------------------------------------------------------------------
# Instructions, encoding, assembly
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    Field meaning depends on the opcode's format: F1 uses ``rega``,
    ``regb``, ``dest``; F2 uses ``imm``, ``dest``; F3 uses ``regb`` as the
    source; F4 uses ``regb`` (source) and ``dest``.  Unused fields are 0.
    """

    opcode: Opcode
    rega: int = 0
    regb: int = 0
    dest: int = 0
    imm: int = 0

    def __post_init__(self):
        for field_name in ("rega", "regb", "dest"):
            value = getattr(self, field_name)
            if not 0 <= value < N_REGISTERS:
                raise ValueError(f"{field_name}={value} out of range")
        if not 0 <= self.imm < 256:
            raise ValueError(f"imm={self.imm} out of range")


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into its 17-bit word."""
    word = set_field(0, 16, 12, int(instr.opcode))
    if instr.opcode is Opcode.LDI:
        word = set_field(word, 11, 4, instr.imm)
        word = set_field(word, 3, 0, instr.dest)
    else:
        word = set_field(word, 11, 8, instr.rega)
        word = set_field(word, 7, 4, instr.regb)
        word = set_field(word, 3, 0, instr.dest)
    return word


@lru_cache(maxsize=1 << 17)
def decode(word: int) -> Instruction:
    """Decode a 17-bit word.  Unknown opcodes decode as NOP (the hardware
    treats unused opcodes as no-operations unless the template architecture
    traps them first).

    Cached: instruction words repeat heavily in looped self-test programs
    and :class:`Instruction` is immutable.
    """
    if not 0 <= word < (1 << INSTRUCTION_WIDTH):
        raise ValueError(f"instruction word {word:#x} is not 17 bits")
    opcode_value = bits(word, 16, 12)
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        return Instruction(Opcode.NOP)
    if opcode is Opcode.LDI:
        return Instruction(opcode, imm=bits(word, 11, 4), dest=bits(word, 3, 0))
    return Instruction(
        opcode,
        rega=bits(word, 11, 8),
        regb=bits(word, 7, 4),
        dest=bits(word, 3, 0),
    )


_ASM_RE = re.compile(
    r"^\s*(?P<mn>[A-Za-z+_-]+[+-]?)\s*(?P<ops>[^;]*?)\s*(?:;.*)?$"
)


def _parse_reg(token: str) -> int:
    token = token.strip()
    if not token.upper().startswith("R"):
        raise ValueError(f"expected register, got {token!r}")
    return int(token[1:])


def assemble(line: str) -> Instruction:
    """Assemble one line of symbolic code into an :class:`Instruction`.

    Syntax follows the paper's Fig. 7 listing, e.g.::

        ld 0x70, R3
        MPYB R0, R1, R2
        MACA+ R6, R5, R7
        SHIFTB R3, R4
        out R2
        outa
        mov R3, R4
        nop
    """
    match = _ASM_RE.match(line)
    if not match or not match.group("mn"):
        raise ValueError(f"cannot parse {line!r}")
    mnemonic = match.group("mn").upper()
    operands = [t for t in match.group("ops").replace(",", " ").split() if t]

    aliases = {
        "LD": "LDI", "LOAD": "LDI",
        "MPY": "MPYA", "MPYT": "MPYTA",
        "MAC+": "MACA_ADD", "MAC-": "MACA_SUB",
        "MACA+": "MACA_ADD", "MACA-": "MACA_SUB",
        "MACB+": "MACB_ADD", "MACB-": "MACB_SUB",
        "MACT+": "MACTA_ADD", "MACT-": "MACTA_SUB",
        "MACTA+": "MACTA_ADD", "MACTA-": "MACTA_SUB",
        "MACTB+": "MACTB_ADD", "MACTB-": "MACTB_SUB",
        "SHIFT": "SHIFTA", "MPYSHIFT": "MPYSHIFTA",
        "MPYSHIFTMAC": "MPYSHIFTMACA",
        "OUTR": "OUTA",
    }
    name = aliases.get(mnemonic, mnemonic)
    try:
        opcode = Opcode[name]
    except KeyError:
        raise ValueError(f"unknown mnemonic {mnemonic!r}") from None

    if opcode is Opcode.LDI:
        if len(operands) != 2:
            raise ValueError(f"ld needs an immediate and a register: {line!r}")
        imm = int(operands[0], 0)
        return Instruction(opcode, imm=imm & 0xFF, dest=_parse_reg(operands[1]))
    if opcode is Opcode.OUT:
        return Instruction(opcode, regb=_parse_reg(operands[0]))
    if opcode in (Opcode.OUTA, Opcode.OUTB, Opcode.NOP):
        if operands:
            raise ValueError(f"{mnemonic} takes no operands: {line!r}")
        return Instruction(opcode)
    if opcode is Opcode.MOV:
        return Instruction(opcode, regb=_parse_reg(operands[0]),
                           dest=_parse_reg(operands[1]))
    if len(operands) == 3:
        return Instruction(opcode, rega=_parse_reg(operands[0]),
                           regb=_parse_reg(operands[1]),
                           dest=_parse_reg(operands[2]))
    if len(operands) == 2:
        # Shift-style two-operand form: SHIFTB Ramt, Rdest.
        return Instruction(opcode, rega=_parse_reg(operands[0]),
                           dest=_parse_reg(operands[1]))
    raise ValueError(f"wrong operand count for {mnemonic}: {line!r}")


def assemble_program(text: str) -> List[Instruction]:
    """Assemble a multi-line program, skipping blanks and comment lines."""
    program: List[Instruction] = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith((";", "//", "#")):
            continue
        program.append(assemble(stripped))
    return program


def instruction_format(opcode: Opcode) -> str:
    """Which of Fig. 4's formats the opcode uses."""
    if opcode is Opcode.LDI:
        return "F2"
    if opcode in (Opcode.OUT, Opcode.OUTA, Opcode.OUTB):
        return "F3"
    if opcode is Opcode.MOV:
        return "F4"
    if opcode is Opcode.NOP:
        return "-"
    return "F1"


def render_opcode_table() -> str:
    """A human-readable reference table of the full opcode map."""
    header = (f"{'code':<7}{'mnemonic':<14}{'fmt':<5}"
              f"{'acc':<5}{'writes':<8}{'controls'}")
    lines = [header, "-" * len(header)]
    for op in sorted(Opcode, key=int):
        cw = control_word(op)
        acc = ("B" if cw.accsel else "A") if cw.acc_we else "-"
        writes = []
        if cw.acc_we:
            writes.append("acc")
        if cw.reg_we:
            writes.append("Rd")
        if cw.out_en:
            writes.append("port")
        controls = (f"muxa={cw.muxa_zero} muxb={cw.muxb_shift} "
                    f"sub={cw.sub} sh={cw.shmode:02b} t={cw.trunc}")
        lines.append(
            f"{int(op):05b}  {op.name:<14}{instruction_format(op):<5}"
            f"{acc:<5}{'+'.join(writes) or '-':<8}{controls}"
        )
    unused = ", ".join(f"{u:05b}" for u in UNUSED_OPCODES)
    lines.append(f"unused (template-trap space): {unused}")
    lines.append(f"ld-rnd trap opcode: {LD_RND:05b}")
    return "\n".join(lines)


def disassemble(instr: Instruction) -> str:
    """Render an instruction in the assembler's input syntax."""
    op = instr.opcode
    pretty = {
        Opcode.MACA_ADD: "MACA+", Opcode.MACA_SUB: "MACA-",
        Opcode.MACB_ADD: "MACB+", Opcode.MACB_SUB: "MACB-",
        Opcode.MACTA_ADD: "MACTA+", Opcode.MACTA_SUB: "MACTA-",
        Opcode.MACTB_ADD: "MACTB+", Opcode.MACTB_SUB: "MACTB-",
    }
    name = pretty.get(op, op.name)
    if op is Opcode.LDI:
        return f"ld {instr.imm:#04x}, R{instr.dest}"
    if op is Opcode.OUT:
        return f"out R{instr.regb}"
    if op in (Opcode.OUTA, Opcode.OUTB, Opcode.NOP):
        return name.lower()
    if op is Opcode.MOV:
        return f"mov R{instr.regb}, R{instr.dest}"
    if op in (Opcode.SHIFTA, Opcode.SHIFTB):
        return f"{name} R{instr.rega}, R{instr.dest}"
    return f"{name} R{instr.rega}, R{instr.regb}, R{instr.dest}"
