"""The simple DSP datapath of the paper's Figure 1 / Table 1.

A small accumulator machine used to introduce the testability metrics: a
free-running multiplier over the two data inputs, an ALU with three modes
(add, subtract, clear — the paper's "The component ALU has three modes"),
and an accumulator whose value is the core's observable output.

Instructions (the rows of Table 1, each metered under both an assumed-zero
and an assumed-random accumulator state):

========  =============================
``Add``   acc ← acc + in1
``Sub``   acc ← acc − in1
``Mac``   acc ← acc + in1·in2 (mod 2⁸)
``Clr``   acc ← 0
========  =============================

Both a behavioural model (with tracing/override hooks, mirroring
:class:`~repro.dsp.core.DspCore`) and a flat gate-level netlist are
provided; the pair is small enough for *exact* flat sequential fault
simulation, which is how the hierarchical core simulator is
cross-validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Optional

from repro._util import mask, to_unsigned
from repro.dsp.mac import ComponentActivity, Overrides, Trace
from repro.logic.builder import NetlistBuilder
from repro.logic.gates import GateType
from repro.logic.netlist import Netlist
from repro.rtl.arith import ripple_adder
from repro.rtl.decoder import truth_table_logic
from repro.rtl.multiplier import make_multiplier_mod, multiplier_mod_reference

WIDTH = 8
_W_MASK = mask(WIDTH)


class SimpleOp(IntEnum):
    """2-bit opcode of the simple datapath."""

    ADD = 0
    SUB = 1
    MAC = 2
    CLR = 3


#: ALU mode encoding: matches Table 1's Add / Sub / Clear columns.
ALU_ADD, ALU_SUB, ALU_CLEAR = 0, 1, 2

#: Metrics-table columns of the simple datapath (Table 1's header).
SIMPLE_COLUMNS = (
    ("mult", 0),
    ("alu", ALU_ADD),
    ("alu", ALU_SUB),
    ("alu", ALU_CLEAR),
    ("acc", 0),
)

SIMPLE_COLUMN_LABELS = {
    ("mult", 0): "Mult",
    ("alu", ALU_ADD): "Add",
    ("alu", ALU_SUB): "Sub",
    ("alu", ALU_CLEAR): "Clear",
    ("acc", 0): "Acc",
}


def alu_reference(op2: int, op1: int, alu_mode: int) -> int:
    """Word-level ALU: ``op2 ± op1`` or clear."""
    if alu_mode == ALU_ADD:
        return to_unsigned(op2 + op1, WIDTH)
    if alu_mode == ALU_SUB:
        return to_unsigned(op2 - op1, WIDTH)
    if alu_mode == ALU_CLEAR:
        return 0
    raise ValueError(f"bad ALU mode {alu_mode}")


@dataclass
class SimpleState:
    """Architectural state: just the accumulator."""

    acc: int = 0

    def copy(self) -> "SimpleState":
        return SimpleState(acc=self.acc)


class SimpleDspCore:
    """Behavioural model of the Fig. 1 datapath.

    ``step`` applies one instruction with the two data inputs and returns
    the output-port value, which is the accumulator content *before* the
    update (i.e. the registered, observable value).
    """

    def __init__(self, state: Optional[SimpleState] = None,
                 stuck_bits: Optional[Dict] = None):
        self.state = state if state is not None else SimpleState()
        self.stuck_bits = dict(stuck_bits) if stuck_bits else {}
        self._apply_stuck_bits()

    def _apply_stuck_bits(self) -> None:
        for key, (and_mask, or_mask) in self.stuck_bits.items():
            if key != ("acc",):
                raise ValueError(f"unknown stuck-bit target {key!r}")
            self.state.acc = (self.state.acc & and_mask) | or_mask

    def step(self, op: SimpleOp, in1: int, in2: int,
             trace: Optional[Trace] = None,
             overrides: Optional[Overrides] = None) -> int:
        in1 &= _W_MASK
        in2 &= _W_MASK

        def emit(name: str, inputs: Dict[str, int], output: int,
                 mode: int = 0) -> int:
            if overrides and name in overrides:
                output = overrides[name]
            if trace is not None:
                trace[name] = ComponentActivity(inputs, output, mode)
            return output

        product = emit(
            "mult", {"a": in1, "b": in2},
            multiplier_mod_reference(in1, in2, WIDTH),
        )
        op1 = product if op is SimpleOp.MAC else in1
        alu_mode = {
            SimpleOp.ADD: ALU_ADD,
            SimpleOp.SUB: ALU_SUB,
            SimpleOp.MAC: ALU_ADD,
            SimpleOp.CLR: ALU_CLEAR,
        }[op]
        result = emit(
            "alu", {"a": self.state.acc, "b": op1, "mode": alu_mode},
            alu_reference(self.state.acc, op1, alu_mode),
            mode=alu_mode,
        )
        out_port = self.state.acc  # registered output, pre-update
        new_acc = emit(
            "acc", {"d": result, "q": self.state.acc}, result
        )
        self.state.acc = new_acc & _W_MASK
        self._apply_stuck_bits()
        return out_port


def make_simple_core() -> Netlist:
    """Flat gate-level netlist of the simple datapath.

    Buses: ``op`` (2), ``in1`` (8), ``in2`` (8) → ``out`` (8, the registered
    accumulator).  Assembled from the same structural pieces as the big
    core: a mod-2⁸ multiplier array, an add/sub ripple chain with a clear
    gate, and an 8-bit accumulator register.
    """
    b = NetlistBuilder("simple_core")
    op = b.input_bus("op", 2)
    in1 = b.input_bus("in1", WIDTH)
    in2 = b.input_bus("in2", WIDTH)

    # Accumulator DFFs (declared early so the ALU can read them).
    d_nets = [b.net(f"acc_d{i}") for i in range(WIDTH)]
    acc = [b.dff(d_nets[i], name=f"acc[{i}]") for i in range(WIDTH)]
    b.netlist.add_bus("acc", acc)

    # Control decode: op -> (sub, clear, sel_mult).
    table = {
        int(SimpleOp.ADD): 0b000,
        int(SimpleOp.SUB): 0b001,
        int(SimpleOp.MAC): 0b100,
        int(SimpleOp.CLR): 0b010,
    }
    sub, clear, sel_mult = truth_table_logic(b, list(op), 3, table, "dec")

    # Multiplier (mod 2^8), inlined from the standalone generator's shape.
    macc = [b.and_(in2[0], in1[j]) for j in range(WIDTH)]
    for i in range(1, WIDTH):
        pp = [b.and_(in2[i], in1[j]) for j in range(WIDTH - i)]
        upper, _ = ripple_adder(b, macc[i:], pp, b.const0(),
                                drop_final_carry=True)
        macc = macc[:i] + upper
    b.netlist.add_bus("product", macc)

    op1 = b.mux2_bus(sel_mult, in1, macc)
    inverted = [b.xor(bit, sub) for bit in op1]
    total, _ = ripple_adder(b, acc, inverted, sub, drop_final_carry=True)
    nclear = b.not_(clear)
    cleared = [b.and_(bit, nclear) for bit in total]
    for i in range(WIDTH):
        b.netlist.add_gate(GateType.BUF, d_nets[i], (cleared[i],))

    b.output_bus("out", acc)
    return b.finish()
