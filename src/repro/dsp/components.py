"""Registry of the DSP core's datapath components.

Each :class:`ComponentSpec` ties together the three views of one component:

1. the *behavioural* view — the trace entries emitted by
   :class:`~repro.dsp.mac.MacDatapath` / :class:`~repro.dsp.core.DspCore`
   (matched by ``name``, with input-port keys equal to the netlist bus
   names);
2. the *gate-level* view — a standalone netlist defining the component's
   stuck-at fault universe (combinational components);
3. the *metrics-table* view — the component's control-bit **modes**, each
   of which is a separate column in the paper's Tables 1–3 (e.g. the
   shifter contributes four columns, "the shifter has two control bits and
   therefore requires four columns").

Sequential storage components (accumulators, MacReg, buffer, temp) use an
exact word-level fault model (stuck storage/data/enable bits) instead of a
gate netlist; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

from repro.dsp.fixedpoint import ACC_WIDTH, OPERAND_WIDTH
from repro.dsp.isa import CONTROL_WIDTH, OPCODE_WIDTH, decoder_truth_table
from repro.logic.netlist import Netlist
from repro.rtl.arith import make_addsub
from repro.rtl.decoder import make_truth_table_logic
from repro.rtl.multiplier import make_multiplier
from repro.rtl.mux import make_gated_bus, make_mux2_bus
from repro.rtl.saturate import make_limiter
from repro.rtl.shifter import make_shifter
from repro.rtl.truncate import make_truncater


@dataclass(frozen=True)
class ComponentSpec:
    """Static description of one datapath component."""

    name: str
    kind: str                          # "comb" or "register"
    output_width: int
    input_ports: Tuple[Tuple[str, int], ...]
    modes: Tuple[int, ...]
    mode_labels: Tuple[Tuple[int, str], ...]
    factory: Optional[Callable[[], Netlist]] = None
    output_bus: str = "out"
    state_key: Optional[Tuple] = None  # stuck-bit key for registers
    #: Whether the component appears as metrics-table columns.  The control
    #: decoder is fault-simulated but not metered per instruction (its input
    #: is the constant opcode, so per-instruction entropy is meaningless).
    in_metrics_table: bool = True
    #: Input ports hard-wired to a constant in the datapath (e.g. the zero
    #: legs of MUXa/MUXb).  They carry no randomness by construction and
    #: are excluded from the controllability estimate.
    tied_ports: Tuple[str, ...] = ()

    def mode_label(self, mode: int) -> str:
        return dict(self.mode_labels).get(mode, str(mode))

    def column_names(self) -> List[str]:
        """One metrics-table column name per mode."""
        if len(self.modes) == 1:
            return [self.name]
        return [f"{self.name} {self.mode_label(m)}" for m in self.modes]

    @property
    def total_input_width(self) -> int:
        return sum(w for _, w in self.input_ports)

    def netlist(self) -> Netlist:
        """The component's gate-level netlist (cached per spec).

        Keyed on the spec itself, not its name: family registries reuse
        component names at different widths, so a name-keyed cache would
        hand one core's netlist to another.
        """
        if self.factory is None:
            raise ValueError(f"component {self.name!r} has no gate netlist")
        return _cached_netlist(self)


def _mux18() -> Callable[[], Netlist]:
    return lambda: make_mux2_bus(ACC_WIDTH)


_FACTORIES: Dict[str, Callable[[], Netlist]] = {
    "multiplier": lambda: make_multiplier(OPERAND_WIDTH, ACC_WIDTH),
    # MUXa/MUXb have one leg tied to zero, so their real structure is a
    # clear gate (MUXa clears when muxa_zero=1, MUXb passes when
    # muxb_shift=1).
    "muxa": lambda: make_gated_bus(ACC_WIDTH, invert_enable=True),
    "muxb": lambda: make_gated_bus(ACC_WIDTH, invert_enable=False),
    "muxg_shifter": _mux18(),
    # The limiter ignores the 4 lowest fractional bits, so its MUXg
    # instance is a 14-bit mux.
    "muxg_limiter": lambda: make_mux2_bus(ACC_WIDTH - 4),
    "shifter": lambda: make_shifter(ACC_WIDTH, 4),
    "addsub": lambda: make_addsub(ACC_WIDTH),
    "truncater": lambda: make_truncater(ACC_WIDTH, 8),
    "limiter": lambda: make_limiter(),
    "mux7": lambda: make_mux2_bus(OPERAND_WIDTH),
    "decoder": lambda: make_truth_table_logic(
        OPCODE_WIDTH, CONTROL_WIDTH, decoder_truth_table()
    ),
}


@lru_cache(maxsize=None)
def _cached_netlist(spec: "ComponentSpec") -> Netlist:
    return spec.factory()


_ONOFF = ((0, "0"), (1, "1"))

COMPONENTS: Tuple[ComponentSpec, ...] = (
    ComponentSpec(
        name="multiplier", kind="comb", output_width=ACC_WIDTH,
        input_ports=(("a", 8), ("b", 8)), modes=(0,),
        mode_labels=((0, ""),), factory=_FACTORIES["multiplier"],
        output_bus="p",
    ),
    ComponentSpec(
        name="shifter", kind="comb", output_width=ACC_WIDTH,
        input_ports=(("data", 18), ("amt", 4), ("mode", 2)),
        modes=(0, 1, 2, 3),
        mode_labels=((0, "00"), (1, "01"), (2, "10"), (3, "11")),
        factory=_FACTORIES["shifter"],
    ),
    ComponentSpec(
        name="addsub", kind="comb", output_width=ACC_WIDTH,
        input_ports=(("a", 18), ("b", 18), ("sub", 1)), modes=(0, 1),
        mode_labels=((0, "add"), (1, "sub")), factory=_FACTORIES["addsub"],
        output_bus="result",
    ),
    ComponentSpec(
        name="truncater", kind="comb", output_width=ACC_WIDTH,
        input_ports=(("data", 18), ("en", 1)), modes=(0, 1),
        mode_labels=((0, "pass"), (1, "trunc")),
        factory=_FACTORIES["truncater"],
    ),
    ComponentSpec(
        name="limiter", kind="comb", output_width=OPERAND_WIDTH,
        input_ports=(("data", 18),), modes=(0,), mode_labels=((0, ""),),
        factory=_FACTORIES["limiter"],
    ),
    ComponentSpec(
        name="muxa", kind="comb", output_width=ACC_WIDTH,
        input_ports=(("data", 18), ("en", 1)), modes=(0, 1),
        mode_labels=_ONOFF, factory=_FACTORIES["muxa"],
    ),
    ComponentSpec(
        name="muxb", kind="comb", output_width=ACC_WIDTH,
        input_ports=(("data", 18), ("en", 1)), modes=(0, 1),
        mode_labels=_ONOFF, factory=_FACTORIES["muxb"],
    ),
    ComponentSpec(
        name="muxg_shifter", kind="comb", output_width=ACC_WIDTH,
        input_ports=(("a", 18), ("b", 18), ("sel", 1)), modes=(0, 1),
        mode_labels=((0, "A"), (1, "B")),
        factory=_FACTORIES["muxg_shifter"],
    ),
    ComponentSpec(
        name="muxg_limiter", kind="comb", output_width=ACC_WIDTH - 4,
        input_ports=(("a", 14), ("b", 14), ("sel", 1)), modes=(0, 1),
        mode_labels=((0, "A"), (1, "B")),
        factory=_FACTORIES["muxg_limiter"],
    ),
    ComponentSpec(
        name="mux7", kind="comb", output_width=OPERAND_WIDTH,
        input_ports=(("a", 8), ("b", 8), ("sel", 1)), modes=(0, 1),
        mode_labels=((0, "mac"), (1, "buf")), factory=_FACTORIES["mux7"],
    ),
    ComponentSpec(
        name="decoder", kind="comb", output_width=CONTROL_WIDTH,
        input_ports=(("in", OPCODE_WIDTH),), modes=(0,),
        mode_labels=((0, ""),), factory=_FACTORIES["decoder"],
        in_metrics_table=False,
    ),
    ComponentSpec(
        name="acca", kind="register", output_width=ACC_WIDTH,
        input_ports=(("d", 18), ("en", 1)), modes=(0,),
        mode_labels=((0, ""),), state_key=("acc_a",),
    ),
    ComponentSpec(
        name="accb", kind="register", output_width=ACC_WIDTH,
        input_ports=(("d", 18), ("en", 1)), modes=(0,),
        mode_labels=((0, ""),), state_key=("acc_b",),
    ),
    ComponentSpec(
        name="macreg", kind="register", output_width=OPERAND_WIDTH,
        input_ports=(("d", 8),), modes=(0,), mode_labels=((0, ""),),
        state_key=("macreg",),
    ),
    ComponentSpec(
        name="buffer", kind="register", output_width=OPERAND_WIDTH,
        input_ports=(("d", 8),), modes=(0,), mode_labels=((0, ""),),
        state_key=("buffer",),
    ),
    ComponentSpec(
        name="temp", kind="register", output_width=OPERAND_WIDTH,
        input_ports=(("d", 8),), modes=(0,), mode_labels=((0, ""),),
        state_key=("temp",),
    ),
)

_BY_NAME = {spec.name: spec for spec in COMPONENTS}


def component_by_name(name: str) -> ComponentSpec:
    """Look up a :class:`ComponentSpec`; raises ``KeyError`` if unknown."""
    return _BY_NAME[name]


def all_columns(metrics_only: bool = True) -> List[Tuple[str, int]]:
    """All (component, mode) columns, in registry order.

    With ``metrics_only`` (default) only components that appear in the
    metrics table are listed; pass ``False`` for the full fault-simulation
    component set.
    """
    return [
        (spec.name, mode)
        for spec in COMPONENTS
        if spec.in_metrics_table or not metrics_only
        for mode in spec.modes
    ]
