"""The DSP core *family*: validated design points around the paper core.

The paper evaluates its self-test method on one core.  This module turns
that single configuration into a parameterized family — register-file
size, operand/accumulator width, pipeline depth, shifter and adder
implementation, optional truncater/limiter — so the whole
metrics → Phase 1-3 → fault-simulation pipeline can run across a design
space instead of a point (see ``repro.harness.sweeps``).

Two classes:

* :class:`CoreSpec` — a frozen, validated description of one design
  point.  Illegal combinations (e.g. an accumulator narrower than the
  MAC product) raise :class:`~repro.runtime.errors.ConfigError` from
  :meth:`CoreSpec.validate` and never build anything.
* :class:`CoreBuild` — the cached build context for a legal spec: ISA
  control words, decoder truth table, behavioural core factory,
  gate-level netlist, and the per-spec component registry that the
  metrics/fault layers consume.

``CoreSpec.paper()`` is the paper core; its build delegates to the
historical single-core constructors, so every artifact it produces
(netlist structural hash, metrics tables, Phase 1 selection) is
bit-identical to the pre-family code — pinned by golden tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro._util import mask
from repro.dsp import components as paper_components
from repro.dsp.components import ComponentSpec
from repro.dsp.isa import (
    CONTROL_WIDTH,
    ControlWord,
    OPCODE_WIDTH,
    Opcode,
    control_word,
)
from repro.logic.netlist import Netlist
from repro.rtl.arith import ADDER_STYLES, make_addsub
from repro.rtl.decoder import make_truth_table_logic
from repro.rtl.multiplier import make_multiplier
from repro.rtl.mux import make_gated_bus, make_mux2_bus
from repro.rtl.saturate import make_limiter
from repro.rtl.shifter import make_shifter
from repro.rtl.truncate import make_truncater
from repro.runtime.errors import ConfigError

#: Legal axis values.  Register files must be a power of two (the address
#: decoder is a binary tree); operand widths keep the n.n fixed-point
#: split of the paper; depth 3 drops the IF/ID latch, depth 5 registers
#: the output port.
N_REGISTERS_CHOICES = (4, 8, 16)
OPERAND_WIDTH_CHOICES = (4, 6, 8)
PIPELINE_DEPTH_CHOICES = (3, 4, 5)
SHIFTER_STYLES = ("barrel", "dedicated")

#: Shift-amount field width (low bits of operand A) — fixed by the ISA.
AMT_WIDTH = 4


@dataclass(frozen=True)
class CoreSpec:
    """One validated point of the core family.

    The defaults are the paper core, so ``CoreSpec()`` ==
    ``CoreSpec.paper()``.
    """

    n_registers: int = 16
    operand_width: int = 8
    acc_width: int = 18
    pipeline_depth: int = 4
    shifter: str = "barrel"
    adder: str = "ripple"
    has_truncater: bool = True
    has_limiter: bool = True

    # ------------------------------------------------------------------
    @staticmethod
    def paper() -> "CoreSpec":
        """The paper core (bit-identical to the pre-family code)."""
        return CoreSpec()

    @property
    def is_paper(self) -> bool:
        return self == CoreSpec.paper()

    # Derived fixed-point geometry: operands are w/2.w/2 (rounding the
    # fraction down for odd widths), accumulators keep twice the operand
    # fraction, exactly generalising the paper's 4.4 / 10.8 formats.
    @property
    def operand_frac(self) -> int:
        return self.operand_width // 2

    @property
    def acc_frac(self) -> int:
        return self.operand_width

    @property
    def frac_drop(self) -> int:
        """Low accumulator bits the limiter window discards."""
        return self.acc_frac - self.operand_frac

    @property
    def addr_bits(self) -> int:
        return (self.n_registers - 1).bit_length()

    # ------------------------------------------------------------------
    def validate(self) -> "CoreSpec":
        """Raise :class:`ConfigError` unless the spec is buildable."""
        if self.n_registers not in N_REGISTERS_CHOICES:
            raise ConfigError(
                f"n_registers must be one of {N_REGISTERS_CHOICES}, "
                f"got {self.n_registers}")
        if self.operand_width not in OPERAND_WIDTH_CHOICES:
            raise ConfigError(
                f"operand_width must be one of {OPERAND_WIDTH_CHOICES}, "
                f"got {self.operand_width}")
        # The multiplier sign-extends its 2w-bit product to the
        # accumulator; the paper core keeps two guard bits above it.
        min_acc = 2 * self.operand_width + 2
        if not min_acc <= self.acc_width <= 32:
            raise ConfigError(
                f"acc_width {self.acc_width} outside [{min_acc}, 32] for "
                f"{self.operand_width}-bit operands (the accumulator must "
                "hold the sign-extended MAC product plus guard bits)")
        if self.pipeline_depth not in PIPELINE_DEPTH_CHOICES:
            raise ConfigError(
                f"pipeline_depth must be one of {PIPELINE_DEPTH_CHOICES}, "
                f"got {self.pipeline_depth}")
        if self.shifter not in SHIFTER_STYLES:
            raise ConfigError(
                f"shifter must be one of {SHIFTER_STYLES}, "
                f"got {self.shifter!r}")
        if self.adder not in ADDER_STYLES:
            raise ConfigError(
                f"adder must be one of {ADDER_STYLES}, got {self.adder!r}")
        if not isinstance(self.has_truncater, bool):
            raise ConfigError("has_truncater must be a bool")
        if not isinstance(self.has_limiter, bool):
            raise ConfigError("has_limiter must be a bool")
        return self

    # ------------------------------------------------------------------
    def label(self) -> str:
        """Compact human-readable tag, e.g. ``r16.w8.a18.d4.barrel.ripple``."""
        parts = [
            f"r{self.n_registers}", f"w{self.operand_width}",
            f"a{self.acc_width}", f"d{self.pipeline_depth}",
            self.shifter, self.adder,
        ]
        if not self.has_truncater:
            parts.append("notrunc")
        if not self.has_limiter:
            parts.append("nolimit")
        return ".".join(parts)

    def to_doc(self) -> Dict[str, object]:
        """JSON-serialisable form (replayable artifacts, sweep rows)."""
        return {
            "n_registers": self.n_registers,
            "operand_width": self.operand_width,
            "acc_width": self.acc_width,
            "pipeline_depth": self.pipeline_depth,
            "shifter": self.shifter,
            "adder": self.adder,
            "has_truncater": self.has_truncater,
            "has_limiter": self.has_limiter,
        }

    @staticmethod
    def from_doc(doc: Dict[str, object]) -> "CoreSpec":
        """Rebuild a spec from :meth:`to_doc` output (validated)."""
        return CoreSpec(**doc).validate()


# ----------------------------------------------------------------------
# Per-spec component registry
# ----------------------------------------------------------------------
def _family_components(spec: CoreSpec) -> Tuple[ComponentSpec, ...]:
    """The component registry of one non-paper family point.

    Mirrors ``repro.dsp.components.COMPONENTS`` with per-spec widths and
    factories; absent optional components are simply not listed.
    """
    ow, aw = spec.operand_width, spec.acc_width
    frac, drop = spec.acc_frac, spec.frac_drop
    truth_table = decoder_truth_table_for(spec)
    _onoff = ((0, "0"), (1, "1"))
    specs = [
        ComponentSpec(
            name="multiplier", kind="comb", output_width=aw,
            input_ports=(("a", ow), ("b", ow)), modes=(0,),
            mode_labels=((0, ""),),
            factory=lambda: make_multiplier(ow, aw), output_bus="p",
        ),
        ComponentSpec(
            name="shifter", kind="comb", output_width=aw,
            input_ports=(("data", aw), ("amt", AMT_WIDTH), ("mode", 2)),
            modes=(0, 1, 2, 3),
            mode_labels=((0, "00"), (1, "01"), (2, "10"), (3, "11")),
            factory=lambda: make_shifter(aw, AMT_WIDTH, style=spec.shifter),
        ),
        ComponentSpec(
            name="addsub", kind="comb", output_width=aw,
            input_ports=(("a", aw), ("b", aw), ("sub", 1)), modes=(0, 1),
            mode_labels=((0, "add"), (1, "sub")),
            factory=lambda: make_addsub(aw, adder=spec.adder),
            output_bus="result",
        ),
    ]
    if spec.has_truncater:
        specs.append(ComponentSpec(
            name="truncater", kind="comb", output_width=aw,
            input_ports=(("data", aw), ("en", 1)), modes=(0, 1),
            mode_labels=((0, "pass"), (1, "trunc")),
            factory=lambda: make_truncater(aw, frac),
        ))
    if spec.has_limiter:
        specs.append(ComponentSpec(
            name="limiter", kind="comb", output_width=ow,
            input_ports=(("data", aw),), modes=(0,), mode_labels=((0, ""),),
            factory=lambda: make_limiter(aw, ow, drop),
        ))
    specs += [
        ComponentSpec(
            name="muxa", kind="comb", output_width=aw,
            input_ports=(("data", aw), ("en", 1)), modes=(0, 1),
            mode_labels=_onoff,
            factory=lambda: make_gated_bus(aw, invert_enable=True),
        ),
        ComponentSpec(
            name="muxb", kind="comb", output_width=aw,
            input_ports=(("data", aw), ("en", 1)), modes=(0, 1),
            mode_labels=_onoff,
            factory=lambda: make_gated_bus(aw, invert_enable=False),
        ),
        ComponentSpec(
            name="muxg_shifter", kind="comb", output_width=aw,
            input_ports=(("a", aw), ("b", aw), ("sel", 1)), modes=(0, 1),
            mode_labels=((0, "A"), (1, "B")),
            factory=lambda: make_mux2_bus(aw),
        ),
        ComponentSpec(
            name="muxg_limiter", kind="comb", output_width=aw - drop,
            input_ports=(("a", aw - drop), ("b", aw - drop), ("sel", 1)),
            modes=(0, 1), mode_labels=((0, "A"), (1, "B")),
            factory=lambda: make_mux2_bus(aw - drop),
        ),
        ComponentSpec(
            name="mux7", kind="comb", output_width=ow,
            input_ports=(("a", ow), ("b", ow), ("sel", 1)), modes=(0, 1),
            mode_labels=((0, "mac"), (1, "buf")),
            factory=lambda: make_mux2_bus(ow),
        ),
        ComponentSpec(
            name="decoder", kind="comb", output_width=CONTROL_WIDTH,
            input_ports=(("in", OPCODE_WIDTH),), modes=(0,),
            mode_labels=((0, ""),),
            factory=lambda: make_truth_table_logic(
                OPCODE_WIDTH, CONTROL_WIDTH, truth_table),
            in_metrics_table=False,
        ),
        ComponentSpec(
            name="acca", kind="register", output_width=aw,
            input_ports=(("d", aw), ("en", 1)), modes=(0,),
            mode_labels=((0, ""),), state_key=("acc_a",),
        ),
        ComponentSpec(
            name="accb", kind="register", output_width=aw,
            input_ports=(("d", aw), ("en", 1)), modes=(0,),
            mode_labels=((0, ""),), state_key=("acc_b",),
        ),
        ComponentSpec(
            name="macreg", kind="register", output_width=ow,
            input_ports=(("d", ow),), modes=(0,), mode_labels=((0, ""),),
            state_key=("macreg",),
        ),
        ComponentSpec(
            name="buffer", kind="register", output_width=ow,
            input_ports=(("d", ow),), modes=(0,), mode_labels=((0, ""),),
            state_key=("buffer",),
        ),
        ComponentSpec(
            name="temp", kind="register", output_width=ow,
            input_ports=(("d", ow),), modes=(0,), mode_labels=((0, ""),),
            state_key=("temp",),
        ),
    ]
    return tuple(specs)


def control_word_for(spec: CoreSpec, opcode: Opcode) -> ControlWord:
    """The control word of ``opcode`` on this family point.

    Without a truncater, the decoder's truncate column is tied low — the
    control bit exists in the word format but nothing reads it.
    """
    cw = control_word(opcode)
    if not spec.has_truncater and cw.trunc:
        cw = replace(cw, trunc=0)
    return cw


def decoder_truth_table_for(spec: CoreSpec) -> Dict[int, int]:
    """Opcode value → packed control word for this family point."""
    return {int(op): control_word_for(spec, op).pack() for op in Opcode}


# ----------------------------------------------------------------------
# Build context
# ----------------------------------------------------------------------
class CoreBuild:
    """Cached build context for one legal :class:`CoreSpec`.

    Obtain instances through :meth:`CoreBuild.get`, which validates the
    spec and memoises the (expensive) gate-level build.  The paper spec's
    build delegates to the historical single-core constructors so its
    outputs stay bit-identical to the pre-family code.
    """

    def __init__(self, spec: CoreSpec):
        spec.validate()
        self.spec = spec
        from repro.dsp.mac import MacParams, PAPER_MAC
        if spec.is_paper:
            self.mac_params = PAPER_MAC
            self.components = paper_components.COMPONENTS
        else:
            self.mac_params = MacParams(
                operand_width=spec.operand_width,
                acc_width=spec.acc_width,
                frac=spec.acc_frac,
                frac_drop=spec.frac_drop,
                amt_width=AMT_WIDTH,
                has_truncater=spec.has_truncater,
                has_limiter=spec.has_limiter,
            )
            self.components = _family_components(spec)
        self.operand_mask = mask(spec.operand_width)
        self.acc_mask = mask(spec.acc_width)
        self._by_name = {c.name: c for c in self.components}
        self._control_words: Dict[Opcode, ControlWord] = {}
        self._netlist: Optional[Netlist] = None

    # ------------------------------------------------------------------
    @staticmethod
    @lru_cache(maxsize=64)
    def get(spec: CoreSpec) -> "CoreBuild":
        return CoreBuild(spec)

    # ------------------------------------------------------------------
    @property
    def drain_length(self) -> int:
        """NOPs appended to flush the pipeline (4 on the paper core)."""
        return max(4, self.spec.pipeline_depth) \
            if self.spec.pipeline_depth >= 4 else 3

    #: Cycle offsets of an instruction issued at cycle 0 (the metrics
    #: engines inject/observe at these offsets).
    @property
    def id_cycle(self) -> int:
        return 0 if self.spec.pipeline_depth == 3 else 1

    @property
    def ex_cycle(self) -> int:
        return self.id_cycle + 1

    @property
    def wb_cycle(self) -> int:
        return self.ex_cycle + 1

    @property
    def port_delay(self) -> int:
        """Extra cycles between WB and the observable port (depth 5)."""
        return 1 if self.spec.pipeline_depth >= 5 else 0

    # ------------------------------------------------------------------
    def control_word(self, opcode: Opcode) -> ControlWord:
        try:
            return self._control_words[opcode]
        except KeyError:
            cw = control_word_for(self.spec, opcode)
            self._control_words[opcode] = cw
            return cw

    def decoder_truth_table(self) -> Dict[int, int]:
        return decoder_truth_table_for(self.spec)

    def component_by_name(self, name: str) -> ComponentSpec:
        return self._by_name[name]

    def all_columns(self, metrics_only: bool = True):
        """All (component, mode) columns of this point, registry order."""
        return [
            (c.name, mode)
            for c in self.components
            if c.in_metrics_table or not metrics_only
            for mode in c.modes
        ]

    # ------------------------------------------------------------------
    def make_core(self, state=None, stuck_bits=None):
        """A fresh behavioural core for this point."""
        from repro.dsp.core import DspCore
        if self.spec.is_paper:
            return DspCore(state=state, stuck_bits=stuck_bits)
        return DspCore(state=state, stuck_bits=stuck_bits, build=self)

    @property
    def netlist(self) -> Netlist:
        """The gate-level core (cached)."""
        if self._netlist is None:
            from repro.dsp.gatelevel import make_gatelevel_core
            if self.spec.is_paper:
                self._netlist = make_gatelevel_core()
            else:
                self._netlist = make_gatelevel_core(
                    name=f"dsp_core_{self.spec.label()}", spec=self.spec)
        return self._netlist

    @property
    def area(self) -> int:
        """Gate + flop count — the landscape's area proxy."""
        n = self.netlist
        return len(n.gates) + len(n.dffs)


def paper_build() -> CoreBuild:
    """The paper core's build context (shared instance)."""
    return CoreBuild.get(CoreSpec.paper())
