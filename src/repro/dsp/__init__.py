"""The embedded DSP core under test.

Mirrors the industrial core of the paper's Section 3: a four-stage
pipelined RISC-style load/store DSP with a 17-bit instruction word, a
16×8-bit register file, a forwarding (temp) register, a stage-3 buffer, and
a MAC datapath with an 8×8 fixed-point multiplier (sign-extended to 18
bits), adder/subtracter, two 18-bit accumulators, an arithmetic shifter fed
back into the adder, a truncater and a limiter.

* :mod:`repro.dsp.isa` — instruction formats, opcode map, control word,
  assembler/disassembler.
* :mod:`repro.dsp.fixedpoint` — the 4.4 / 10.8 fixed-point interpretation.
* :mod:`repro.dsp.mac` — behavioural MAC datapath with per-component
  tracing and output-override (error injection) hooks.
* :mod:`repro.dsp.core` — the pipelined instruction-set simulator.
* :mod:`repro.dsp.components` — registry tying each traced component to
  its gate-level netlist and its control-bit modes (metrics-table columns).
* :mod:`repro.dsp.simple` — the small Fig. 1 datapath used by Table 1.
* :mod:`repro.dsp.gatelevel` — flat gate-level assembly of the whole core.
"""

from repro.dsp.isa import (
    Opcode,
    Instruction,
    assemble,
    disassemble,
    encode,
    decode,
)
from repro.dsp.core import DspCore, CoreState, StepResult
from repro.dsp.mac import MacDatapath, MacControls
from repro.dsp.components import COMPONENTS, ComponentSpec, component_by_name

__all__ = [
    "Opcode",
    "Instruction",
    "assemble",
    "disassemble",
    "encode",
    "decode",
    "DspCore",
    "CoreState",
    "StepResult",
    "MacDatapath",
    "MacControls",
    "COMPONENTS",
    "ComponentSpec",
    "component_by_name",
]
