"""Fixed-point interpretation of DSP datapath values.

The paper: "The inputs and outputs of the MAC use 8-bit fixed point
integers formatted with four bits to the left and four to the right of the
decimal point."  Products are therefore 8.8 (16 bits), sign-extended to the
18-bit internal format 10.8 used by the accumulators.

All storage stays in unsigned two's-complement encoding (see
:mod:`repro._util`); these helpers convert to and from ``float`` for
examples, documentation and tests — the datapath itself never touches
floats.
"""

from __future__ import annotations

from repro._util import to_signed, to_unsigned

#: Fractional bits of the 8-bit 4.4 operand format.
OPERAND_FRAC = 4
#: Fractional bits of the 18-bit 10.8 accumulator format.
ACC_FRAC = 8
#: Operand width (register file word).
OPERAND_WIDTH = 8
#: Accumulator width.
ACC_WIDTH = 18


def q44_to_float(word: int) -> float:
    """Interpret an 8-bit word as 4.4 fixed point."""
    return to_signed(word, OPERAND_WIDTH) / (1 << OPERAND_FRAC)


def float_to_q44(value: float) -> int:
    """Encode a float as 4.4 fixed point (saturating at the format limits)."""
    scaled = round(value * (1 << OPERAND_FRAC))
    hi = (1 << (OPERAND_WIDTH - 1)) - 1
    lo = -(1 << (OPERAND_WIDTH - 1))
    scaled = max(lo, min(hi, scaled))
    return to_unsigned(scaled, OPERAND_WIDTH)


def q108_to_float(word: int) -> float:
    """Interpret an 18-bit word as 10.8 fixed point."""
    return to_signed(word, ACC_WIDTH) / (1 << ACC_FRAC)


def float_to_q108(value: float) -> int:
    """Encode a float as 10.8 fixed point (saturating at the format limits)."""
    scaled = round(value * (1 << ACC_FRAC))
    hi = (1 << (ACC_WIDTH - 1)) - 1
    lo = -(1 << (ACC_WIDTH - 1))
    scaled = max(lo, min(hi, scaled))
    return to_unsigned(scaled, ACC_WIDTH)
