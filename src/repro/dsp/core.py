"""Behavioural instruction-set simulator of the four-stage pipelined core.

Pipeline (paper Fig. 6)::

    IF ──► ID (decode, register read, forwarding) ──► EX (MAC / buffer)
       ──► WB (register write, output port)

Hazard handling follows the paper: read-after-write hazards are resolved
with forwarding through a temporary register — a distance-1 producer is
bypassed combinationally from the EX stage, a distance-2 producer through
the ``temp`` register that latches each EX result; distance-3 producers
have already written the register file.

Stage 3 holds the ``buffer`` used by ``ld``/``out``/``mov``; MAC results go
through ``MacReg``.  ``MUX7`` selects between them for write-back and the
8-bit output port.

Like the MAC datapath, every traced component's output can be overridden
for a cycle (error injection), and persistent stuck bits can be applied to
any architectural state element (used for word-level register fault
simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro._util import mask
from repro.dsp.fixedpoint import ACC_WIDTH, OPERAND_WIDTH
from repro.dsp.isa import (
    ControlWord,
    Instruction,
    N_REGISTERS,
    Opcode,
    control_word,
    decode,
)
from repro.dsp.mac import (
    ComponentActivity,
    MacControls,
    MacDatapath,
    MacParams,
    Overrides,
    PAPER_MAC,
    Trace,
)

_REG_MASK = mask(OPERAND_WIDTH)
_ACC_MASK = mask(ACC_WIDTH)


@dataclass
class IdEx:
    """ID/EX pipeline latch: decoded instruction plus fetched operands."""

    instr: Instruction
    ctrl: ControlWord
    opa: int
    opb: int


@dataclass
class ExWb:
    """EX/WB pipeline latch.

    Carries only the instruction and its controls — the data travels in
    the architectural MacReg and buffer registers, which MUX7 reads in WB.
    """

    instr: Instruction
    ctrl: ControlWord


@dataclass
class CoreState:
    """Complete architectural + pipeline state of the core."""

    regs: List[int] = field(default_factory=lambda: [0] * N_REGISTERS)
    acc_a: int = 0
    acc_b: int = 0
    temp: int = 0
    temp_dest: Optional[int] = None  # register the temp value targets
    macreg: int = 0
    buffer: int = 0
    if_id: Optional[int] = None
    id_ex: Optional[IdEx] = None
    ex_wb: Optional[ExWb] = None
    #: Registered output port of 5-deep family cores: ``(valid, value)``.
    out_latch: Tuple[int, int] = (0, 0)

    def copy(self) -> "CoreState":
        return CoreState(
            regs=list(self.regs),
            acc_a=self.acc_a,
            acc_b=self.acc_b,
            temp=self.temp,
            temp_dest=self.temp_dest,
            macreg=self.macreg,
            buffer=self.buffer,
            if_id=self.if_id,
            id_ex=replace(self.id_ex) if self.id_ex else None,
            ex_wb=replace(self.ex_wb) if self.ex_wb else None,
            out_latch=self.out_latch,
        )


@dataclass
class StepResult:
    """Externally visible outcome of one clock cycle."""

    out_valid: bool
    out_value: int  # 8-bit output port (0 when not driven)

    @property
    def port(self) -> int:
        """The raw output port value (what a MISR would compact)."""
        return self.out_value if self.out_valid else 0


#: State elements addressable by stuck-bit injection: ``("reg", i)``,
#: ``("acc_a",)``, ``("acc_b",)``, ``("macreg",)``, ``("buffer",)``,
#: ``("temp",)``.
StuckBits = Mapping[Tuple, Tuple[int, int]]


class DspCore:
    """The pipelined DSP core.

    ``stuck_bits`` maps state-element keys to ``(and_mask, or_mask)`` pairs
    applied after every cycle (and at construction), modelling stuck-at
    faults in storage elements.

    ``build`` selects a non-paper family point (a
    :class:`repro.dsp.family.CoreBuild`); omitted, the core is the paper
    configuration.
    """

    def __init__(self, state: Optional[CoreState] = None,
                 stuck_bits: Optional[StuckBits] = None,
                 build=None):
        self.build = build
        if build is None:
            self._mac_params: MacParams = PAPER_MAC
            self._reg_mask = _REG_MASK
            self._acc_mask = _ACC_MASK
            self._addr_mask = N_REGISTERS - 1
            self._depth = 4
            self._drain = 4
            self._control_word = control_word
            n_regs = N_REGISTERS
        else:
            self._mac_params = build.mac_params
            self._reg_mask = build.operand_mask
            self._acc_mask = build.acc_mask
            self._addr_mask = build.spec.n_registers - 1
            self._depth = build.spec.pipeline_depth
            self._drain = build.drain_length
            self._control_word = build.control_word
            n_regs = build.spec.n_registers
        if state is not None:
            self.state = state
        else:
            self.state = CoreState(regs=[0] * n_regs)
        self.stuck_bits = dict(stuck_bits) if stuck_bits else {}
        if self.stuck_bits:
            self._apply_stuck_bits()

    # ------------------------------------------------------------------
    def _apply_stuck_bits(self) -> None:
        s = self.state
        for key, (and_mask, or_mask) in self.stuck_bits.items():
            kind = key[0]
            if kind == "reg":
                s.regs[key[1]] = (s.regs[key[1]] & and_mask) | or_mask
            elif kind == "acc_a":
                s.acc_a = (s.acc_a & and_mask) | or_mask
            elif kind == "acc_b":
                s.acc_b = (s.acc_b & and_mask) | or_mask
            elif kind == "macreg":
                s.macreg = (s.macreg & and_mask) | or_mask
            elif kind == "buffer":
                s.buffer = (s.buffer & and_mask) | or_mask
            elif kind == "temp":
                s.temp = (s.temp & and_mask) | or_mask
            else:
                raise ValueError(f"unknown stuck-bit target {key!r}")

    # ------------------------------------------------------------------
    def step(self, instr_word: int,
             overrides: Optional[Overrides] = None,
             trace: Optional[Trace] = None) -> StepResult:
        """Advance the core by one clock cycle, fetching ``instr_word``."""
        s = self.state

        def emit(name: str, inputs: Dict[str, int], output: int,
                 mode: int = 0) -> int:
            if overrides and name in overrides:
                override = overrides[name]
                output = override(inputs) if callable(override) else override
            if trace is not None:
                trace[name] = ComponentActivity(inputs, output, mode)
            return output

        # ---------------- WB stage (uses ex_wb latch) -----------------
        # MUX7 reads the *stored* MacReg/buffer values, i.e. the values the
        # WB-stage instruction latched when it was in EX — before this
        # cycle's EX stage overwrites them.
        out_valid = False
        out_value = 0
        wb = s.ex_wb
        wb_value = 0
        if wb is not None:
            wb_value = emit(
                "mux7",
                {"a": s.macreg, "b": s.buffer, "sel": wb.ctrl.mux7_buffer},
                s.buffer if wb.ctrl.mux7_buffer else s.macreg,
                mode=wb.ctrl.mux7_buffer,
            ) & self._reg_mask
            if wb.ctrl.out_en:
                out_valid = True
                out_value = wb_value

        # ---------------- EX stage (uses id_ex latch) -----------------
        new_ex_wb: Optional[ExWb] = None
        ex_bypass: Optional[Tuple[int, int]] = None  # (dest, value)
        if s.id_ex is not None:
            stage = s.id_ex
            ctrl = stage.ctrl
            mac = MacDatapath.evaluate(
                stage.opa, stage.opb,
                MacControls.from_control_word(ctrl),
                s.acc_a, s.acc_b,
                trace=trace, overrides=overrides,
                params=self._mac_params,
            )
            s.acc_a = mac.acc_a & self._acc_mask
            s.acc_b = mac.acc_b & self._acc_mask

            buffer_d = stage.instr.imm if ctrl.buf_imm else stage.opb
            macreg_value = emit(
                "macreg", {"d": mac.limited, "q": s.macreg}, mac.limited
            )
            buffer_value = emit(
                "buffer", {"d": buffer_d, "q": s.buffer}, buffer_d
            )
            s.macreg = macreg_value & self._reg_mask
            s.buffer = buffer_value & self._reg_mask
            new_ex_wb = ExWb(instr=stage.instr, ctrl=ctrl)
            if ctrl.reg_we:
                bypass_value = (buffer_value if ctrl.mux7_buffer
                                else macreg_value) & self._reg_mask
                ex_bypass = (stage.instr.dest & self._addr_mask, bypass_value)

        # ---------------- ID stage (uses if_id latch) -----------------
        # A 3-deep family core has no IF/ID latch: it decodes the incoming
        # instruction word in the same cycle it is fetched.
        new_id_ex: Optional[IdEx] = None
        fetched = instr_word & mask(17) if self._depth == 3 else s.if_id
        if fetched is not None:
            instr = decode(fetched)
            ctrl_packed = emit(
                "decoder", {"in": int(instr.opcode)},
                self._control_word(instr.opcode).pack(),
            )
            ctrl = ControlWord.unpack(ctrl_packed)

            def read_reg(addr: int, port: str) -> int:
                value = s.regs[addr & self._addr_mask]
                if (ex_bypass is not None
                        and ex_bypass[0] == addr & self._addr_mask):
                    value = ex_bypass[1]
                elif (wb is not None and wb.ctrl.reg_we
                        and wb.instr.dest & self._addr_mask
                        == addr & self._addr_mask):
                    # Distance-2 forward: the producer is in WB right now and
                    # its value sits in the temp register (latched when it
                    # left EX).
                    value = s.temp
                return emit(f"regread_{port}", {"addr": addr}, value)

            opa = read_reg(instr.rega, "a") & self._reg_mask
            opb = read_reg(instr.regb, "b") & self._reg_mask
            new_id_ex = IdEx(instr=instr, ctrl=ctrl, opa=opa, opb=opb)

        # ---------------- register write & latch advance --------------
        if wb is not None and wb.ctrl.reg_we:
            s.regs[wb.instr.dest & self._addr_mask] = wb_value

        if ex_bypass is not None:
            s.temp = emit(
                "temp", {"d": ex_bypass[1], "q": s.temp}, ex_bypass[1]
            ) & self._reg_mask
            s.temp_dest = ex_bypass[0]
        # A producer's temp entry stays valid until the next producer; a
        # stale entry is harmless because the register file already holds
        # the same value by then.

        s.ex_wb = new_ex_wb
        s.id_ex = new_id_ex
        s.if_id = None if self._depth == 3 else instr_word & mask(17)

        if self.stuck_bits:
            self._apply_stuck_bits()
        if self._depth >= 5:
            # Registered output port: what the caller sees this cycle is
            # the value latched at the end of the previous one.
            prev_valid, prev_value = s.out_latch
            s.out_latch = (1 if out_valid else 0, out_value)
            return StepResult(out_valid=bool(prev_valid),
                              out_value=prev_value)
        return StepResult(out_valid=out_valid, out_value=out_value)

    # ------------------------------------------------------------------
    def run(self, words, overrides_by_cycle=None) -> List[StepResult]:
        """Run a sequence of instruction words; returns per-cycle results.

        Four NOPs are *not* appended automatically — callers that need the
        pipeline drained should use :meth:`run_program`.
        """
        results = []
        for t, word in enumerate(words):
            ov = overrides_by_cycle.get(t) if overrides_by_cycle else None
            results.append(self.step(word, overrides=ov))
        return results

    def run_program(self, instructions, drain: bool = True) -> List[int]:
        """Execute :class:`Instruction` objects; returns the output-port
        values of every cycle (including pipeline drain)."""
        from repro.dsp.isa import encode
        words = [encode(i) for i in instructions]
        if drain:
            words += [encode(Instruction(Opcode.NOP))] * self._drain
        return [r.port for r in self.run(words)]
