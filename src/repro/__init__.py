"""repro — reproduction of *Designing Self Test Programs for Embedded DSP
Cores* (Rizk, Papachristou, Wolff; DATE 2004).

The package builds, from scratch, every system the paper uses:

* a gate-level netlist substrate with pattern-parallel simulation
  (:mod:`repro.logic`) and a structural RTL library (:mod:`repro.rtl`);
* stuck-at fault modelling and fault simulation, including the
  hierarchical core-level fault simulator (:mod:`repro.faults`);
* the four-stage pipelined DSP core — behavioural and flat gate level —
  with its 17-bit instruction set (:mod:`repro.dsp`);
* LFSR/MISR BIST hardware and the test-program template architecture
  (:mod:`repro.bist`);
* instruction-level controllability/observability metrics
  (:mod:`repro.metrics`);
* the self-test program generation flow, Phases 1–3
  (:mod:`repro.selftest`);
* PODEM ATPG and time-frame expansion (:mod:`repro.atpg`);
* the paper's comparison baselines (:mod:`repro.baselines`).

Quickstart::

    from repro.metrics.table import build_metrics_table
    from repro.selftest.generator import SelfTestGenerator
    from repro.selftest.vectors import expand_program
    from repro.faults.hierarchical import HierarchicalFaultSimulator

    table = build_metrics_table()
    selftest = SelfTestGenerator(table=table).generate()
    print(selftest.program.render())            # the Fig. 7-style listing
    words = expand_program(selftest.program, n_iterations=200)
    result = HierarchicalFaultSimulator().run(words)
    print(result.coverage_report("self test"))
"""

__version__ = "1.0.0"

__all__ = [
    "logic",
    "rtl",
    "faults",
    "dsp",
    "bist",
    "metrics",
    "selftest",
    "atpg",
    "baselines",
    "harness",
]
