"""Plain-text rendering helpers for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple
from repro.runtime.errors import ConfigError


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    materialised = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ConfigError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialised)
    return "\n".join(lines)


def format_curve(points: Sequence[Tuple[int, float]],
                 x_label: str = "vectors",
                 y_label: str = "coverage",
                 width: int = 50) -> str:
    """A coarse ASCII rendering of a coverage curve."""
    if not points:
        return "(no data)"
    lines = [f"{x_label:>10}  {y_label}"]
    for x, y in points:
        bar = "#" * int(round(y * width))
        lines.append(f"{x:>10}  {bar} {y:.2%}")
    return "\n".join(lines)
