"""Experiment registry and result records.

Each benchmark registers its outcome here so EXPERIMENTS.md rows (paper
value vs measured value) can be regenerated mechanically.  ``scaled``
resolves per-experiment workload sizes: benchmarks default to laptop-scale
runs and honour the ``REPRO_SCALE`` environment variable (e.g.
``REPRO_SCALE=full pytest benchmarks/``) for paper-scale vector counts.

Benchmarks that execute through the resilient campaign runner
(:mod:`repro.runtime`) also record their unit accounting — how many
units completed normally, degraded to a cheaper backend, or were
quarantined — so a benchmark row cannot silently hide a partially
failed run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.runtime.errors import ConfigError

#: Workload presets: quick (CI), default (laptop), full (paper scale).
SCALES = ("quick", "default", "full")


def current_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "default").lower()
    if scale not in SCALES:
        raise ConfigError(
            f"REPRO_SCALE must be one of {SCALES}, got {scale!r}"
        )
    return scale


def scaled(quick: int, default: int, full: int) -> int:
    """Pick a workload size for the active ``REPRO_SCALE``."""
    return {"quick": quick, "default": default, "full": full}[current_scale()]


def campaign_counts_note(counts: Optional[Dict[str, int]]) -> str:
    """Human-readable unit accounting, e.g. ``"2 degraded, 1 quarantined"``.

    Empty when every unit completed normally — clean runs stay clean in
    the table.
    """
    if not counts:
        return ""
    parts = []
    for key in ("degraded", "quarantined", "retried", "resumed"):
        if counts.get(key):
            parts.append(f"{counts[key]} {key}")
    return ", ".join(parts)


@dataclass
class ExperimentResult:
    """One paper-artefact reproduction outcome."""

    experiment_id: str          # e.g. "T1", "E5"
    description: str
    paper_value: str            # what the paper reports
    measured_value: str         # what this run measured
    scale: str = field(default_factory=current_scale)
    details: str = ""
    #: Unit accounting from ``CampaignReport.counts()`` when the
    #: benchmark ran through the campaign runner.
    campaign_counts: Optional[Dict[str, int]] = None

    def row(self) -> str:
        note = campaign_counts_note(self.campaign_counts)
        units = note if note else ("clean" if self.campaign_counts else "")
        return (f"| {self.experiment_id} | {self.description} | "
                f"{self.paper_value} | {self.measured_value} | "
                f"{self.scale} | {units} |")


class ExperimentRegistry:
    """Collects results across a benchmark session."""

    def __init__(self):
        self.results: Dict[str, ExperimentResult] = {}

    def record(self, result: ExperimentResult) -> ExperimentResult:
        self.results[result.experiment_id] = result
        return result

    def attach_campaign(self, experiment_id: str,
                        counts: Dict[str, int]) -> None:
        """Attach campaign unit accounting to an already recorded row."""
        if experiment_id not in self.results:
            raise ConfigError(
                f"no experiment {experiment_id!r} recorded yet"
            )
        self.results[experiment_id].campaign_counts = dict(counts)

    def markdown_table(self) -> str:
        header = ("| id | artefact | paper | measured | scale | units |\n"
                  "|---|---|---|---|---|---|")
        rows = [self.results[k].row() for k in sorted(self.results)]
        return "\n".join([header] + rows)


#: Global registry used by the benchmark suite.
REGISTRY = ExperimentRegistry()
