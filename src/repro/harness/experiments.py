"""Experiment registry and result records.

Each benchmark registers its outcome here so EXPERIMENTS.md rows (paper
value vs measured value) can be regenerated mechanically.  ``scaled``
resolves per-experiment workload sizes: benchmarks default to laptop-scale
runs and honour the ``REPRO_SCALE`` environment variable (e.g.
``REPRO_SCALE=full pytest benchmarks/``) for paper-scale vector counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

#: Workload presets: quick (CI), default (laptop), full (paper scale).
SCALES = ("quick", "default", "full")


def current_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "default").lower()
    if scale not in SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {SCALES}, got {scale!r}"
        )
    return scale


def scaled(quick: int, default: int, full: int) -> int:
    """Pick a workload size for the active ``REPRO_SCALE``."""
    return {"quick": quick, "default": default, "full": full}[current_scale()]


@dataclass
class ExperimentResult:
    """One paper-artefact reproduction outcome."""

    experiment_id: str          # e.g. "T1", "E5"
    description: str
    paper_value: str            # what the paper reports
    measured_value: str         # what this run measured
    scale: str = field(default_factory=current_scale)
    details: str = ""

    def row(self) -> str:
        return (f"| {self.experiment_id} | {self.description} | "
                f"{self.paper_value} | {self.measured_value} | "
                f"{self.scale} |")


class ExperimentRegistry:
    """Collects results across a benchmark session."""

    def __init__(self):
        self.results: Dict[str, ExperimentResult] = {}

    def record(self, result: ExperimentResult) -> ExperimentResult:
        self.results[result.experiment_id] = result
        return result

    def markdown_table(self) -> str:
        header = ("| id | artefact | paper | measured | scale |\n"
                  "|---|---|---|---|---|")
        rows = [self.results[k].row() for k in sorted(self.results)]
        return "\n".join([header] + rows)


#: Global registry used by the benchmark suite.
REGISTRY = ExperimentRegistry()
