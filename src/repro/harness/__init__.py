"""Experiment harness: result containers and text rendering shared by the
benchmarks and EXPERIMENTS.md."""

from repro.harness.experiments import (
    ExperimentResult,
    ExperimentRegistry,
    REGISTRY,
    scaled,
)
from repro.harness.reporting import format_table, format_curve

__all__ = [
    "ExperimentResult",
    "ExperimentRegistry",
    "REGISTRY",
    "scaled",
    "format_table",
    "format_curve",
]
