"""Design-space sweeps over the DSP core family.

The paper evaluates its self-test method on a single core.  With the
core family (:mod:`repro.dsp.family`) the whole pipeline — lint,
metrics table, Phase 1/2 selection, program assembly, vector expansion
and hierarchical fault grading — runs per *design point*, and this
module drives it across many points, producing a coverage /
test-length / area landscape artifact (schema ``repro.sweep/1``).

Execution model: every point's metrics measurement and fault grading
run through the resilient :class:`~repro.runtime.runner.CampaignRunner`
(per-point checkpoint files under the sweep's checkpoint directory, so
``--jobs`` pooling, unit timeouts and ``--resume`` all apply), and each
finished point is persisted as ``<label>.result.json`` — interrupting a
sweep anywhere loses at most the current point's in-flight units.

Every swept core also runs a cheap interpreted-vs-batched fault-grading
parity check, so an engine divergence on an exotic configuration fails
the sweep instead of silently skewing the landscape.
"""

from __future__ import annotations

import itertools
import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro import obs
from repro.dsp.family import (
    CoreBuild,
    CoreSpec,
    N_REGISTERS_CHOICES,
    OPERAND_WIDTH_CHOICES,
    PIPELINE_DEPTH_CHOICES,
    SHIFTER_STYLES,
)
from repro.rtl.arith import ADDER_STYLES
from repro.runtime.errors import ConfigError

SWEEP_SCHEMA = "repro.sweep/1"

#: Fields every point record must carry (artifact contract, checked by
#: :func:`validate_sweep_doc` and the CI schema gate).
_POINT_KEYS = (
    "spec", "label", "area", "n_columns", "n_covered_columns",
    "phase1_instructions", "phase2_sequences", "still_uncovered",
    "program_length", "n_vectors", "signature", "n_faults", "n_detected",
    "fault_coverage", "lint_errors", "parity_ok", "campaign",
)


def default_acc_width(operand_width: int) -> int:
    """The family's natural accumulator width: product plus guard bits
    (18 for the paper's 8-bit operands)."""
    return 2 * operand_width + 2


# ----------------------------------------------------------------------
# Design-point enumeration
# ----------------------------------------------------------------------
def factorial_specs(axes: Dict[str, Sequence[Any]]) -> List[CoreSpec]:
    """The full factorial over ``axes`` (CoreSpec field -> values).

    Unlisted fields take their paper defaults; ``acc_width`` follows the
    operand width (:func:`default_acc_width`) unless swept explicitly.
    Illegal combinations raise :class:`ConfigError` — a sweep definition
    naming an unbuildable point is a configuration bug, not data.
    """
    for name in axes:
        if name not in CoreSpec.__dataclass_fields__:
            raise ConfigError(f"unknown CoreSpec axis {name!r}")
    names = list(axes)
    specs: List[CoreSpec] = []
    for values in itertools.product(*(axes[n] for n in names)):
        kwargs = dict(zip(names, values))
        if "acc_width" not in kwargs:
            width = kwargs.get("operand_width", 8)
            kwargs["acc_width"] = 18 if width == 8 \
                else default_acc_width(width)
        specs.append(CoreSpec(**kwargs).validate())
    return specs


def sampled_specs(n: int, seed: int = 2004) -> List[CoreSpec]:
    """``n`` distinct legal design points drawn uniformly per axis."""
    rng = random.Random(seed)
    seen = set()
    specs: List[CoreSpec] = []
    attempts = 0
    while len(specs) < n and attempts < 200 * max(1, n):
        attempts += 1
        width = rng.choice(OPERAND_WIDTH_CHOICES)
        lo = default_acc_width(width)
        spec = CoreSpec(
            n_registers=rng.choice(N_REGISTERS_CHOICES),
            operand_width=width,
            acc_width=rng.randrange(lo, min(32, lo + 6) + 1),
            pipeline_depth=rng.choice(PIPELINE_DEPTH_CHOICES),
            shifter=rng.choice(SHIFTER_STYLES),
            adder=rng.choice(ADDER_STYLES),
            has_truncater=rng.random() < 0.8,
            has_limiter=rng.random() < 0.8,
        )
        if spec in seen:
            continue
        seen.add(spec)
        specs.append(spec.validate())
    if len(specs) < n:
        raise ConfigError(f"could not sample {n} distinct design points")
    return specs


def quick_factorial() -> List[CoreSpec]:
    """The 4-point CI sweep: shifter × adder at a small configuration."""
    return factorial_specs({
        "n_registers": [8],
        "operand_width": [4],
        "pipeline_depth": [4],
        "shifter": list(SHIFTER_STYLES),
        "adder": list(ADDER_STYLES),
    })


# ----------------------------------------------------------------------
# Sweep configuration
# ----------------------------------------------------------------------
@dataclass
class SweepConfig:
    """Everything one design-space sweep needs."""

    specs: List[CoreSpec]
    n_controllability_samples: int = 20
    n_observability_good: int = 2
    seed: int = 2004
    n_iterations: int = 2          # program-loop expansions per point
    storage_fault_max_cycles: Optional[int] = 160
    block_size: int = 64
    checkpoint_every: int = 16
    propagation_window: int = 24
    engine: str = "interpreted"
    #: Component whose fault universe the interpreted-vs-batched parity
    #: check grades twice per point (small on every family point).
    parity_component: str = "mux7"

    def __post_init__(self):
        if not self.specs:
            raise ConfigError("sweep needs at least one design point")
        labels = [s.label() for s in self.specs]
        if len(set(labels)) != len(labels):
            raise ConfigError("duplicate design points in sweep")


# ----------------------------------------------------------------------
# Per-point pipeline
# ----------------------------------------------------------------------
def _point_paths(checkpoint_dir: Optional[str], label: str):
    if checkpoint_dir is None:
        return None, None, None
    os.makedirs(checkpoint_dir, exist_ok=True)
    base = os.path.join(checkpoint_dir, label)
    return (f"{base}.metrics.jsonl", f"{base}.grade.jsonl",
            f"{base}.result.json")


def _parity_check(build: CoreBuild, words: List[int],
                  config: SweepConfig) -> bool:
    """Grade one component's faults with both engines; True iff equal."""
    from repro.faults.hierarchical import (
        DspFaultUniverse,
        HierarchicalFaultSimulator,
        fault_unit_id,
    )
    grades = []
    for engine in ("interpreted", "batched"):
        universe = DspFaultUniverse(
            components=[config.parity_component], include_regfile=False,
            engine=engine, build=build,
        )
        sim = HierarchicalFaultSimulator(
            universe=universe, block_size=config.block_size,
            checkpoint_every=config.checkpoint_every,
            propagation_window=config.propagation_window,
        )
        result = sim.run(words,
                         storage_fault_max_cycles=config.
                         storage_fault_max_cycles)
        grades.append(sorted(
            (fault_unit_id(f), c) for f, c in result.first_detect.items()
        ))
    return grades[0] == grades[1]


def sweep_point(spec: CoreSpec, config: SweepConfig,
                checkpoint_dir: Optional[str] = None,
                jobs: Optional[int] = None,
                unit_timeout: Optional[float] = None,
                resume: bool = False,
                max_units: Optional[int] = None) -> Dict[str, Any]:
    """Run the full pipeline on one design point.

    Returns the point record, or an ``{"interrupted": True, ...}`` stub
    when a campaign hit ``max_units`` (resume the sweep to finish it).
    """
    from repro.lint.netlist_rules import lint_netlist
    from repro.lint.findings import Severity
    from repro.runtime.campaigns import (
        HierarchicalCampaign,
        MetricsCampaign,
    )
    from repro.faults.hierarchical import (
        DspFaultUniverse,
        HierarchicalFaultSimulator,
    )
    from repro.selftest.generator import SelfTestGenerator
    from repro.selftest.phase1 import run_phase1
    from repro.selftest.phase2 import run_phase2
    from repro.selftest.vectors import expand_program, run_with_misr

    build = CoreBuild.get(spec)
    label = spec.label()
    metrics_ckpt, grade_ckpt, _ = _point_paths(checkpoint_dir, label)

    with obs.span("sweep.point", key=label) as sp:
        # Structural lint over the swept core (error findings only — the
        # paper core itself carries benign warning-level tie-offs).
        report = lint_netlist(build.netlist, min_severity=Severity.ERROR)
        lint_errors = len(report.findings)

        metrics = MetricsCampaign(
            n_controllability_samples=config.n_controllability_samples,
            n_observability_good=config.n_observability_good,
            seed=config.seed, build=build,
            checkpoint=metrics_ckpt, jobs=jobs, unit_timeout=unit_timeout,
        )
        m_outcome = metrics.run(resume=resume, max_units=max_units)
        if m_outcome.report.interrupted:
            return {"label": label, "interrupted": True, "stage": "metrics"}
        table = m_outcome.result

        phase1 = run_phase1(table)
        phase2 = run_phase2(table, phase1, build=build)
        from repro.selftest.generator import assemble_program
        program = assemble_program(table, phase1, phase2, build=build)
        words = expand_program(program, config.n_iterations)
        golden = run_with_misr(words, build=build)

        universe = DspFaultUniverse(engine=config.engine, build=build)
        sim = HierarchicalFaultSimulator(
            universe=universe, block_size=config.block_size,
            checkpoint_every=config.checkpoint_every,
            propagation_window=config.propagation_window,
        )
        grading = HierarchicalCampaign(
            words, simulator=sim,
            storage_fault_max_cycles=config.storage_fault_max_cycles,
            checkpoint=grade_ckpt, jobs=jobs, unit_timeout=unit_timeout,
        )
        g_outcome = grading.run(resume=resume, max_units=max_units)
        if g_outcome.report.interrupted:
            return {"label": label, "interrupted": True, "stage": "grade"}
        coverage = g_outcome.result.coverage_report(label)

        parity_ok = _parity_check(build, words, config)

        covered = sum(
            1 for column in table.columns
            if any(table.is_covered(row, column) for row in table.rows)
        )
        record = {
            "spec": spec.to_doc(),
            "label": label,
            "area": build.area,
            "n_columns": len(table.columns),
            "n_covered_columns": covered,
            "phase1_instructions": len(phase1.selections),
            "phase2_sequences": len(phase2.sequences),
            "still_uncovered": len(phase2.still_uncovered),
            "program_length": len(program.loop_lines),
            "n_vectors": golden.n_vectors,
            "signature": golden.signature,
            "n_faults": coverage.n_faults,
            "n_detected": coverage.n_detected,
            "fault_coverage": round(
                coverage.n_detected / coverage.n_faults, 4)
            if coverage.n_faults else 0.0,
            "lint_errors": lint_errors,
            "parity_ok": parity_ok,
            "campaign": {
                "metrics": m_outcome.report.counts(),
                "grade": g_outcome.report.counts(),
            },
        }
        sp.set(area=record["area"], coverage=record["fault_coverage"],
               vectors=record["n_vectors"])
        return record


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
def run_sweep(config: SweepConfig,
              checkpoint_dir: Optional[str] = None,
              jobs: Optional[int] = None,
              unit_timeout: Optional[float] = None,
              resume: bool = False,
              max_units: Optional[int] = None,
              progress: Optional[Callable[[str, Dict], None]] = None
              ) -> Dict[str, Any]:
    """Run every design point and assemble the landscape artifact.

    Finished points persist as ``<label>.result.json`` under
    ``checkpoint_dir``; with ``resume`` they are loaded instead of
    re-run, and an interrupted point's campaign checkpoints pick up
    where they left off.
    """
    from repro.harness.experiments import current_scale

    points: List[Dict[str, Any]] = []
    interrupted = False
    with obs.span("sweep.run", points=len(config.specs)):
        for spec in config.specs:
            label = spec.label()
            _, _, result_path = _point_paths(checkpoint_dir, label)
            if resume and result_path and os.path.exists(result_path):
                with open(result_path, encoding="utf-8") as handle:
                    record = json.load(handle)
            else:
                record = sweep_point(
                    spec, config, checkpoint_dir=checkpoint_dir,
                    jobs=jobs, unit_timeout=unit_timeout, resume=resume,
                    max_units=max_units,
                )
                if record.get("interrupted"):
                    interrupted = True
                    if progress is not None:
                        progress(label, record)
                    break
                if result_path:
                    with open(result_path, "w", encoding="utf-8") as handle:
                        json.dump(record, handle, indent=2, sort_keys=True)
                        handle.write("\n")
            points.append(record)
            if progress is not None:
                progress(label, record)

    doc = {
        "schema": SWEEP_SCHEMA,
        "context": {
            "scale": current_scale(),
            "seed": config.seed,
            "engine": config.engine,
            "n_iterations": config.n_iterations,
            "n_controllability_samples": config.n_controllability_samples,
            "n_observability_good": config.n_observability_good,
        },
        "n_points": len(config.specs),
        "interrupted": interrupted,
        "points": points,
    }
    errors = validate_sweep_doc(doc)
    if errors:
        raise ConfigError("sweep artifact failed validation: "
                          + "; ".join(errors))
    return doc


def record_sweep(doc: Dict[str, Any], registry=None) -> None:
    """One EXPERIMENTS registry row summarising the landscape."""
    from repro.harness.experiments import ExperimentResult, REGISTRY
    registry = registry if registry is not None else REGISTRY
    points = doc["points"]
    if not points:
        return
    coverages = [p["fault_coverage"] for p in points]
    areas = [p["area"] for p in points]
    registry.record(ExperimentResult(
        experiment_id="S1",
        description="core-family design-space sweep",
        paper_value="single core (Table 3)",
        measured_value=(
            f"{len(points)} points; coverage "
            f"{min(coverages):.2%}-{max(coverages):.2%}, "
            f"area {min(areas)}-{max(areas)}"
        ),
        details=f"engine={doc['context']['engine']}",
    ))


# ----------------------------------------------------------------------
# Artifact validation (CI schema gate)
# ----------------------------------------------------------------------
def validate_sweep_doc(doc: Dict[str, Any]) -> List[str]:
    """Structural check of a ``repro.sweep/1`` document.

    Returns a list of violations (empty = valid).
    """
    errors: List[str] = []
    if doc.get("schema") != SWEEP_SCHEMA:
        errors.append(f"schema must be {SWEEP_SCHEMA!r}, "
                      f"got {doc.get('schema')!r}")
    if not isinstance(doc.get("context"), dict):
        errors.append("missing context object")
    if not isinstance(doc.get("points"), list):
        errors.append("missing points list")
        return errors
    if not doc.get("interrupted") \
            and len(doc["points"]) != doc.get("n_points"):
        errors.append(
            f"n_points={doc.get('n_points')} but "
            f"{len(doc['points'])} point records in a finished sweep")
    labels = set()
    for i, point in enumerate(doc["points"]):
        where = f"points[{i}]"
        missing = [k for k in _POINT_KEYS if k not in point]
        if missing:
            errors.append(f"{where} missing keys: {', '.join(missing)}")
            continue
        try:
            CoreSpec.from_doc(point["spec"])
        except (ConfigError, TypeError) as exc:
            errors.append(f"{where} spec does not validate: {exc}")
        if point["label"] in labels:
            errors.append(f"{where} duplicate label {point['label']!r}")
        labels.add(point["label"])
        if not 0.0 <= point["fault_coverage"] <= 1.0:
            errors.append(f"{where} fault_coverage out of [0, 1]")
        if point["n_detected"] > point["n_faults"]:
            errors.append(f"{where} detects more faults than exist")
        if point["lint_errors"]:
            errors.append(f"{where} swept core has lint errors")
        if not point["parity_ok"]:
            errors.append(f"{where} interpreted-vs-batched parity failed")
    return errors
