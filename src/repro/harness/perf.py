"""Recorded performance trajectory for the campaign engine.

Every measured campaign run — from the standalone
``benchmarks/bench_campaigns.py`` sweep or from instrumented benchmarks
(E1 self-test grading, E5 ATPG baseline) — is captured as a
:class:`CampaignPerf` sample and written to ``BENCH_campaigns.json``,
so the parallel backend's speedup and the shared-cache hit rates are
*artefacts of the run*, not claims in a commit message.

The JSON document layout::

    {
      "schema": "repro.bench_campaigns/1",
      "context": {"cpu_count": ..., "python": ..., "scale": ...},
      "samples": [
        {"experiment": "E1", "label": "grade jobs=4", "jobs": 4,
         "units": 532, "wall_seconds": 12.3, "units_per_second": 43.2,
         "speedup_vs_serial": 2.7,
         "cache": {"compile_hit_rate": ..., "trace_hit_rate": ...}},
        ...
      ]
    }

``speedup_vs_serial`` is filled in by :meth:`PerfTrajectory.finish`
for any sample whose ``(experiment, jobs=1)`` twin is present; samples
without a serial twin keep ``null`` rather than inventing a baseline.

``cache`` numbers are true campaign-wide aggregates at every ``jobs``
setting: each pool worker ships its per-unit hit/miss counter delta
back through the result stream and the parent folds it into its own
counters (:func:`repro.runtime.cache.merge_counts`), so a pooled
sample's ``compile_hit_rate``/``trace_hit_rate`` cover the workers'
lookups too, not just the parent's pre-fork warmup.  (Before the
observability layer landed, worker counters died with the workers and
pooled samples silently under-counted — the old per-process caveat.)

When a profiling session is armed (:mod:`repro.obs`), samples may also
carry a ``timings`` entry in ``meta``: the campaign's per-phase wall
clock from :attr:`CampaignReport.timings`.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: Default artefact filename (repo root / CI artifact name).
BENCH_FILENAME = "BENCH_campaigns.json"

#: Fault-simulation engine bench artefact (committed to the repo so the
#: batched engine's speedup is a recorded, reviewable number).
FAULTSIM_BENCH_FILENAME = "BENCH_faultsim.json"


@dataclass
class CampaignPerf:
    """One measured campaign execution."""

    experiment: str              # "E1", "E5", ...
    label: str                   # human-readable run description
    jobs: int
    units: int                   # work units actually executed
    wall_seconds: float
    units_per_second: float = 0.0
    speedup_vs_serial: Optional[float] = None
    cache: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.units_per_second and self.wall_seconds > 0:
            self.units_per_second = self.units / self.wall_seconds


class PerfTrajectory:
    """Collects :class:`CampaignPerf` samples and writes the artefact.

    ``schema`` names the document flavour — the campaign sweep and the
    fault-simulation engine bench share the sample shape but are
    separate artefacts (``BENCH_campaigns.json`` vs
    ``BENCH_faultsim.json``).
    """

    def __init__(self, schema: str = "repro.bench_campaigns/1"):
        self.schema = schema
        self.samples: List[CampaignPerf] = []

    def add(self, sample: CampaignPerf) -> CampaignPerf:
        self.samples.append(sample)
        return sample

    def record(self, experiment: str, label: str, jobs: int, units: int,
               wall_seconds: float, cache: Optional[Dict[str, float]] = None,
               **meta) -> CampaignPerf:
        return self.add(CampaignPerf(
            experiment=experiment, label=label, jobs=jobs, units=units,
            wall_seconds=wall_seconds, cache=dict(cache or {}), meta=meta,
        ))

    def serial_baseline(self, experiment: str) -> Optional[CampaignPerf]:
        for sample in self.samples:
            if sample.experiment == experiment and sample.jobs == 1:
                return sample
        return None

    def finish(self) -> None:
        """Fill ``speedup_vs_serial`` wherever a serial twin exists."""
        for sample in self.samples:
            baseline = self.serial_baseline(sample.experiment)
            if (baseline is not None and baseline is not sample
                    and sample.wall_seconds > 0):
                sample.speedup_vs_serial = round(
                    baseline.wall_seconds / sample.wall_seconds, 3
                )

    def document(self) -> Dict[str, object]:
        from repro.harness.experiments import current_scale
        self.finish()
        return {
            "schema": self.schema,
            "context": {
                "cpu_count": os.cpu_count(),
                "python": platform.python_version(),
                "platform": sys.platform,
                "scale": current_scale(),
            },
            "samples": [asdict(sample) for sample in self.samples],
        }

    def write(self, path: str = BENCH_FILENAME) -> str:
        """Write the bench artefact (no-op when nothing measured)."""
        if not self.samples:
            return path
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.document(), handle, indent=2)
            handle.write("\n")
        return path


def cache_delta(before: Dict[str, float],
                after: Dict[str, float]) -> Dict[str, float]:
    """Per-run cache accounting from two ``cache_stats()`` snapshots.

    The module-level counters are cumulative across a session; the
    delta is what one measured run actually hit and missed.
    """
    from repro.runtime.cache import CACHE_KINDS
    delta: Dict[str, float] = {}
    for kind in CACHE_KINDS:
        hits = after[f"{kind}_hits"] - before[f"{kind}_hits"]
        misses = after[f"{kind}_misses"] - before[f"{kind}_misses"]
        total = hits + misses
        delta[f"{kind}_hits"] = hits
        delta[f"{kind}_misses"] = misses
        delta[f"{kind}_hit_rate"] = round(hits / total, 4) if total else 0.0
    return delta


#: Global trajectory shared by the benchmark suite; written once per
#: session by ``benchmarks/conftest.py`` and by the standalone sweep.
TRAJECTORY = PerfTrajectory()
