"""SCOAP / COP static testability analysis.

One :func:`analyze_testability` sweep over a :class:`~repro.logic.netlist.Netlist`
computes, per net:

* **SCOAP controllability** ``CC0``/``CC1`` — the classic additive cost of
  justifying a 0/1 on the net (primary inputs cost 1, every gate level
  adds 1, AND-style gates sum their non-controlling side costs).  A
  forward pass in topological order; flip-flop boundaries add a
  configurable *sequential depth increment* (``seq_cost``) per crossed
  frame, and the whole system is iterated to a fixpoint so feedback
  through registers settles (costs only ever decrease, so the iteration
  is monotone and terminates).
* **SCOAP observability** ``CO`` — the cost of propagating the net's
  value to a primary output: a reverse pass over the cached fanout map,
  adding the side-input justification costs at every gate crossed, again
  iterated across flip-flop boundaries.
* **COP signal probability** ``p1`` and **COP observability** ``obs`` —
  the probability that a uniformly random input vector sets the net to 1
  and the probability that a change on the net reaches an output.  The
  product gives per-fault *detection probabilities*: a stuck-at-0 on a
  net is detected by a random vector with probability ``p1 * obs``.

``UNBOUNDED`` (``math.inf``) marks values no input sequence can justify
or propagate — e.g. the output of a ``CONST0`` can never be driven to 1.
A fault site whose excitation *and* observation are both unbounded is a
*statically untestable candidate* (lint rule NET011).

The analysis is deliberately structural: it never simulates a pattern.
Its predictions are pinned differentially against the batched fault
simulator's empirical first-detect indices (see
``tests/test_analysis_testability.py``) via :func:`rank_correlation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs as obs_mod
from repro.faults.model import Fault
from repro.logic.gates import GateType
from repro.logic.netlist import Gate, Netlist

#: Sentinel cost for "no input sequence can achieve this".
UNBOUNDED: float = math.inf

#: Default SCOAP cost of crossing one flip-flop boundary (one extra
#: time frame).  Deliberately larger than a gate level so sequential
#: depth dominates combinational depth, as in classic SCOAP's
#: sequential variant.
DEFAULT_SEQ_COST: float = 10.0

#: Fixpoint iteration safety caps.  SCOAP costs are monotone
#: non-increasing and COP observabilities monotone non-decreasing, so
#: each sweep past the first can only refine values that feed back
#: through registers; the caps bound pathological register chains.
#: The forward COP pass contracts slowly through hold-loops (an
#: accumulator that mostly keeps its value has a near-1 damping
#: factor), so it gets a fixed sweep budget rather than a tight
#: tolerance — the result is a deterministic approximation, which is
#: all the ranking consumers need.
_MAX_SCOAP_SWEEPS = 64
_MAX_COP_FORWARD_SWEEPS = 48
_MAX_COP_REVERSE_SWEEPS = 64
_COP_TOLERANCE = 1e-6


def _and_style(kind: GateType) -> bool:
    return kind is GateType.AND or kind is GateType.NAND


def _or_style(kind: GateType) -> bool:
    return kind is GateType.OR or kind is GateType.NOR


def _xor_style(kind: GateType) -> bool:
    return kind is GateType.XOR or kind is GateType.XNOR


@dataclass(frozen=True)
class FaultScore:
    """Static testability scores for one stuck-at fault site.

    ``excite_cost`` is the SCOAP cost of driving the net to the opposite
    of its stuck value; ``observe_cost`` is the SCOAP CO of the net;
    ``detection_probability`` is the COP probability that one uniformly
    random vector both excites and observes the fault.
    """

    fault: Fault
    excite_cost: float
    observe_cost: float
    detection_probability: float

    @property
    def scoap_cost(self) -> float:
        """Combined SCOAP difficulty (excite + observe)."""
        return self.excite_cost + self.observe_cost

    @property
    def statically_untestable(self) -> bool:
        """Neither excitation nor observation has a bounded SCOAP cost."""
        return math.isinf(self.excite_cost) or math.isinf(self.observe_cost)


class TestabilityAnalysis:
    """Per-net SCOAP and COP numbers for one netlist.

    Index every array with a net id.  Instances are produced by
    :func:`analyze_testability`; consumers (guided PODEM, lint, CLI)
    read the arrays directly.
    """

    def __init__(self, netlist: Netlist, seq_cost: float,
                 cc0: List[float], cc1: List[float], co: List[float],
                 p1: List[float], obs: List[float],
                 scoap_sweeps: int, cop_sweeps: int):
        self.netlist = netlist
        self.seq_cost = seq_cost
        self.cc0 = cc0
        self.cc1 = cc1
        self.co = co
        self.p1 = p1
        self.obs = obs
        self.scoap_sweeps = scoap_sweeps
        self.cop_sweeps = cop_sweeps

    # -- SCOAP ---------------------------------------------------------
    def cc(self, net: int, value: int) -> float:
        """SCOAP cost of justifying ``value`` on ``net``."""
        return self.cc1[net] if value else self.cc0[net]

    def difficulty(self, net: int) -> float:
        """Worst-case controllability of ``net`` (max of CC0/CC1)."""
        return max(self.cc0[net], self.cc1[net])

    # -- COP -----------------------------------------------------------
    def detection_probability(self, fault: Fault) -> float:
        """COP probability a uniformly random vector detects ``fault``."""
        signal = self.p1[fault.net]
        excite = (1.0 - signal) if fault.stuck_at else signal
        return excite * self.obs[fault.net]

    def score(self, fault: Fault) -> FaultScore:
        return FaultScore(
            fault=fault,
            excite_cost=self.cc(fault.net, fault.stuck_at ^ 1),
            observe_cost=self.co[fault.net],
            detection_probability=self.detection_probability(fault),
        )

    def score_faults(self, faults: Iterable[Fault]) -> List[FaultScore]:
        return [self.score(f) for f in faults]


def analyze_testability(netlist: Netlist,
                        seq_cost: float = DEFAULT_SEQ_COST
                        ) -> TestabilityAnalysis:
    """Run the full SCOAP + COP analysis over ``netlist``."""
    with obs_mod.section("analysis.testability.analyze"):
        order = netlist.levelize()
        cc0, cc1, scoap_fwd = _scoap_controllability(netlist, order, seq_cost)
        co, scoap_rev = _scoap_observability(netlist, order, cc0, cc1,
                                             seq_cost)
        p1, cop_fwd = _cop_probabilities(netlist, order)
        obs, cop_rev = _cop_observability(netlist, order, p1)
    obs_mod.incr("analysis.testability.analyses")
    obs_mod.incr("analysis.testability.nets", netlist.n_nets)
    obs_mod.incr("analysis.testability.scoap_sweeps", scoap_fwd + scoap_rev)
    obs_mod.incr("analysis.testability.cop_sweeps", cop_fwd + cop_rev)
    return TestabilityAnalysis(
        netlist=netlist, seq_cost=seq_cost,
        cc0=cc0, cc1=cc1, co=co, p1=p1, obs=obs,
        scoap_sweeps=scoap_fwd + scoap_rev, cop_sweeps=cop_fwd + cop_rev,
    )


# ----------------------------------------------------------------------
# SCOAP forward pass (controllability)
# ----------------------------------------------------------------------
def _scoap_gate_cc(kind: GateType, ins: Sequence[int],
                   cc0: List[float], cc1: List[float]
                   ) -> Tuple[float, float]:
    """(CC0, CC1) of a gate output from its input costs."""
    if kind is GateType.CONST0:
        return 1.0, UNBOUNDED
    if kind is GateType.CONST1:
        return UNBOUNDED, 1.0
    if kind is GateType.BUF:
        return cc0[ins[0]] + 1.0, cc1[ins[0]] + 1.0
    if kind is GateType.NOT:
        return cc1[ins[0]] + 1.0, cc0[ins[0]] + 1.0
    if _and_style(kind):
        all_one = sum(cc1[i] for i in ins) + 1.0
        any_zero = min(cc0[i] for i in ins) + 1.0
        return (any_zero, all_one) if kind is GateType.AND \
            else (all_one, any_zero)
    if _or_style(kind):
        all_zero = sum(cc0[i] for i in ins) + 1.0
        any_one = min(cc1[i] for i in ins) + 1.0
        return (all_zero, any_one) if kind is GateType.OR \
            else (any_one, all_zero)
    # XOR / XNOR (arity 2 by construction)
    a, b = ins[0], ins[1]
    differ = min(cc1[a] + cc0[b], cc0[a] + cc1[b]) + 1.0
    agree = min(cc0[a] + cc0[b], cc1[a] + cc1[b]) + 1.0
    return (agree, differ) if kind is GateType.XOR else (differ, agree)


def _scoap_controllability(netlist: Netlist, order: Sequence[Gate],
                           seq_cost: float
                           ) -> Tuple[List[float], List[float], int]:
    n = netlist.n_nets
    cc0 = [UNBOUNDED] * n
    cc1 = [UNBOUNDED] * n
    for pi in netlist.inputs:
        cc0[pi] = cc1[pi] = 1.0
    # Reset supplies the init value for one cost unit.
    for dff in netlist.dffs:
        if dff.init is not None:
            if dff.init:
                cc1[dff.q] = 1.0
            else:
                cc0[dff.q] = 1.0
    sweeps = 0
    changed = True
    while changed and sweeps < _MAX_SCOAP_SWEEPS:
        changed = False
        sweeps += 1
        for gate in order:
            out = gate.output
            new0, new1 = _scoap_gate_cc(gate.kind, gate.inputs, cc0, cc1)
            if new0 < cc0[out]:
                cc0[out] = new0
                changed = True
            if new1 < cc1[out]:
                cc1[out] = new1
                changed = True
        for dff in netlist.dffs:
            thru0 = cc0[dff.d] + seq_cost
            thru1 = cc1[dff.d] + seq_cost
            if thru0 < cc0[dff.q]:
                cc0[dff.q] = thru0
                changed = True
            if thru1 < cc1[dff.q]:
                cc1[dff.q] = thru1
                changed = True
    return cc0, cc1, sweeps


# ----------------------------------------------------------------------
# SCOAP reverse pass (observability)
# ----------------------------------------------------------------------
def _scoap_side_cost(kind: GateType, ins: Sequence[int], position: int,
                     cc0: List[float], cc1: List[float]) -> float:
    """Cost of setting every side input of one gate to non-masking."""
    total = 0.0
    for j, other in enumerate(ins):
        if j == position:
            continue
        if _and_style(kind):
            total += cc1[other]
        elif _or_style(kind):
            total += cc0[other]
        elif _xor_style(kind):
            total += min(cc0[other], cc1[other])
        # NOT/BUF have no side inputs; constants have no inputs.
    return total


def _scoap_observability(netlist: Netlist, order: Sequence[Gate],
                         cc0: List[float], cc1: List[float],
                         seq_cost: float) -> Tuple[List[float], int]:
    n = netlist.n_nets
    co = [UNBOUNDED] * n
    for po in netlist.outputs:
        co[po] = 0.0
    reverse = list(order)
    reverse.reverse()
    sweeps = 0
    changed = True
    while changed and sweeps < _MAX_SCOAP_SWEEPS:
        changed = False
        sweeps += 1
        for dff in netlist.dffs:
            thru = co[dff.q] + seq_cost
            if thru < co[dff.d]:
                co[dff.d] = thru
                changed = True
        for gate in reverse:
            out = gate.output
            kind = gate.kind
            ins = gate.inputs
            base = co[out]
            if math.isinf(base):
                continue
            for position, net in enumerate(ins):
                side = _scoap_side_cost(kind, ins, position, cc0, cc1)
                through = base + side + 1.0
                if through < co[net]:
                    co[net] = through
                    changed = True
    return co, sweeps


# ----------------------------------------------------------------------
# COP signal probabilities (forward) and observabilities (reverse)
# ----------------------------------------------------------------------
def _cop_gate_p1(kind: GateType, ins: Sequence[int],
                 p1: List[float]) -> float:
    if kind is GateType.CONST0:
        return 0.0
    if kind is GateType.CONST1:
        return 1.0
    if kind is GateType.BUF:
        return p1[ins[0]]
    if kind is GateType.NOT:
        return 1.0 - p1[ins[0]]
    if _and_style(kind):
        prod = 1.0
        for i in ins:
            prod *= p1[i]
        return prod if kind is GateType.AND else 1.0 - prod
    if _or_style(kind):
        prod = 1.0
        for i in ins:
            prod *= 1.0 - p1[i]
        return 1.0 - prod if kind is GateType.OR else prod
    a, b = p1[ins[0]], p1[ins[1]]
    differ = a * (1.0 - b) + (1.0 - a) * b
    return differ if kind is GateType.XOR else 1.0 - differ


def _cop_probabilities(netlist: Netlist, order: Sequence[Gate]
                       ) -> Tuple[List[float], int]:
    n = netlist.n_nets
    p1 = [0.5] * n
    for dff in netlist.dffs:
        if dff.init is not None:
            p1[dff.q] = float(dff.init)
    sweeps = 0
    delta = 1.0
    while delta > _COP_TOLERANCE and sweeps < _MAX_COP_FORWARD_SWEEPS:
        delta = 0.0
        sweeps += 1
        for gate in order:
            out = gate.output
            new = _cop_gate_p1(gate.kind, gate.inputs, p1)
            delta = max(delta, abs(new - p1[out]))
            p1[out] = new
        for dff in netlist.dffs:
            # Damped frame update: the steady-state probability of a
            # register blends its reset value with what its D input
            # settles to, and damping keeps feedback loops (toggles,
            # counters) from oscillating between sweeps.
            new = 0.5 * (p1[dff.q] + p1[dff.d])
            delta = max(delta, abs(new - p1[dff.q]))
            p1[dff.q] = new
    return p1, sweeps


def _cop_observability(netlist: Netlist, order: Sequence[Gate],
                       p1: List[float]) -> Tuple[List[float], int]:
    n = netlist.n_nets
    obs = [0.0] * n
    for po in netlist.outputs:
        obs[po] = 1.0
    reverse = list(order)
    reverse.reverse()
    sweeps = 0
    changed = True
    while changed and sweeps < _MAX_COP_REVERSE_SWEEPS:
        changed = False
        sweeps += 1
        for dff in netlist.dffs:
            if obs[dff.q] > obs[dff.d]:
                obs[dff.d] = obs[dff.q]
                changed = True
        for gate in reverse:
            out = gate.output
            kind = gate.kind
            ins = gate.inputs
            base = obs[out]
            if base <= 0.0:
                continue
            for position, net in enumerate(ins):
                through = base
                for j, other in enumerate(ins):
                    if j == position:
                        continue
                    if _and_style(kind):
                        through *= p1[other]
                    elif _or_style(kind):
                        through *= 1.0 - p1[other]
                    # XOR-style side inputs never mask a change.
                # Relative improvement test: tiny observabilities are
                # meaningful (they classify random-resistant cones), so
                # an absolute epsilon would freeze them; a relative one
                # still cuts off the geometric feedback tail.
                if through > obs[net] * (1.0 + _COP_TOLERANCE):
                    obs[net] = through
                    changed = True
    return obs, sweeps


# ----------------------------------------------------------------------
# Summaries and statistics helpers
# ----------------------------------------------------------------------
def finite(values: Iterable[float]) -> List[float]:
    """Drop :data:`UNBOUNDED` entries."""
    return [v for v in values if not math.isinf(v)]


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (``pct`` in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(pct / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def _median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def rank_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation with average ranks for ties.

    Hand-rolled (no scipy in the environment); returns 0.0 when either
    side is constant, which reads as "no evidence" for the gates built
    on top of it.
    """
    if len(xs) != len(ys):
        raise ValueError("rank_correlation needs equal-length sequences")
    if len(xs) < 2:
        return 0.0
    rx = _ranks(xs)
    ry = _ranks(ys)
    mean_x = sum(rx) / len(rx)
    mean_y = sum(ry) / len(ry)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rx, ry))
    var_x = sum((a - mean_x) ** 2 for a in rx)
    var_y = sum((b - mean_y) ** 2 for b in ry)
    if var_x <= 0.0 or var_y <= 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=values.__getitem__)
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


@dataclass(frozen=True)
class NetlistTestabilitySummary:
    """Aggregate testability report row for one netlist / component."""

    name: str
    n_nets: int
    n_gates: int
    n_dffs: int
    n_faults: int
    max_cc: float          # largest finite controllability difficulty
    median_cc: float
    max_co: float          # largest finite observability cost
    median_co: float
    median_detect: float   # median COP detection probability
    min_detect: float
    n_below_floor: int     # predicted random-resistant fault sites
    n_unbounded: int       # statically untestable candidates
    floor: float

    def to_json(self) -> Dict[str, object]:
        def _num(v: float) -> object:
            return "unbounded" if math.isinf(v) else round(v, 6)
        return {
            "name": self.name,
            "n_nets": self.n_nets,
            "n_gates": self.n_gates,
            "n_dffs": self.n_dffs,
            "n_faults": self.n_faults,
            "max_cc": _num(self.max_cc),
            "median_cc": _num(self.median_cc),
            "max_co": _num(self.max_co),
            "median_co": _num(self.median_co),
            "median_detect": _num(self.median_detect),
            "min_detect": _num(self.min_detect),
            "n_below_floor": self.n_below_floor,
            "n_unbounded": self.n_unbounded,
            "floor": self.floor,
        }

    def to_row(self) -> List[str]:
        return [
            self.name,
            str(self.n_faults),
            f"{self.max_cc:.0f}",
            f"{self.median_cc:.1f}",
            f"{self.max_co:.0f}",
            f"{self.median_co:.1f}",
            f"{self.median_detect:.4f}",
            f"{self.min_detect:.2e}",
            str(self.n_below_floor),
            str(self.n_unbounded),
        ]


#: Default COP detection-probability floor below which a fault site is
#: predicted random-resistant (matches the lint NET010 floor,
#: ``repro.lint.netlist_rules.DETECT_PROB_FLOOR``).
DEFAULT_DETECT_FLOOR: float = 1e-8


def summarize_testability(name: str, netlist: Netlist,
                          faults: Sequence[Fault],
                          analysis: Optional[TestabilityAnalysis] = None,
                          floor: float = DEFAULT_DETECT_FLOOR
                          ) -> NetlistTestabilitySummary:
    """Aggregate per-fault scores into one report row."""
    if analysis is None:
        analysis = analyze_testability(netlist)
    scores = analysis.score_faults(faults)
    cc = [max(analysis.cc0[n], analysis.cc1[n])
          for n in range(netlist.n_nets)]
    finite_cc = finite(cc)
    finite_co = finite(analysis.co)
    detect = [s.detection_probability for s in scores]
    stats = netlist.stats()
    return NetlistTestabilitySummary(
        name=name,
        n_nets=stats.n_nets,
        n_gates=stats.n_gates,
        n_dffs=stats.n_dffs,
        n_faults=len(scores),
        max_cc=max(finite_cc) if finite_cc else 0.0,
        median_cc=_median(finite_cc),
        max_co=max(finite_co) if finite_co else 0.0,
        median_co=_median(finite_co),
        median_detect=_median(detect),
        min_detect=min(detect) if detect else 0.0,
        n_below_floor=sum(1 for d in detect if d < floor),
        n_unbounded=sum(1 for s in scores if s.statically_untestable),
        floor=floor,
    )
