"""Static structural analyses over gate-level netlists.

The first resident is :mod:`repro.analysis.testability` — SCOAP
controllability/observability and COP detection probabilities — which
feeds the testability-guided PODEM backtrace, the NET008–NET011 lint
rules and the ``repro testability`` CLI report.
"""

from repro.analysis.testability import (
    UNBOUNDED,
    FaultScore,
    NetlistTestabilitySummary,
    TestabilityAnalysis,
    analyze_testability,
    rank_correlation,
    summarize_testability,
)

__all__ = [
    "UNBOUNDED",
    "FaultScore",
    "NetlistTestabilitySummary",
    "TestabilityAnalysis",
    "analyze_testability",
    "rank_correlation",
    "summarize_testability",
]
