"""The self-test program intermediate representation.

A :class:`TestProgram` is a list of annotated template lines.  Each line is
either a concrete :class:`~repro.dsp.isa.Instruction` or a
:class:`~repro.bist.template.RandomLoad` (the trapped "ld rnd" pseudo-op),
carries the metrics-table columns it is responsible for, the phase that
introduced it, and whether it belongs to the test loop or to the one-shot
prologue of Phase 3 ATPG sequences ("these instructions are only executed
once").

``render()`` produces a listing in the style of the paper's Figure 7:
assembled binary, symbolic code, and the covered-columns comment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.bist.lfsr import Lfsr
from repro.bist.template import RandomLoad, TemplateArchitecture, TemplateItem
from repro.dsp.isa import Instruction, disassemble, encode

Column = Tuple[str, int]


@dataclass(frozen=True)
class ProgramLine:
    """One line of the self-test program."""

    item: TemplateItem
    comment: str = ""
    phase: str = ""                      # "wrapper" | "phase1" | "phase2" | "phase3"
    covers: Tuple[Column, ...] = ()
    in_loop: bool = True
    #: The metrics-table accumulator-state variant this line was selected
    #: as ("0" or "R"; "" when the line is not a measured row).  The lint
    #: pass checks the claim against the program's actual dataflow.
    acc_state: str = ""

    def symbolic(self) -> str:
        if isinstance(self.item, RandomLoad):
            return f"ld rnd, R{self.item.dest}"
        return disassemble(self.item)

    def bit_code(self) -> str:
        if isinstance(self.item, RandomLoad):
            word = self.item.encode_template()
        else:
            word = encode(self.item)
        return format(word, "017b")


@dataclass
class TestProgram:
    """An ordered self-test program with loop and one-shot sections."""

    __test__ = False  # not a pytest test class despite the name

    lines: List[ProgramLine] = field(default_factory=list)

    def add(self, item: TemplateItem, comment: str = "", phase: str = "",
            covers: Sequence[Column] = (), in_loop: bool = True,
            acc_state: str = "") -> ProgramLine:
        line = ProgramLine(item=item, comment=comment, phase=phase,
                           covers=tuple(covers), in_loop=in_loop,
                           acc_state=acc_state)
        self.lines.append(line)
        return line

    def __len__(self) -> int:
        return len(self.lines)

    @property
    def loop_lines(self) -> List[ProgramLine]:
        return [l for l in self.lines if l.in_loop]

    @property
    def one_shot_lines(self) -> List[ProgramLine]:
        return [l for l in self.lines if not l.in_loop]

    def loop_items(self) -> List[TemplateItem]:
        return [l.item for l in self.loop_lines]

    def one_shot_items(self) -> List[TemplateItem]:
        return [l.item for l in self.one_shot_lines]

    def covered_columns(self) -> List[Column]:
        seen = []
        for line in self.lines:
            for column in line.covers:
                if column not in seen:
                    seen.append(column)
        return seen

    # ------------------------------------------------------------------
    def template_architecture(
        self,
        lfsr1: Optional[Lfsr] = None,
        lfsr2: Optional[Lfsr] = None,
        mask_registers: bool = True,
    ) -> TemplateArchitecture:
        """The runtime architecture executing the program's loop section."""
        return TemplateArchitecture(
            self.loop_items(), lfsr1=lfsr1, lfsr2=lfsr2,
            mask_registers=mask_registers,
        )

    def n_vectors(self, n_iterations: int) -> int:
        """Loop vectors plus the one-shot prologue."""
        return len(self.one_shot_lines) + n_iterations * len(self.loop_lines)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Figure 7-style listing: bit code, symbolic code, comments."""
        out = []
        if self.one_shot_lines:
            out.append("; --- one-shot section (executed once, Phase 3) ---")
            out.extend(self._render_lines(self.one_shot_lines))
            out.append("; --- test loop ---")
        out.extend(self._render_lines(self.loop_lines))
        return "\n".join(out)

    @staticmethod
    def _render_lines(lines: Sequence[ProgramLine]) -> List[str]:
        rendered = []
        for line in lines:
            comment_bits = []
            if line.covers:
                comment_bits.append(",".join(
                    f"{c[0]}:{c[1]}" for c in line.covers
                ))
            if line.comment:
                comment_bits.append(line.comment)
            comment = (" // " + " ".join(comment_bits)) if comment_bits else ""
            rendered.append(
                f"{line.bit_code()}  {line.symbolic():<24}{comment}"
            )
        return rendered
