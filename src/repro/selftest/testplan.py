"""Test planning: iterations, coverage targets and tester time.

Generalises the paper's back-of-envelope ("34 instructions × 6000
iterations = 204,000 vectors... total test time would be 0.408 ms"): given
a measured coverage curve, pick the loop count for a coverage target and
report the time cost at a given core clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faults.coverage import coverage_curve
from repro.runtime.errors import ConfigError


@dataclass(frozen=True)
class TestPlan:
    """A concrete test schedule for one program."""

    __test__ = False  # not a pytest test class despite the name

    program_length: int
    n_iterations: int
    n_one_shot: int = 0
    clock_hz: float = 500e6

    @property
    def n_vectors(self) -> int:
        return self.n_one_shot + self.program_length * self.n_iterations

    @property
    def test_time_seconds(self) -> float:
        return self.n_vectors / self.clock_hz

    def describe(self) -> str:
        return (f"{self.program_length} instructions x "
                f"{self.n_iterations} iterations"
                + (f" + {self.n_one_shot} one-shot" if self.n_one_shot
                   else "")
                + f" = {self.n_vectors} vectors, "
                  f"{self.test_time_seconds * 1e3:.3f} ms at "
                  f"{self.clock_hz / 1e6:.0f} MHz")


def paper_plan() -> TestPlan:
    """The paper's §3.3 numbers: 34 × 6000 at 500 MHz = 0.408 ms."""
    return TestPlan(program_length=34, n_iterations=6000)


def iterations_for_target(
    first_detect,
    n_vectors: int,
    program_length: int,
    target_coverage: float,
) -> Optional[int]:
    """Smallest loop count reaching ``target_coverage`` on the measured run.

    ``first_detect`` and ``n_vectors`` come from a fault-simulation run of
    the same program; returns ``None`` when the run never reaches the
    target (loop longer or move to Phase 3).
    """
    if not 0 < target_coverage <= 1:
        raise ConfigError("target_coverage must be in (0, 1]")
    curve = coverage_curve(first_detect, n_vectors,
                           step=max(1, program_length))
    for vectors, coverage in curve:
        if coverage >= target_coverage:
            return max(1, -(-vectors // program_length))  # ceil division
    return None


def plan_for_target(
    first_detect,
    n_vectors: int,
    program_length: int,
    target_coverage: float,
    clock_hz: float = 500e6,
    n_one_shot: int = 0,
) -> Optional[TestPlan]:
    """A :class:`TestPlan` meeting the coverage target, or ``None``."""
    iterations = iterations_for_target(
        first_detect, n_vectors, program_length, target_coverage
    )
    if iterations is None:
        return None
    return TestPlan(program_length=program_length,
                    n_iterations=iterations, n_one_shot=n_one_shot,
                    clock_hz=clock_hz)
