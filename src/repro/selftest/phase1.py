"""Phase 1 — global coverage by greedy set cover (paper §2.4, §3.3).

"We begin picking the instruction that covers the most columns in the
metrics table, then we delete those columns.  We continue with the next
instruction until we delete all columns in the table."  ``Load`` and
``Out`` are wrappers: any columns they cover are removed up front.

The result reproduces the paper's Table 3: the chosen instructions, the
columns each one is responsible for, and the columns left for Phase 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.metrics.controllability import InstructionVariant
from repro.metrics.table import MetricsTable

Column = Tuple[str, int]

#: Row labels treated as wrappers (always part of the program).
DEFAULT_WRAPPER_LABELS = ("load", "loadR", "Out", "OutR")


@dataclass
class Phase1Result:
    """Outcome of the greedy covering."""

    wrapper_rows: List[InstructionVariant]
    wrapper_covered: List[Column]
    selections: List[Tuple[InstructionVariant, List[Column]]]
    uncovered: List[Column]

    @property
    def chosen(self) -> List[InstructionVariant]:
        return [variant for variant, _ in self.selections]

    def covered_by_selection(self) -> List[Column]:
        covered: List[Column] = []
        for _, columns in self.selections:
            covered.extend(columns)
        return covered

    def summary(self) -> str:
        lines = [
            "Phase 1 (greedy cover):",
            f"  wrappers cover {len(self.wrapper_covered)} columns",
        ]
        for variant, columns in self.selections:
            pretty = ", ".join(f"{c[0]}:{c[1]}" for c in columns)
            lines.append(f"  {variant.label:<14} covers {pretty}")
        lines.append(f"  left for Phase 2: "
                     + (", ".join(f"{c[0]}:{c[1]}" for c in self.uncovered)
                        or "none"))
        return "\n".join(lines)


def run_phase1(
    table: MetricsTable,
    wrapper_labels: Sequence[str] = DEFAULT_WRAPPER_LABELS,
) -> Phase1Result:
    """Greedy set cover over ``table``.

    Deterministic: ties are broken by row order in the table.
    """
    by_label = {row.label: row for row in table.rows}
    wrappers = [by_label[l] for l in wrapper_labels if l in by_label]

    remaining: List[Column] = list(table.columns)
    wrapper_covered: List[Column] = []
    for wrapper in wrappers:
        for column in table.covered_columns(wrapper):
            if column in remaining:
                remaining.remove(column)
                wrapper_covered.append(column)

    candidates = [row for row in table.rows if row not in wrappers]
    selections: List[Tuple[InstructionVariant, List[Column]]] = []
    while remaining:
        best: Optional[InstructionVariant] = None
        best_columns: List[Column] = []
        for row in candidates:
            columns = [c for c in table.covered_columns(row)
                       if c in remaining]
            if len(columns) > len(best_columns):
                best = row
                best_columns = columns
        if best is None or not best_columns:
            break
        selections.append((best, best_columns))
        candidates.remove(best)
        for column in best_columns:
            remaining.remove(column)

    return Phase1Result(
        wrapper_rows=wrappers,
        wrapper_covered=wrapper_covered,
        selections=selections,
        uncovered=remaining,
    )
