"""End-to-end self-test generation for the simple Fig. 1 datapath.

The paper introduces the method on the toy datapath before the industrial
core; this module completes that story end to end — and, because the toy
core is small enough for *exact* flat gate-level sequential fault
simulation, it doubles as a full-precision check of the methodology:

1. build Table 1 (:func:`repro.metrics.simple_metrics.build_table1`);
2. greedily cover its columns (the paper's Phase 1: "Mac R covers three
   columns.  This instruction is chosen");
3. schedule the chosen rows into a loop (an accumulator-randomising MAC is
   prepended when a row assumes the 'R' state);
4. expand the loop with pseudorandom operands and grade it against every
   collapsed stuck-at fault of the flat netlist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsp.simple import (
    SIMPLE_COLUMN_LABELS,
    SIMPLE_COLUMNS,
    SimpleOp,
    make_simple_core,
)
from repro.faults.seqsim import SeqFaultResult, SeqFaultSimulator
from repro.metrics.simple_metrics import SimpleVariant, table1_variants
from repro.metrics.table import MetricsCell


@dataclass
class SimpleSelfTest:
    """The generated loop for the simple datapath."""

    chosen: List[Tuple[SimpleVariant, List[str]]]
    schedule: List[SimpleOp] = field(default_factory=list)
    uncovered: List[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = ["simple-core Phase 1:"]
        for variant, columns in self.chosen:
            lines.append(f"  {variant.label:<8} covers "
                         + ", ".join(columns))
        lines.append("  loop: " + " ".join(op.name for op in self.schedule))
        if self.uncovered:
            lines.append("  uncovered: " + ", ".join(self.uncovered))
        return "\n".join(lines)


def generate_simple_selftest(
    table1: Dict[str, Dict[str, MetricsCell]],
) -> SimpleSelfTest:
    """Greedy covering of Table 1 and loop scheduling."""
    remaining = [SIMPLE_COLUMN_LABELS[c] for c in SIMPLE_COLUMNS]
    variants = table1_variants()
    chosen: List[Tuple[SimpleVariant, List[str]]] = []
    while remaining:
        best: Optional[SimpleVariant] = None
        best_columns: List[str] = []
        for variant in variants:
            row = table1.get(variant.label, {})
            columns = [c for c in remaining
                       if c in row and row[c].covered()]
            if len(columns) > len(best_columns):
                best, best_columns = variant, columns
        if best is None:
            break
        chosen.append((best, best_columns))
        variants.remove(best)
        for column in best_columns:
            remaining.remove(column)

    schedule: List[SimpleOp] = []
    acc_random = False
    for variant, _ in chosen:
        if variant.acc_state == "R" and not acc_random:
            schedule.append(SimpleOp.MAC)  # randomise the accumulator
            acc_random = True
        schedule.append(variant.op)
        if variant.op is SimpleOp.CLR:
            acc_random = False
    return SimpleSelfTest(chosen=chosen, schedule=schedule,
                          uncovered=remaining)


def simple_selftest_stimulus(
    selftest: SimpleSelfTest, n_iterations: int, seed: int = 77,
    rng: Optional[random.Random] = None,
) -> Dict[str, List[int]]:
    """Expand the loop into per-cycle bus stimulus for the flat netlist.

    Operands come from a seeded pseudorandom stream (the LFSR1
    analogue); pass ``rng`` to share an injected stream instead.
    """
    rng = rng if rng is not None else random.Random(seed)
    ops: List[int] = []
    in1: List[int] = []
    in2: List[int] = []
    for _ in range(n_iterations):
        for op in selftest.schedule:
            ops.append(int(op))
            in1.append(rng.randrange(256))
            in2.append(rng.randrange(256))
    return {"op": ops, "in1": in1, "in2": in2}


def grade_simple_selftest(
    stimulus: Dict[str, List[int]],
) -> Tuple[SeqFaultResult, int]:
    """Exact flat gate-level grading; returns (result, n_faults)."""
    netlist = make_simple_core()
    simulator = SeqFaultSimulator(netlist)
    result = simulator.run_sequence(stimulus)
    return result, len(simulator.fault_list.faults)
