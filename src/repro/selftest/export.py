"""Test-set export: vector files and a self-checking testbench.

The paper's Perl script emitted (a) the test patterns fed to the fault
simulator and (b) a VHDL testbench "used to simulate the execution of our
test program on the core... for verification purposes to ensure that the
model used for fault simulation behaves correctly".  The equivalents here
write a plain-text vector file (one 17-bit instruction word per line with
the expected port response) and a structural-Verilog testbench skeleton
driving the exported gate-level core.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.dsp.core import DspCore
from repro.dsp.isa import Instruction, Opcode, encode
from repro.logic.export import to_verilog
from repro.logic.netlist import Netlist


def expected_responses(words: Sequence[int]) -> List[tuple]:
    """(out_valid, out_value) per cycle, including the 4-NOP drain."""
    core = DspCore()
    nop = encode(Instruction(Opcode.NOP))
    responses = []
    for word in list(words) + [nop] * 4:
        result = core.step(word)
        responses.append((int(result.out_valid), result.out_value))
    return responses


def write_vector_file(path: Union[str, Path], words: Sequence[int]) -> int:
    """Write ``<instr17> <out_valid> <out8>`` lines; returns line count.

    This is the fault-simulator input format: stimulus plus the expected
    fault-free response for every cycle.
    """
    responses = expected_responses(words)
    nop = encode(Instruction(Opcode.NOP))
    padded = list(words) + [nop] * 4
    lines = [
        f"{word:017b} {valid} {value:08b}"
        for word, (valid, value) in zip(padded, responses)
    ]
    Path(path).write_text("\n".join(lines) + "\n")
    return len(lines)


def write_testbench(path: Union[str, Path], netlist: Netlist,
                    vector_file: str = "vectors.txt",
                    module_name: Optional[str] = None) -> None:
    """Write the exported core plus a self-checking Verilog testbench."""
    module = module_name or netlist.name
    core_src = to_verilog(netlist, module)
    n_in = len(netlist.inputs)
    out_nets = netlist.buses["out"]
    tb = f"""
// Self-checking testbench for {module}: drives the vector file produced
// by repro.selftest.export.write_vector_file and compares the output
// port against the recorded fault-free responses.
module {module}_tb;
  reg clk = 0, rst = 1;
  reg [{n_in - 1}:0] instr;
  wire [7:0] out_bus;
  wire out_valid;
  integer file, status, errors;
  reg [16:0] v_instr;
  reg v_valid;
  reg [7:0] v_out;

  {module} dut (.clk(clk), .rst(rst)
"""
    for i, net in enumerate(netlist.inputs):
        tb += f"    , .{_port(netlist, net)}(instr[{i}])\n"
    for i, net in enumerate(out_nets):
        tb += f"    , .{_port(netlist, net)}(out_bus[{i}])\n"
    tb += f"    , .{_port(netlist, netlist.buses['out_valid'][0])}(out_valid)\n"
    tb += f"""  );

  always #5 clk = ~clk;

  initial begin
    errors = 0;
    file = $fopen("{vector_file}", "r");
    @(negedge clk) rst = 0;
    while (!$feof(file)) begin
      status = $fscanf(file, "%b %b %b\\n", v_instr, v_valid, v_out);
      instr = v_instr;
      @(negedge clk);
      if (out_valid !== v_valid || (v_valid && out_bus !== v_out)) begin
        errors = errors + 1;
        $display("mismatch: got %b/%b want %b/%b",
                 out_valid, out_bus, v_valid, v_out);
      end
    end
    if (errors == 0) $display("PASS");
    else $display("FAIL: %0d mismatches", errors);
    $finish;
  end
endmodule
"""
    Path(path).write_text(core_src + tb)


def _port(netlist: Netlist, net: int) -> str:
    from repro.logic.export import _sanitise
    return _sanitise(netlist.net_names[net]).strip("\\ ")
