"""Static compaction of self-test programs.

The paper optimises test *time* by boosting and by one-shots; the dual
optimisation is shrinking the loop itself: lines whose removal costs no
coverage make every iteration cheaper.  This module applies classic
fault-simulation-driven static compaction to the SBST loop:

1. grade the program and attribute each fault's *first detection* to the
   loop line in flight at that cycle (instruction fetched at cycle *t* is
   line ``t mod loop_length``, pipeline offset included);
2. the least-credited loop lines become removal candidates;
3. candidates are tried greedily and every removal is *verified* by
   re-grading: a removal that loses any detection is rolled back.

The verified re-grading makes this safe but slow; it is meant for the
final production program, not for iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.faults.hierarchical import (
    DspFaultUniverse,
    HierarchicalFaultSimulator,
)
from repro.selftest.program import ProgramLine, TestProgram
from repro.selftest.vectors import expand_program
from repro.runtime.errors import ConfigError

#: Pipeline depth: a detection at cycle t is credited to the instruction
#: fetched up to PIPELINE_WINDOW cycles earlier.
PIPELINE_WINDOW = 4


@dataclass
class CompactionResult:
    """Outcome of one compaction run."""

    original: TestProgram
    compacted: TestProgram
    removed: List[ProgramLine] = field(default_factory=list)
    original_coverage: float = 0.0
    compacted_coverage: float = 0.0

    @property
    def lines_saved(self) -> int:
        return len(self.original.loop_lines) - len(self.compacted.loop_lines)

    def summary(self) -> str:
        return (f"compaction: {len(self.original.loop_lines)} -> "
                f"{len(self.compacted.loop_lines)} loop lines "
                f"({self.lines_saved} removed), coverage "
                f"{self.original_coverage:.2%} -> "
                f"{self.compacted_coverage:.2%}")


def attribute_detections(first_detect: Dict, loop_length: int,
                         n_one_shot: int = 0) -> Dict[int, int]:
    """Count first detections per loop-line index.

    A detection at cycle *t* is credited to every line in flight during
    the pipeline window ending at *t* (attribution is deliberately
    generous: a line is a removal candidate only if it is credited with
    *nothing at all*).
    """
    credit: Dict[int, int] = {}
    for cycle in first_detect.values():
        if cycle is None or cycle < n_one_shot:
            continue
        loop_cycle = cycle - n_one_shot
        for offset in range(PIPELINE_WINDOW + 1):
            line = (loop_cycle - offset) % loop_length
            if loop_cycle - offset >= 0:
                credit[line] = credit.get(line, 0) + 1
    return credit


def _without_lines(program: TestProgram,
                   drop: Set[int]) -> TestProgram:
    """A copy of ``program`` without the loop lines at indices ``drop``."""
    compacted = TestProgram()
    loop_index = 0
    for line in program.lines:
        if line.in_loop:
            if loop_index in drop:
                loop_index += 1
                continue
            loop_index += 1
        compacted.lines.append(line)
    return compacted


def compact_program(
    program: TestProgram,
    n_iterations: int,
    universe_factory=DspFaultUniverse,
    max_removals: int = 6,
) -> CompactionResult:
    """Remove verified-useless loop lines from ``program``.

    ``n_iterations`` is the grading budget used both for attribution and
    for the verification re-grades.
    """
    loop_length = len(program.loop_lines)
    if loop_length == 0:
        raise ConfigError("program has no loop lines")
    words = expand_program(program, n_iterations)
    baseline = HierarchicalFaultSimulator(
        universe=universe_factory()
    ).run(words)
    base_report = baseline.coverage_report()
    credit = attribute_detections(
        baseline.first_detect, loop_length,
        n_one_shot=len(program.one_shot_lines),
    )

    # Least-credited lines first: for loops shorter than the pipeline
    # window every line collects some credit, so ordering (not a zero
    # test) chooses the candidates and the verification re-grade decides.
    candidates = sorted(range(loop_length),
                        key=lambda index: credit.get(index, 0))
    removed: List[ProgramLine] = []
    dropped: Set[int] = set()
    current_detected = base_report.n_detected
    for index in candidates[:max_removals]:
        trial_drop = dropped | {index}
        trial = _without_lines(program, trial_drop)
        if not trial.loop_lines:
            continue
        trial_words = expand_program(trial, n_iterations)
        result = HierarchicalFaultSimulator(
            universe=universe_factory()
        ).run(trial_words)
        if result.coverage_report().n_detected >= current_detected:
            dropped = trial_drop
            removed.append(program.loop_lines[index])
            current_detected = result.coverage_report().n_detected
    compacted = _without_lines(program, dropped)

    final_words = expand_program(compacted, n_iterations)
    final = HierarchicalFaultSimulator(
        universe=universe_factory()
    ).run(final_words)
    return CompactionResult(
        original=program,
        compacted=compacted,
        removed=removed,
        original_coverage=base_report.fault_coverage,
        compacted_coverage=final.coverage_report().fault_coverage,
    )
