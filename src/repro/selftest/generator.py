"""End-to-end self-test generation (the paper's Fig. 3 flow).

``SelfTestGenerator`` builds (or accepts) the metrics table, runs Phase 1
and Phase 2, and assembles the final looped test program in the shape of
the paper's Fig. 7:

* random-operand loads (``ld rnd``) feed the instruction under test;
* accumulator randomisation sequences precede 'R'-state rows
  ("randomize accb" in Fig. 7);
* every selected instruction is followed by its ``out`` wrapper;
* Phase 2 sequences are appended with their observation tails;
* an ``out R0`` at the end observes a raw random register ("Output random
  value").

If coverage cannot be reached, thresholds are lowered a limited number of
times (the loop-back edge in Fig. 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.bist.template import RandomLoad
from repro.dsp.isa import Instruction, Opcode, control_word
from repro.metrics.controllability import InstructionVariant
from repro.metrics.observability import ObservabilityEngine
from repro.metrics.table import MetricsTable, build_metrics_table
from repro.selftest.phase1 import Phase1Result, run_phase1
from repro.selftest.phase2 import Phase2Result, run_phase2
from repro.selftest.program import Column, TestProgram

#: Registers reserved as random operands (reloaded every iteration).
RAND_REGS = (0, 1)
#: Destination registers cycled through by generated instructions
#: (paper core).
DEST_REGS = tuple(range(2, 12))


def dest_registers(build=None) -> Tuple[int, ...]:
    """Destination registers for a family point.

    The paper core cycles through r2–r11; smaller register files shrink
    the pool (always leaving the random-operand registers r0/r1 and the
    shift-amount register r3 out of heavy rotation where possible) so no
    destination aliases a reserved register through address masking.
    """
    if build is None:
        return DEST_REGS
    n = build.spec.n_registers
    return tuple(range(2, max(4, n - 4)))


@dataclass
class GeneratedSelfTest:
    """Everything the generation flow produced."""

    table: MetricsTable
    phase1: Phase1Result
    phase2: Phase2Result
    program: TestProgram
    thresholds_used: Tuple[float, float]

    def summary(self) -> str:
        return "\n\n".join([
            self.phase1.summary(),
            self.phase2.summary(),
            f"program: {len(self.program.loop_lines)} loop instructions, "
            f"{len(self.program.one_shot_lines)} one-shot",
        ])


class SelfTestGenerator:
    """Runs the template-generation flow of the paper's Fig. 3."""

    def __init__(
        self,
        table: Optional[MetricsTable] = None,
        o_engine: Optional[ObservabilityEngine] = None,
        max_threshold_reductions: int = 2,
        threshold_step: float = 0.10,
        build=None,
    ):
        self.table = table
        self.o_engine = o_engine
        self.max_threshold_reductions = max_threshold_reductions
        self.threshold_step = threshold_step
        self.build = build

    # ------------------------------------------------------------------
    def generate(self, **table_kwargs) -> GeneratedSelfTest:
        """Run metrics → Phase 1 → Phase 2 → program assembly.

        Each stage runs under an observability span/section (inert when
        no session is armed); Phase 1/2 emit ``selftest.coverage``
        points — the per-phase coverage-vs-time series ``repro profile``
        and trace exports report.
        """
        with obs.span("selftest.generate"), \
                obs.section("selftest.generate"):
            return self._generate(**table_kwargs)

    def _generate(self, **table_kwargs) -> GeneratedSelfTest:
        if self.table is not None:
            table = self.table
        else:
            with obs.span("selftest.metrics_table"), \
                    obs.section("selftest.metrics_table"):
                table = build_metrics_table(build=self.build,
                                            **table_kwargs)

        n_columns = len(table.columns)
        c_theta, o_theta = table.c_theta, table.o_theta
        for round_ in range(self.max_threshold_reductions + 1):
            view = table.with_thresholds(c_theta, o_theta)
            with obs.span("selftest.phase1", key=f"round{round_}") as sp, \
                    obs.section("selftest.phase1"):
                phase1 = run_phase1(view)
                covered1 = n_columns - len(phase1.uncovered)
                sp.set(round=round_, covered=covered1,
                       uncovered=len(phase1.uncovered))
            obs.point("selftest.coverage", phase="phase1", round=round_,
                      covered=covered1, columns=n_columns)
            with obs.span("selftest.phase2", key=f"round{round_}") as sp, \
                    obs.section("selftest.phase2"):
                phase2 = run_phase2(view, phase1, o_engine=self.o_engine,
                                    build=self.build)
                covered2 = n_columns - len(phase2.still_uncovered)
                sp.set(round=round_, covered=covered2,
                       uncovered=len(phase2.still_uncovered))
            obs.point("selftest.coverage", phase="phase2", round=round_,
                      covered=covered2, columns=n_columns)
            if not phase2.still_uncovered:
                break
            # "If sufficient coverage is not reached, the thresholds can be
            # lowered a limited amount of times."
            c_theta -= self.threshold_step
            o_theta -= self.threshold_step
        with obs.span("selftest.assemble"), \
                obs.section("selftest.assemble"):
            program = assemble_program(view, phase1, phase2,
                                       build=self.build)
        return GeneratedSelfTest(
            table=view, phase1=phase1, phase2=phase2, program=program,
            thresholds_used=(c_theta, o_theta),
        )


# ----------------------------------------------------------------------
# Program assembly
# ----------------------------------------------------------------------
def _needs_random_acc(variant: InstructionVariant,
                      build=None) -> Optional[str]:
    """Which accumulator ('A'/'B') must be randomised before this row."""
    if variant.acc_state != "R":
        return None
    cw_fn = control_word if build is None else build.control_word
    return "B" if cw_fn(variant.opcode).accsel else "A"


def _concrete_instruction(variant: InstructionVariant, dest: int):
    """The variant with the generator's operand/destination registers.

    ``load`` rows become ``ld rnd`` template loads (LFSR1 data).
    """
    base = variant.instruction()
    if base.opcode is Opcode.LDI:
        return RandomLoad(dest)
    if base.opcode in (Opcode.OUTA, Opcode.OUTB, Opcode.NOP):
        return base
    if base.opcode is Opcode.OUT:
        return Instruction(Opcode.OUT, regb=RAND_REGS[1])
    if base.opcode is Opcode.MOV:
        return Instruction(Opcode.MOV, regb=RAND_REGS[0], dest=dest)
    return Instruction(base.opcode, rega=RAND_REGS[0], regb=RAND_REGS[1],
                       dest=dest)


def assemble_program(table: MetricsTable, phase1: Phase1Result,
                     phase2: Phase2Result, build=None) -> TestProgram:
    """Assemble the Fig. 7-style looped program from the phase results."""
    program = TestProgram()
    cw_fn = control_word if build is None else build.control_word
    dest_regs = dest_registers(build)
    dests = itertools.cycle(dest_regs)

    # Operand randomisation (the Load wrapper).
    for reg in RAND_REGS:
        program.add(RandomLoad(reg), phase="wrapper",
                    comment="load pseudorandom operand")

    acc_random = {"A": False, "B": False}

    def emit_randomise(acc: str) -> None:
        opcode = Opcode.MPYA if acc == "A" else Opcode.MPYB
        program.add(
            Instruction(opcode, rega=RAND_REGS[0], regb=RAND_REGS[1],
                        dest=next(dests)),
            phase="wrapper", comment=f"randomize acc{acc.lower()}",
        )
        acc_random[acc] = True

    def emit_selected(variant: InstructionVariant, covers: Sequence[Column],
                      phase: str,
                      observation: Sequence[Instruction] = ()) -> None:
        acc = _needs_random_acc(variant, build)
        if acc is not None and not acc_random[acc]:
            emit_randomise(acc)
        # MPY-class instructions overwrite the accumulator: after one runs,
        # the accumulator holds a product, which still counts as random.
        instr = _concrete_instruction(variant, next(dests))
        program.add(instr, phase=phase, covers=covers,
                    comment=variant.label, acc_state=variant.acc_state)
        if isinstance(instr, RandomLoad):
            ctrl = cw_fn(Opcode.LDI)
        else:
            ctrl = cw_fn(instr.opcode)
        if ctrl.reg_we:
            program.add(Instruction(Opcode.OUT, regb=instr.dest),
                        phase="wrapper", comment="observe result")
        for tail_instr in observation:
            program.add(tail_instr, phase=phase,
                        comment="Phase2 observation" if phase == "phase2"
                        else "")
        if ctrl.acc_we:
            acc = "B" if ctrl.accsel else "A"
            # The write only leaves the accumulator random when the
            # product path is open or it re-reads an already-random
            # accumulator; a shift of a still-zero accumulator stays zero.
            if ctrl.muxa_zero == 0 or (ctrl.muxb_shift == 1
                                       and acc_random[acc]):
                acc_random[acc] = True

    for variant, covers in phase1.selections:
        emit_selected(variant, covers, "phase1")
    for sequence in phase2.sequences:
        emit_selected(sequence.variant, [sequence.column], "phase2",
                      observation=sequence.observation)

    # Decoder sweep: one use of every opcode family the selections did not
    # pick, so every decoder minterm is exercised by the loop (the paper's
    # 34-instruction program touches most of the instruction set).
    used = {
        line.item.opcode for line in program.lines
        if isinstance(line.item, Instruction)
    }
    for opcode in Opcode:
        if opcode in used or opcode is Opcode.NOP:
            continue
        if cw_fn(opcode).acc_we or opcode in (
                Opcode.MOV, Opcode.OUT, Opcode.OUTA, Opcode.OUTB):
            variant = InstructionVariant(opcode, "R")
            acc = _needs_random_acc(variant, build)
            if acc is not None and not acc_random[acc]:
                emit_randomise(acc)
            instr = _concrete_instruction(variant, next(dests))
            program.add(instr, phase="wrapper", comment="decoder sweep",
                        acc_state=variant.acc_state)
            if cw_fn(opcode).reg_we:
                program.add(Instruction(Opcode.OUT, regb=instr.dest),
                            phase="wrapper", comment="observe result")

    # Observe the raw random registers ("Output random value" in Fig. 7)
    # and re-read the first destinations from a distance: the immediate
    # `out` wrappers above read through the forwarding bypass, so these
    # delayed reads are what actually exercises the register-file cells.
    program.add(Instruction(Opcode.OUT, regb=RAND_REGS[0]),
                phase="wrapper", comment="Output random value")
    program.add(Instruction(Opcode.OUT, regb=RAND_REGS[1]),
                phase="wrapper", comment="Output random value")
    for reg in dest_regs[:2]:
        program.add(Instruction(Opcode.OUT, regb=reg), phase="wrapper",
                    comment="delayed read (register file path)")
    program.add(Instruction(Opcode.OUTA), phase="wrapper",
                comment="observe AccA")
    program.add(Instruction(Opcode.OUTB), phase="wrapper",
                comment="observe AccB")
    return program
