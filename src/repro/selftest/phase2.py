"""Phase 2 — specific coverage of the leftovers (paper §2.4, §3.3).

Two mechanisms, straight from the paper:

a. *Sequences.*  "First we use instructions that provide sufficient
   randomness for the component and then we try to propagate the
   component's results to an observable output."  For each uncovered
   column we look for a row whose controllability clears the threshold and
   then verify candidate observation sequences (e.g. ``outa`` to expose
   AccA — the paper's "Phase2 Observe ACCA") with the observability
   engine.

b. *Unreachable modes.*  "Eliminate columns whose control bits are not set
   by any instruction" — e.g. the shifter's "10"/"11" columns, which no
   instruction of the ISA selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsp.isa import Instruction, Opcode
from repro.metrics.controllability import InstructionVariant
from repro.metrics.observability import ObservabilityEngine
from repro.metrics.table import MetricsTable
from repro.selftest.phase1 import Phase1Result

Column = Tuple[str, int]


@dataclass(frozen=True)
class CoverageSequence:
    """A Phase 2 solution for one column: instruction + observation tail."""

    column: Column
    variant: InstructionVariant
    observation: Tuple[Instruction, ...]
    observability: float

    def describe(self) -> str:
        tail = "; ".join(
            i.opcode.name.lower() for i in self.observation
        ) or "(wrapper out)"
        return (f"{self.column[0]}:{self.column[1]} via {self.variant.label}"
                f" + [{tail}] (O={self.observability:.2f})")


@dataclass
class Phase2Result:
    """Outcome of Phase 2."""

    discarded_unreachable: List[Column]
    sequences: List[CoverageSequence]
    still_uncovered: List[Column]

    def summary(self) -> str:
        lines = ["Phase 2 (specific coverage):"]
        if self.discarded_unreachable:
            pretty = ", ".join(f"{c[0]}:{c[1]}"
                               for c in self.discarded_unreachable)
            lines.append(f"  discarded unreachable-mode columns: {pretty}")
        for seq in self.sequences:
            lines.append(f"  {seq.describe()}")
        lines.append("  still uncovered: "
                     + (", ".join(f"{c[0]}:{c[1]}"
                                  for c in self.still_uncovered) or "none"))
        return "\n".join(lines)


#: Scratch register used by observation tails on the paper core.  Family
#: points with fewer registers use their highest register instead (12
#: would alias a random-operand register through address masking).
_PAPER_OBS_REG = 12
#: Register holding the shift amount in shift-based observation tails.
_AMT_REG = 3


def observation_register(build=None) -> int:
    """The scratch register observation tails write through."""
    if build is None or build.spec.n_registers > _PAPER_OBS_REG:
        return _PAPER_OBS_REG
    return build.spec.n_registers - 1


def observation_library(build=None) -> Dict[str, List[Tuple[Instruction, ...]]]:
    """Candidate observation tails per component.  The empty tail (the
    plain ``out dest`` wrapper) is always tried first."""
    obs_reg = observation_register(build)
    return {
        "acca": [(Instruction(Opcode.OUTA),),
                 (Instruction(Opcode.SHIFTA, rega=_AMT_REG, dest=obs_reg),
                  Instruction(Opcode.OUT, regb=obs_reg))],
        "accb": [(Instruction(Opcode.OUTB),),
                 (Instruction(Opcode.SHIFTB, rega=_AMT_REG, dest=obs_reg),
                  Instruction(Opcode.OUT, regb=obs_reg))],
        "muxg_shifter": [
            (Instruction(Opcode.MACA_ADD, rega=0, regb=1, dest=obs_reg),
             Instruction(Opcode.OUT, regb=obs_reg)),
            (Instruction(Opcode.MACB_ADD, rega=0, regb=1, dest=obs_reg),
             Instruction(Opcode.OUT, regb=obs_reg))],
        "muxg_limiter": [(Instruction(Opcode.OUTA),),
                         (Instruction(Opcode.OUTB),)],
        "temp": [(Instruction(Opcode.OUT, regb=2),)],
    }


def default_tails(build=None) -> List[Tuple[Instruction, ...]]:
    obs_reg = observation_register(build)
    return [
        (),
        (Instruction(Opcode.OUTA),),
        (Instruction(Opcode.OUTB),),
        (Instruction(Opcode.MACA_ADD, rega=0, regb=1, dest=obs_reg),
         Instruction(Opcode.OUT, regb=obs_reg)),
    ]


#: Paper-core views kept for importers that predate core families.
OBSERVATION_LIBRARY: Dict[str, List[Tuple[Instruction, ...]]] = \
    observation_library()
_DEFAULT_TAILS: List[Tuple[Instruction, ...]] = default_tails()


def unreachable_columns(table: MetricsTable) -> List[Column]:
    """Columns never exercised by any instruction (no cell in any row)."""
    unreachable = []
    for column in table.columns:
        if not any(table.cell(row, column) is not None
                   for row in table.rows):
            unreachable.append(column)
    return unreachable


def run_phase2(
    table: MetricsTable,
    phase1: Phase1Result,
    o_engine: Optional[ObservabilityEngine] = None,
    build=None,
) -> Phase2Result:
    """Cover the columns Phase 1 left behind."""
    engine = o_engine if o_engine is not None else ObservabilityEngine(
        n_good=6, build=build
    )
    unreachable = [c for c in unreachable_columns(table)
                   if c in phase1.uncovered]
    targets = [c for c in phase1.uncovered if c not in unreachable]

    sequences: List[CoverageSequence] = []
    still: List[Column] = []
    for column in targets:
        solved = self_sequence_for(column, table, engine, build=build)
        if solved is not None:
            sequences.append(solved)
        else:
            still.append(column)
    return Phase2Result(
        discarded_unreachable=unreachable,
        sequences=sequences,
        still_uncovered=still,
    )


def self_sequence_for(
    column: Column,
    table: MetricsTable,
    engine: ObservabilityEngine,
    build=None,
) -> Optional[CoverageSequence]:
    """Find a (row, observation-tail) pair that covers ``column``."""
    component = column[0]
    # Rows whose randomness on the column clears the C threshold, best first.
    candidates = sorted(
        (row for row in table.rows
         if (cell := table.cell(row, column)) is not None
         and cell.c >= table.c_theta),
        key=lambda row: -table.cell(row, column).c,
    )
    tails = (observation_library(build).get(component, [])
             + default_tails(build))
    for row in candidates[:4]:
        for tail in tails:
            o_values = engine.measure(row, extra_wrapper=list(tail))
            observability = o_values.get(column, 0.0)
            if observability >= table.o_theta:
                return CoverageSequence(
                    column=column, variant=row, observation=tuple(tail),
                    observability=observability,
                )
    return None
