"""Phase 3 — optional gate-level enhancements (paper §2.4 and §3.4).

Three enhancements, available once gate-level knowledge exists:

1. **Control-bit constraints** (experiment E2): fault-simulate a component
   with some of its control-bit modes excluded; modes whose exclusion
   loses almost no coverage (the shifter's "10"/"11") can be dropped from
   the metrics table.

2. **Execution-frequency boosting** (experiment E3): instructions that
   exercise slow-to-cover components (the paper names the shifter and
   adder) are repeated inside the loop, so "the fault coverage [rises]
   more rapidly, allowing us to shorten our test time".

3. **Random-resistant one-shots** (experiment E4): component-level ATPG
   patterns are delivered by dedicated instruction sequences stored
   outside the loop and executed once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.dsp.components import ComponentSpec, component_by_name
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import Fault, collapse_faults
from repro.selftest.program import ProgramLine, TestProgram
from repro.runtime.errors import ConfigError

Column = Tuple[str, int]


# ----------------------------------------------------------------------
# Enhancement 1: control-bit constraint study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstraintResult:
    """Fault coverage of one component under a control constraint."""

    component: str
    allowed_modes: Tuple[int, ...]
    n_faults: int
    n_detected: int
    n_undetected: int

    @property
    def fault_coverage(self) -> float:
        return self.n_detected / self.n_faults if self.n_faults else 1.0

    def describe(self) -> str:
        modes = ",".join(str(m) for m in self.allowed_modes)
        return (f"{self.component} modes {{{modes}}}: "
                f"{self.n_undetected} faults undetected, "
                f"FC {self.fault_coverage:.2%}")


def _random_port_patterns(spec: ComponentSpec, allowed_modes: Sequence[int],
                          n_patterns: int, rng: random.Random,
                          mode_port: str) -> Dict[str, List[int]]:
    patterns: Dict[str, List[int]] = {
        name: [] for name, _ in spec.input_ports
    }
    for _ in range(n_patterns):
        for name, width in spec.input_ports:
            if name == mode_port:
                patterns[name].append(rng.choice(list(allowed_modes)))
            else:
                patterns[name].append(rng.randrange(1 << width))
    return patterns


def constraint_study(
    component: str = "shifter",
    mode_port: str = "mode",
    constraints: Optional[Sequence[Sequence[int]]] = None,
    n_patterns: int = 2048,
    seed: int = 31,
    rng_factory=None,
) -> List[ConstraintResult]:
    """The paper's §3.4 study: component fault coverage per mode constraint.

    ``constraints`` is a list of allowed-mode sets; the default reproduces
    the paper's five shifter cases (each single mode excluded, plus
    "only 00 and 01").  ``rng_factory(allowed_modes) -> Random``
    overrides the default per-constraint seed-derived streams.
    """
    with obs.span("selftest.phase3", key=component), \
            obs.section("selftest.phase3"):
        return _constraint_study(component, mode_port, constraints,
                                 n_patterns, seed, rng_factory)


def _constraint_study(component, mode_port, constraints, n_patterns,
                      seed, rng_factory) -> List[ConstraintResult]:
    spec = component_by_name(component)
    if constraints is None:
        all_modes = list(spec.modes)
        constraints = [list(all_modes)]  # unconstrained baseline first
        constraints += [
            [m for m in all_modes if m != excluded] for excluded in all_modes
        ]
        constraints.append(list(all_modes[:2]))  # only the first two modes
    fault_list = collapse_faults(spec.netlist())
    sim = CombFaultSimulator(spec.netlist(), fault_list)
    results: List[ConstraintResult] = []
    for allowed in constraints:
        rng = rng_factory(allowed) if rng_factory is not None \
            else random.Random((seed, tuple(allowed)).__repr__())
        patterns = _random_port_patterns(spec, allowed, n_patterns, rng,
                                         mode_port)
        block = 256
        first = sim.run_with_dropping([
            {name: words[i:i + block] for name, words in patterns.items()}
            for i in range(0, n_patterns, block)
        ])
        detected = sum(1 for v in first.values() if v is not None)
        results.append(ConstraintResult(
            component=component,
            allowed_modes=tuple(allowed),
            n_faults=len(fault_list.faults),
            n_detected=detected,
            n_undetected=len(fault_list.faults) - detected,
        ))
    return results


def discardable_modes(results: Sequence[ConstraintResult],
                      loss_budget: int = 16) -> List[int]:
    """Modes whose exclusion costs at most ``loss_budget`` faults *beyond*
    the unconstrained baseline.

    The paper: excluding shifter "10"/"11" loses 1 and 3 faults, so those
    columns can be discarded from the metrics table, while excluding "01"
    leaves 1829 faults undetected.
    """
    spec_modes = set()
    for result in results:
        spec_modes.update(result.allowed_modes)
    baseline = min(result.n_undetected for result in results
                   if set(result.allowed_modes) == spec_modes)
    discardable = []
    for result in results:
        excluded = spec_modes - set(result.allowed_modes)
        loss = result.n_undetected - baseline
        if len(excluded) == 1 and loss <= loss_budget:
            discardable.append(excluded.pop())
    return sorted(discardable)


# ----------------------------------------------------------------------
# Enhancement 2: execution-frequency boosting
# ----------------------------------------------------------------------
def slow_components(result, max_components: int = 2,
                    min_faults: int = 40) -> List[str]:
    """Components with the worst coverage in a fault-simulation run.

    This is the paper's selection rule: "Through fault simulation we are
    able to find out how many test vectors it takes for sufficient fault
    coverage to be achieved on the different components" — the slow ones
    (the paper found the shifter and adder) get their instructions
    repeated inside the loop.

    ``result`` is a :class:`~repro.faults.hierarchical.HierarchicalResult`
    from a short calibration run.
    """
    report = result.coverage_report()
    rates = [
        (detected / total, component)
        for component, (detected, total) in report.by_component.items()
        if total >= min_faults
    ]
    rates.sort()
    return [component for _, component in rates[:max_components]]


def boost_frequency(program: TestProgram,
                    components: Sequence[str] = ("shifter", "addsub"),
                    repeats: int = 2) -> TestProgram:
    """Repeat (in the loop) the instructions that cover ``components``.

    Returns a new program where each loop line covering one of the named
    components appears ``repeats`` times (each followed by its immediate
    ``out`` wrapper if it had one).  One-shot lines are untouched.
    """
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    boosted = TestProgram()
    lines = program.lines
    for i, line in enumerate(lines):
        boosted.lines.append(line)
        if not line.in_loop:
            continue
        targets = {c[0] for c in line.covers}
        if not targets & set(components):
            continue
        follower = lines[i + 1] if i + 1 < len(lines) else None
        has_wrapper = (follower is not None and follower.phase == "wrapper"
                       and follower.in_loop)
        for _ in range(repeats - 1):
            boosted.lines.append(ProgramLine(
                item=line.item,
                comment=(line.comment + " (boosted)").strip(),
                phase="phase3",
                covers=line.covers,
            ))
            if has_wrapper:
                boosted.lines.append(ProgramLine(
                    item=follower.item, comment="observe result",
                    phase="phase3",
                ))
    return boosted


# ----------------------------------------------------------------------
# Enhancement 3: random-resistant one-shot sequences
# ----------------------------------------------------------------------
@dataclass
class OneShotSequence:
    """An ATPG-pattern delivery sequence for one random-resistant fault."""

    component: str
    fault: Fault
    lines: List[ProgramLine] = field(default_factory=list)

    def describe(self) -> str:
        spec = component_by_name(self.component)
        return (f"{self.component}/{self.fault.describe(spec.netlist())}: "
                f"{len(self.lines)} instructions")


def append_one_shots(program: TestProgram,
                     sequences: Sequence[OneShotSequence]) -> TestProgram:
    """Attach one-shot ATPG sequences to a program (executed once)."""
    extended = TestProgram(lines=list(program.lines))
    for sequence in sequences:
        for line in sequence.lines:
            extended.lines.append(ProgramLine(
                item=line.item,
                comment=line.comment or f"ATPG {sequence.component}",
                phase="phase3",
                covers=line.covers,
                in_loop=False,
            ))
    return extended
