"""Operand justification: delivering ATPG patterns through the ISA.

Phase 3's random-resistant enhancement needs *specific* values on a
component's inputs — e.g. an adder pattern wants an exact 18-bit value in
the selected accumulator and an exact product on the multiplier path.  The
paper notes both the cost ("It took 21 lines to test the adder with just
one pattern") and the difficulty ("It may also be very hard to figure out
how to use the instruction set to get some of the ATPG patterns to the
target component").

This module implements that justification for the adder/subtracter:

* :func:`factor_product` — write a 16-bit value as a product of two signed
  bytes (what one ``MPY`` can produce);
* :func:`justify_accumulator` — reach an arbitrary 18-bit accumulator
  value with a short ``MPY`` / ``SHIFT`` / ``MAC`` sequence
  (``v = (p << k) + r`` with both ``p`` and ``r`` byte-products);
* :func:`synthesize_addsub_oneshot` — the full one-shot delivery sequence
  for one PODEM pattern, *verified* by mixed-level simulation before being
  accepted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro._util import sign_extend, to_signed, to_unsigned
from repro.dsp.core import DspCore
from repro.dsp.isa import Instruction, Opcode, encode
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import Fault
from repro.selftest.phase3 import OneShotSequence
from repro.selftest.program import ProgramLine
from repro.runtime.errors import ConfigError

#: Extreme signed-byte products reachable by one multiply.
_MAX_PRODUCT = 128 * 128      # (-128) * (-128)
_MIN_PRODUCT = -128 * 127


def factor_product(p: int) -> Optional[Tuple[int, int]]:
    """Express ``p`` as a product of two signed bytes.

    Returns the two operands as unsigned byte encodings, or ``None`` when
    no factorisation exists (e.g. a prime beyond 127 in magnitude).
    """
    if not _MIN_PRODUCT <= p <= _MAX_PRODUCT:
        return None
    if p == 0:
        return 0, 0
    magnitude = abs(p)
    for a in range(1, 129):
        if magnitude % a:
            continue
        b = magnitude // a
        if b > 128:
            continue
        # Distribute the sign; +128 itself is not representable, only -128.
        if p > 0:
            if a <= 127 and b <= 127:
                return to_unsigned(a, 8), to_unsigned(b, 8)
            if a == 128 and b == 128:
                return to_unsigned(-128, 8), to_unsigned(-128, 8)
            continue
        # negative product: give one factor the minus sign
        if b <= 127:
            return to_unsigned(-a, 8), to_unsigned(b, 8)
        if a <= 127:
            return to_unsigned(a, 8), to_unsigned(-b, 8)
    return None


#: Registers reserved by justification sequences (away from the loop's
#: operand registers).
_JREGS = list(range(8, 16))


def justify_accumulator(value: int, acc: str = "A",
                        max_delta: int = 48) -> Optional[List[Instruction]]:
    """A short instruction sequence leaving ``value`` in AccA or AccB.

    Strategy: find ``k``, ``p``, ``r`` with ``value = (p << k) + r`` where
    both ``p`` and ``r`` are single-multiply products; emit
    ``MPY p; SHIFT k; MAC+ r``.  Returns ``None`` when no decomposition is
    found within the search budget.
    """
    if acc not in ("A", "B"):
        raise ConfigError("acc must be 'A' or 'B'")
    target = to_signed(value, 18)
    mpy = Opcode.MPYA if acc == "A" else Opcode.MPYB
    mac = Opcode.MACA_ADD if acc == "A" else Opcode.MACB_ADD
    shift = Opcode.SHIFTA if acc == "A" else Opcode.SHIFTB
    r1, r2, r3, r4, r5, r6 = _JREGS[:6]

    for k in range(0, 8):
        base = target >> k
        if not _MIN_PRODUCT <= base <= _MAX_PRODUCT:
            continue
        for delta in range(0, max_delta + 1):
            p = base - delta
            rest = target - (p << k)
            if rest < 0 or rest > _MAX_PRODUCT:
                continue
            p_ops = factor_product(p)
            r_ops = factor_product(rest)
            if p_ops is None or r_ops is None:
                continue
            seq = [
                Instruction(Opcode.LDI, imm=p_ops[0], dest=r1),
                Instruction(Opcode.LDI, imm=p_ops[1], dest=r2),
                Instruction(mpy, rega=r1, regb=r2, dest=r3),
            ]
            if k:
                seq += [
                    Instruction(Opcode.LDI, imm=k, dest=r4),
                    Instruction(shift, rega=r4, dest=r5),
                ]
            if rest:
                seq += [
                    Instruction(Opcode.LDI, imm=r_ops[0], dest=r1),
                    Instruction(Opcode.LDI, imm=r_ops[1], dest=r2),
                    Instruction(mac, rega=r1, regb=r2, dest=r6),
                ]
            return seq
    return None


def _apply_pattern_sequence(a_value: int, b_value: int, sub: int,
                            acc: str = "A") -> Optional[List[Instruction]]:
    """Full sequence: justify acc = a_value, then fire the adder with
    product = b_value and the requested add/sub mode, then observe."""
    prologue = justify_accumulator(a_value, acc=acc)
    if prologue is None:
        return None
    product = to_signed(b_value, 18)
    if sign_extend(to_unsigned(product, 16), 16, 18) != to_unsigned(product, 18):
        return None  # not reachable through the 16-bit product path
    ops = factor_product(product)
    if ops is None:
        return None
    if sub:
        fire = Opcode.MACA_SUB if acc == "A" else Opcode.MACB_SUB
    else:
        fire = Opcode.MACA_ADD if acc == "A" else Opcode.MACB_ADD
    observe = Opcode.OUTA if acc == "A" else Opcode.OUTB
    r1, r2, dest = _JREGS[0], _JREGS[1], _JREGS[6]
    return prologue + [
        Instruction(Opcode.LDI, imm=ops[0], dest=r1),
        Instruction(Opcode.LDI, imm=ops[1], dest=r2),
        Instruction(fire, rega=r1, regb=r2, dest=dest),
        Instruction(Opcode.OUT, regb=dest),
        Instruction(observe),
    ]


def oneshot_detects(fault: Fault, instructions: List[Instruction],
                    sim: CombFaultSimulator) -> bool:
    """Mixed-level check: does the sequence detect the addsub fault?

    The addsub's output is continuously overridden with its gate-level
    faulty evaluation; detection = the output-port stream diverges.
    """
    words = [encode(i) for i in instructions]
    words += [encode(Instruction(Opcode.NOP))] * 4
    clean = DspCore()
    clean_ports = [clean.step(w).port for w in words]

    def faulty_output(inputs: Dict[str, int]) -> int:
        return sim.faulty_output_word(fault, inputs, "result")

    forked = DspCore()
    for t, word in enumerate(words):
        port = forked.step(word, overrides={"addsub": faulty_output}).port
        if port != clean_ports[t]:
            return True
    return False


def synthesize_addsub_oneshot(
    fault: Fault,
    pattern_words: Dict[str, int],
    sim: CombFaultSimulator,
    acc: str = "A",
) -> Optional[OneShotSequence]:
    """Build and verify a one-shot delivery sequence for one adder pattern.

    ``pattern_words`` is PODEM's pattern over the addsub buses (``a`` =
    accumulate side, ``b`` = product side, ``sub``).  Returns ``None``
    when the pattern cannot be justified through the ISA or the delivered
    error does not reach the output port — both failure modes the paper
    explicitly discusses.
    """
    instructions = _apply_pattern_sequence(
        pattern_words.get("a", 0), pattern_words.get("b", 0),
        pattern_words.get("sub", 0) & 1, acc=acc,
    )
    if instructions is None:
        return None
    if not oneshot_detects(fault, instructions, sim):
        return None
    lines = [ProgramLine(item=i, phase="phase3", in_loop=False,
                         comment=f"ATPG addsub {fault.stuck_at}@net{fault.net}")
             for i in instructions]
    return OneShotSequence(component="addsub", fault=fault, lines=lines)
