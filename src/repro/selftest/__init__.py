"""Self-test program generation (paper Sections 2.3–2.4 and 3.3–3.4).

* :mod:`repro.selftest.program` — the test-program IR: annotated template
  lines (who covers what, loop vs one-shot), Fig. 7-style rendering, and
  conversion to the runtime template architecture.
* :mod:`repro.selftest.phase1` — global coverage: greedy set cover over
  the metrics table after removing wrapper-covered columns.
* :mod:`repro.selftest.phase2` — specific coverage: observation/
  randomisation sequences for the leftovers, and elimination of columns
  whose control-bit mode no instruction can produce.
* :mod:`repro.selftest.phase3` — gate-level enhancements: control-bit
  constraint analysis, execution-frequency boosting, and ATPG one-shots
  for random-resistant faults.
* :mod:`repro.selftest.generator` — end-to-end flow (the paper's Fig. 3).
* :mod:`repro.selftest.vectors` — the "Perl script": expand the looped
  program + LFSR streams into concrete test vectors and MISR signatures.
"""

from repro.selftest.program import ProgramLine, TestProgram
from repro.selftest.phase1 import Phase1Result, run_phase1
from repro.selftest.phase2 import Phase2Result, run_phase2
from repro.selftest.generator import SelfTestGenerator, GeneratedSelfTest
from repro.selftest.vectors import expand_program, run_with_misr
from repro.selftest.testplan import TestPlan, paper_plan, plan_for_target

__all__ = [
    "ProgramLine",
    "TestProgram",
    "Phase1Result",
    "run_phase1",
    "Phase2Result",
    "run_phase2",
    "SelfTestGenerator",
    "GeneratedSelfTest",
    "expand_program",
    "run_with_misr",
    "TestPlan",
    "paper_plan",
    "plan_for_target",
]
