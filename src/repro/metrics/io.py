"""Persistence for metrics tables.

Measuring Table 2 is the expensive step of the flow (thousands of
behavioural simulations); teams run it once per core revision and reuse
it.  The JSON schema round-trips rows, columns, cells, thresholds and
per-component fault counts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.dsp.isa import Opcode
from repro.metrics.controllability import InstructionVariant
from repro.metrics.table import MetricsCell, MetricsTable

SCHEMA_VERSION = 1


def table_to_json(table: MetricsTable) -> str:
    """Serialise a metrics table to a JSON string."""
    payload = {
        "schema": SCHEMA_VERSION,
        "c_theta": table.c_theta,
        "o_theta": table.o_theta,
        "rows": [
            {"opcode": row.opcode.name, "acc_state": row.acc_state}
            for row in table.rows
        ],
        "columns": [list(column) for column in table.columns],
        "fault_counts": table.fault_counts,
        "cells": [
            {
                "row": label,
                "column": list(column),
                "c": cell.c,
                "o": cell.o,
            }
            for (label, column), cell in sorted(table.cells.items())
        ],
    }
    return json.dumps(payload, indent=2)


def table_from_json(text: str) -> MetricsTable:
    """Reconstruct a metrics table from :func:`table_to_json` output."""
    payload = json.loads(text)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported metrics-table schema {payload.get('schema')!r}"
        )
    rows = [
        InstructionVariant(Opcode[row["opcode"]], row["acc_state"])
        for row in payload["rows"]
    ]
    table = MetricsTable(
        rows=rows,
        columns=[tuple(column) for column in payload["columns"]],
        fault_counts=dict(payload["fault_counts"]),
        c_theta=payload["c_theta"],
        o_theta=payload["o_theta"],
    )
    by_label = {row.label: row for row in rows}
    for entry in payload["cells"]:
        row = by_label[entry["row"]]
        table.set_cell(row, tuple(entry["column"]),
                       MetricsCell(c=entry["c"], o=entry["o"]))
    return table


def save_table(table: MetricsTable, path: Union[str, Path]) -> None:
    Path(path).write_text(table_to_json(table))


def load_table(path: Union[str, Path]) -> MetricsTable:
    return table_from_json(Path(path).read_text())
