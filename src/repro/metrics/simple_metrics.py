"""Testability metrics for the simple Fig. 1 datapath (paper Table 1).

Same methodology as the DSP-core engines, specialised to the small
accumulator machine: rows are Add/Sub/Mac/Clr, each under an assumed-zero
and assumed-random accumulator ("0"/"R"), columns are Mult, the three ALU
modes and the accumulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.rng import derive_rng

from repro.dsp.simple import (
    SIMPLE_COLUMNS,
    SIMPLE_COLUMN_LABELS,
    SimpleDspCore,
    SimpleOp,
    SimpleState,
)
from repro.metrics.entropy import (
    combine_independent,
    controllability_from_samples,
)
from repro.metrics.table import C_THETA, O_THETA, MetricsCell

Column = Tuple[str, int]

#: Output widths of the simple datapath's components.
_WIDTHS = {"mult": 8, "alu": 8, "acc": 8}
#: Data input ports per component (control ports excluded).
_DATA_PORTS = {"mult": ("a", "b"), "alu": ("a", "b"), "acc": ("d",)}


@dataclass(frozen=True)
class SimpleVariant:
    """One Table 1 row: operation + assumed accumulator state."""

    op: SimpleOp
    acc_state: str

    @property
    def label(self) -> str:
        names = {SimpleOp.ADD: "Add", SimpleOp.SUB: "Sub",
                 SimpleOp.MAC: "Mac", SimpleOp.CLR: "Clr"}
        return f"{names[self.op]} {self.acc_state}"


def table1_variants() -> List[SimpleVariant]:
    """The eight rows of the paper's Table 1."""
    rows = []
    for op in (SimpleOp.ADD, SimpleOp.SUB, SimpleOp.MAC, SimpleOp.CLR):
        rows.append(SimpleVariant(op, "0"))
        rows.append(SimpleVariant(op, "R"))
    return rows


def _prepared_core(variant: SimpleVariant, rng: random.Random) -> SimpleDspCore:
    acc = rng.randrange(256) if variant.acc_state == "R" else 0
    return SimpleDspCore(state=SimpleState(acc=acc))


def measure_simple_controllability(
    variant: SimpleVariant, n_samples: int = 400, seed: int = 11,
    rng: Optional[random.Random] = None,
) -> Dict[Column, float]:
    """C per (component, mode) column for one Table 1 row.

    ``rng`` overrides the default per-variant seed-derived stream.
    """
    rng = rng if rng is not None else derive_rng(seed, variant.label)
    port_samples: Dict[Column, Dict[str, List[int]]] = {}
    for _ in range(n_samples):
        core = _prepared_core(variant, rng)
        trace: Dict = {}
        core.step(variant.op, rng.randrange(256), rng.randrange(256),
                  trace=trace)
        for name, activity in trace.items():
            key = (name, activity.mode)
            ports = port_samples.setdefault(key, {})
            for port, value in activity.inputs.items():
                if port in _DATA_PORTS.get(name, ()):
                    ports.setdefault(port, []).append(value)
    result: Dict[Column, float] = {}
    for key, ports in port_samples.items():
        contributions = [
            (controllability_from_samples(samples, 8), 8)
            for samples in ports.values()
        ]
        if contributions:
            result[key] = combine_independent(contributions)
    return result


def measure_simple_observability(
    variant: SimpleVariant, n_good: int = 50, errors_per_bit: int = 2,
    window: int = 4, seed: int = 13,
    rng: Optional[random.Random] = None,
) -> Dict[Column, float]:
    """O per column: inject random errors, observe the output stream.

    The observation window runs the same operation with fresh random data
    for a few more cycles — the accumulator keeps feeding the output port,
    so (unlike the deep DSP pipeline) errors in the simple datapath are
    almost always observable, which is why Table 1's O column is 0.99
    everywhere except behind ``Clr``.
    """
    rng = rng if rng is not None else derive_rng(seed, variant.label)
    observed: Dict[Column, int] = {}
    injected: Dict[Column, int] = {}
    for _ in range(n_good):
        acc0 = rng.randrange(256) if variant.acc_state == "R" else 0
        steps = [(variant.op, rng.randrange(256), rng.randrange(256))]
        steps += [(SimpleOp.ADD, rng.randrange(256), 0)
                  for _ in range(window - 1)]

        core = SimpleDspCore(state=SimpleState(acc=acc0))
        clean_ports, trace0 = [], {}
        for t, (op, in1, in2) in enumerate(steps):
            trace = trace0 if t == 0 else None
            clean_ports.append(core.step(op, in1, in2, trace=trace))

        for name, activity in trace0.items():
            key = (name, activity.mode)
            n_bits = _WIDTHS[name]
            for _ in range(errors_per_bit * n_bits):
                bad = rng.randrange(1 << n_bits)
                if bad == activity.output:
                    bad = (bad + 1) & ((1 << n_bits) - 1)
                faulty = SimpleDspCore(state=SimpleState(acc=acc0))
                ports = []
                for t, (op, in1, in2) in enumerate(steps):
                    overrides = {name: bad} if t == 0 else None
                    ports.append(faulty.step(op, in1, in2,
                                             overrides=overrides))
                injected[key] = injected.get(key, 0) + 1
                if ports != clean_ports:
                    observed[key] = observed.get(key, 0) + 1
    return {key: observed.get(key, 0) / count
            for key, count in injected.items()}


def build_table1(n_samples: int = 400, n_good: int = 30,
                 seed: int = 17) -> Dict[str, Dict[str, MetricsCell]]:
    """The full Table 1: row label → column label → C/O cell."""
    table: Dict[str, Dict[str, MetricsCell]] = {}
    for variant in table1_variants():
        c_vals = measure_simple_controllability(variant, n_samples, seed)
        o_vals = measure_simple_observability(variant, n_good, seed=seed + 1)
        row: Dict[str, MetricsCell] = {}
        for column in SIMPLE_COLUMNS:
            if column in c_vals or column in o_vals:
                row[SIMPLE_COLUMN_LABELS[column]] = MetricsCell(
                    c=c_vals.get(column, 0.0), o=o_vals.get(column, 0.0)
                )
        table[variant.label] = row
    return table


def render_table1(table: Dict[str, Dict[str, MetricsCell]]) -> str:
    """ASCII rendering in the shape of the paper's Table 1."""
    columns = [SIMPLE_COLUMN_LABELS[c] for c in SIMPLE_COLUMNS]
    lines = ["  ".join(["Opcode".ljust(8)] + [c.ljust(12) for c in columns])]
    for row_label, row in table.items():
        parts = [row_label.ljust(8)]
        for column in columns:
            cell = row.get(column)
            if cell is None:
                parts.append("".ljust(12))
            else:
                mark = " X" if cell.covered() else ""
                parts.append(f"{cell.c:.2f}/{cell.o:.2f}{mark}".ljust(12))
        lines.append("  ".join(parts))
    return "\n".join(lines)
