"""Controllability measurement for the DSP core.

For every *instruction variant* — an opcode plus an assumed accumulator
state, "0" (zero) or "R" (random), exactly the paired rows of the paper's
Tables 1–2 — the engine executes the instruction many times on the
behavioural core with pseudorandom operand registers (the effect of the
``Load`` wrapper), collects each component's data-port values from the
execution trace, and estimates ``C`` per (component, mode) column.

Control ports (mux selects, add/sub select, shift mode, enables) are fixed
by the instruction's opcode; they define *which column* the sample belongs
to and are excluded from the entropy estimate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import mask
from repro.dsp.components import COMPONENTS, component_by_name
from repro.dsp.core import DspCore
from repro.dsp.fixedpoint import ACC_WIDTH
from repro.dsp.isa import Instruction, N_REGISTERS, Opcode, encode
from repro.runtime.errors import ConfigError
from repro.runtime.rng import RngFactory, resolve_factory

#: Ports fixed by the opcode's control bits — never part of the entropy.
CONTROL_PORTS = frozenset({"sel", "sub", "en", "mode", "q", "addr"})

#: Default operand register assignment for measured instructions; the
#: actual register identities are immaterial (LFSR2 masks them at runtime).
_REGA, _REGB, _DEST = 0, 1, 2

_NOP_WORD = encode(Instruction(Opcode.NOP))


@dataclass(frozen=True)
class InstructionVariant:
    """One metrics-table row: opcode + assumed accumulator state."""

    opcode: Opcode
    acc_state: str  # "0" or "R"

    def __post_init__(self):
        if self.acc_state not in ("0", "R"):
            raise ConfigError(f"acc_state must be '0' or 'R', "
                              f"got {self.acc_state!r}")

    @property
    def label(self) -> str:
        """Row label in the paper's style, e.g. ``Mac+R`` / ``mpy``."""
        pretty = {
            Opcode.LDI: "load", Opcode.OUT: "Out", Opcode.MOV: "mov",
            Opcode.OUTA: "OutrA", Opcode.OUTB: "OutrB",
            Opcode.MPYA: "MpyA", Opcode.MPYB: "MpyB",
            Opcode.MPYTA: "MpytA", Opcode.MPYTB: "MpytB",
            Opcode.MACA_ADD: "MacA+", Opcode.MACB_ADD: "MacB+",
            Opcode.MACA_SUB: "MacA-", Opcode.MACB_SUB: "MacB-",
            Opcode.MACTA_ADD: "MactA+", Opcode.MACTB_ADD: "MactB+",
            Opcode.MACTA_SUB: "MactA-", Opcode.MACTB_SUB: "MactB-",
            Opcode.SHIFTA: "ShiftA", Opcode.SHIFTB: "ShiftB",
            Opcode.MPYSHIFTA: "MpyshiftA", Opcode.MPYSHIFTB: "MpyshiftB",
            Opcode.MPYSHIFTMACA: "MpyshiftmacA",
            Opcode.MPYSHIFTMACB: "MpyshiftmacB",
        }
        base = pretty.get(self.opcode, self.opcode.name)
        return base + ("R" if self.acc_state == "R" else "")

    def instruction(self, rng: Optional[random.Random] = None) -> Instruction:
        """A concrete instruction for this variant (random imm for loads)."""
        if self.opcode is Opcode.LDI:
            imm = rng.randrange(256) if rng is not None else 0
            return Instruction(self.opcode, imm=imm, dest=_DEST)
        if self.opcode is Opcode.OUT:
            return Instruction(self.opcode, regb=_REGB)
        if self.opcode in (Opcode.OUTA, Opcode.OUTB, Opcode.NOP):
            return Instruction(self.opcode)
        if self.opcode is Opcode.MOV:
            return Instruction(self.opcode, regb=_REGB, dest=_DEST)
        return Instruction(self.opcode, rega=_REGA, regb=_REGB, dest=_DEST)


def default_variants(include_b: bool = True) -> List[InstructionVariant]:
    """The row set of the paper's Table 2 (A and optionally B forms)."""
    families = [
        Opcode.LDI, Opcode.MPYA, Opcode.MPYTA,
        Opcode.MACA_ADD, Opcode.MACA_SUB, Opcode.MACTA_ADD, Opcode.MACTA_SUB,
        Opcode.SHIFTA, Opcode.MPYSHIFTA, Opcode.MPYSHIFTMACA,
        Opcode.OUT, Opcode.OUTA, Opcode.MOV,
    ]
    if include_b:
        families += [
            Opcode.MPYB, Opcode.MPYTB,
            Opcode.MACB_ADD, Opcode.MACB_SUB,
            Opcode.MACTB_ADD, Opcode.MACTB_SUB,
            Opcode.SHIFTB, Opcode.MPYSHIFTB, Opcode.MPYSHIFTMACB,
            Opcode.OUTB,
        ]
    variants = []
    for op in families:
        variants.append(InstructionVariant(op, "0"))
        variants.append(InstructionVariant(op, "R"))
    return variants


def prepare_core(variant: InstructionVariant, rng: random.Random,
                 build=None) -> DspCore:
    """A core with random registers and the variant's accumulator state.

    Random registers model the effect of the preceding ``ld rnd`` wrapper
    instructions; the accumulator state models the randomisation sequences
    Phase 2 inserts before 'R' rows.  ``build`` selects a non-paper family
    point (the draws use its widths, so paper streams are unchanged).
    """
    if build is None:
        core = DspCore()
        n_regs, reg_lim, acc_lim = N_REGISTERS, 256, 1 << ACC_WIDTH
    else:
        core = build.make_core()
        n_regs = build.spec.n_registers
        reg_lim = 1 << build.spec.operand_width
        acc_lim = 1 << build.spec.acc_width
    core.state.regs = [rng.randrange(reg_lim) for _ in range(n_regs)]
    if variant.acc_state == "R":
        core.state.acc_a = rng.randrange(acc_lim)
        core.state.acc_b = rng.randrange(acc_lim)
    return core


def trace_variant(variant: InstructionVariant, rng: random.Random,
                  follow: Sequence[Instruction] = (),
                  build=None) -> List[Dict]:
    """Execute the variant once; returns per-cycle traces.

    Cycle 0 fetches the instruction, so on the paper core its ID-stage
    activity (decoder, register reads) is in ``traces[1]`` and its
    EX-stage activity (MAC components, MacReg/buffer/MUX7/temp) in
    ``traces[2]``; 3-deep family cores shift each offset down by one
    (see :func:`component_cycle`).
    """
    core = prepare_core(variant, rng, build)
    words = [encode(variant.instruction(rng))]
    words += [encode(i) for i in follow]
    words += [_NOP_WORD] * 4
    traces: List[Dict] = []
    for word in words:
        trace: Dict = {}
        core.step(word, trace=trace)
        traces.append(trace)
    return traces


#: Pipeline stage (cycle offset after fetch) where each component processes
#: the measured instruction (paper core offsets).
ID_STAGE_COMPONENTS = frozenset({"decoder", "regread_a", "regread_b"})
WB_STAGE_COMPONENTS = frozenset({"mux7"})
ID_CYCLE = 1
EX_CYCLE = 2
WB_CYCLE = 3


def component_cycle(name: str, build=None) -> int:
    """Cycle offset (after fetch) at which ``name`` sees the instruction."""
    id_cycle = ID_CYCLE if build is None else build.id_cycle
    if name in ID_STAGE_COMPONENTS:
        return id_cycle
    if name in WB_STAGE_COMPONENTS:
        return id_cycle + 2
    return id_cycle + 1


class ControllabilityEngine:
    """Estimates C for every (component, mode) column, per variant."""

    def __init__(self, n_samples: int = 200, seed: int = 2004,
                 rng_factory: Optional[RngFactory] = None,
                 build=None):
        if n_samples < 2:
            raise ConfigError("need at least 2 samples")
        self.n_samples = n_samples
        self.seed = seed
        self.build = build
        # Injected label->Random factory; the default derives one
        # independent stream per variant from the seed, so measuring
        # any subset of rows (or resuming a campaign) replays exactly.
        self.rng_factory = resolve_factory(seed, rng_factory)

    def measure(self, variant: InstructionVariant) -> Dict[Tuple[str, int], float]:
        """Controllability per (component, mode) column for ``variant``.

        Only columns whose mode the variant actually exercises appear in
        the result.
        """
        from repro.metrics.entropy import (
            combine_independent,
            controllability_from_samples,
        )

        rng = self.rng_factory(variant.label)
        components = (COMPONENTS if self.build is None
                      else self.build.components)
        port_samples: Dict[Tuple[str, int], Dict[str, List[int]]] = {}
        for _ in range(self.n_samples):
            traces = trace_variant(variant, rng, build=self.build)
            for spec in components:
                cycle = component_cycle(spec.name, self.build)
                activity = traces[cycle].get(spec.name)
                if activity is None:
                    continue
                key = (spec.name, activity.mode)
                ports = port_samples.setdefault(key, {})
                for port_name, value in activity.inputs.items():
                    if port_name in CONTROL_PORTS or \
                            port_name in spec.tied_ports:
                        continue
                    ports.setdefault(port_name, []).append(value)

        result: Dict[Tuple[str, int], float] = {}
        widths = {
            spec.name: dict(spec.input_ports) for spec in components
        }
        for key, ports in port_samples.items():
            component = key[0]
            contributions = []
            for port_name, samples in ports.items():
                width = widths[component].get(port_name)
                if width is None:
                    continue
                c = controllability_from_samples(samples, width)
                contributions.append((c, width))
            if contributions:
                result[key] = combine_independent(contributions)
        return result
