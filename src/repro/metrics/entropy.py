"""Entropy estimation for the controllability metric.

The paper defines controllability as normalised entropy::

    C(X) = H(X) / H(uniform) = H(X) / n      (n-bit signal X)

For narrow signals the entropy is estimated exactly from the sample
histogram.  For wide signals a histogram over 2ⁿ bins is hopeless with a
few thousand samples, so — like the paper, which relies on
``H(X,Y) = H(X) + H(Y)`` for independent ports — we assume independence
*across bits* and average the per-bit binary entropies.  Multi-port
components compose width-weighted, the paper's
``C(X,Y) = (1/2n)(C(X) + C(Y))`` generalised to unequal widths.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

#: Widest signal for which exact histogram entropy is used by default.
EXACT_WIDTH_LIMIT = 8


def histogram_entropy(samples: Sequence[int]) -> float:
    """Exact entropy (bits) of the empirical distribution of ``samples``."""
    if not samples:
        raise ValueError("cannot estimate entropy from no samples")
    counts = Counter(samples)
    total = len(samples)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def per_bit_entropy(samples: Sequence[int], width: int) -> float:
    """Mean of the per-bit binary entropies (bit-independence assumption).

    Returns a value in [0, 1]: it is already normalised per bit, i.e. it
    *is* the controllability under the independence assumption.
    """
    if not samples:
        raise ValueError("cannot estimate entropy from no samples")
    if width <= 0:
        raise ValueError("width must be positive")
    total = len(samples)
    acc = 0.0
    for i in range(width):
        ones = sum((s >> i) & 1 for s in samples)
        p = ones / total
        if 0 < p < 1:
            acc += -(p * math.log2(p) + (1 - p) * math.log2(1 - p))
    return acc / width


def controllability_from_samples(samples: Sequence[int], width: int,
                                 exact_limit: int = EXACT_WIDTH_LIMIT) -> float:
    """The paper's ``C(X) = H(X)/n`` from a sample stream.

    Uses the exact histogram estimate for signals up to ``exact_limit``
    bits (when the sample count supports it) and the per-bit estimate for
    wider signals.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if width <= exact_limit and len(samples) >= (1 << width):
        return min(1.0, histogram_entropy(samples) / width)
    return per_bit_entropy(samples, width)


def combine_independent(values_and_widths: Iterable[Tuple[float, int]]) -> float:
    """Width-weighted composition of per-port controllabilities.

    For two equal-width ports this reduces to the paper's
    ``C(X,Y) = (1/2n)(C(X) + C(Y))``.
    """
    total_width = 0
    acc = 0.0
    for value, width in values_and_widths:
        if width <= 0:
            raise ValueError("port width must be positive")
        acc += value * width
        total_width += width
    if total_width == 0:
        raise ValueError("no ports to combine")
    return acc / total_width
