"""Instruction-level testability metrics (paper Section 2).

* :mod:`repro.metrics.entropy` — entropy estimators and the paper's
  controllability normalisation ``C(X) = H(X)/n``, including the
  independence composition for multi-port components.
* :mod:`repro.metrics.controllability` — measures, for every instruction
  variant (opcode × assumed accumulator state 0/R), how much randomness
  each component mode receives.
* :mod:`repro.metrics.observability` — measures, by random error
  injection at component outputs (the paper's 2×n heuristic), the fraction
  of erroneous values that reach the core's output port.
* :mod:`repro.metrics.table` — the metrics table (Tables 1 and 2): rows =
  instruction variants, columns = component modes, with coverage marks.
* :mod:`repro.metrics.simple_metrics` — the same machinery for the simple
  Fig. 1 datapath (Table 1).
"""

from repro.metrics.entropy import (
    controllability_from_samples,
    combine_independent,
    histogram_entropy,
    per_bit_entropy,
)
from repro.metrics.controllability import (
    ControllabilityEngine,
    InstructionVariant,
    default_variants,
)
from repro.metrics.observability import ObservabilityEngine
from repro.metrics.table import MetricsCell, MetricsTable, build_metrics_table

__all__ = [
    "histogram_entropy",
    "per_bit_entropy",
    "controllability_from_samples",
    "combine_independent",
    "InstructionVariant",
    "default_variants",
    "ControllabilityEngine",
    "ObservabilityEngine",
    "MetricsCell",
    "MetricsTable",
    "build_metrics_table",
]
