"""The metrics table (paper Tables 1 and 2).

Rows are instruction variants, columns are (component, mode) pairs.  Each
cell holds the controllability/observability pair and the coverage mark:
a cell is covered ("X") when ``C ≥ C_θ`` and ``O ≥ O_θ``; the paper's
thresholds are ``C_θ = 0.70`` and ``O_θ = 0.50``.

The table also records each component's stuck-at fault count (the first
data row of the paper's Table 2) — collapsed gate-level counts for
combinational components and the word-level model counts for storage
components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsp.components import COMPONENTS, ComponentSpec, all_columns
from repro.faults.model import collapse_faults
from repro.metrics.controllability import (
    ControllabilityEngine,
    InstructionVariant,
    default_variants,
)
from repro.metrics.observability import ObservabilityEngine

#: The paper's threshold choices ("good initial choices are 0.70 / 0.50").
C_THETA = 0.70
O_THETA = 0.50

Column = Tuple[str, int]


@dataclass(frozen=True)
class MetricsCell:
    """One (row, column) entry: the C/O pair."""

    c: float
    o: float

    def covered(self, c_theta: float = C_THETA,
                o_theta: float = O_THETA) -> bool:
        return self.c >= c_theta and self.o >= o_theta


def component_fault_count(spec: ComponentSpec) -> int:
    """The component's stuck-at fault universe size.

    Combinational components: collapsed gate-level faults.  Storage
    components: the word-level model — stuck storage bits, stuck data-input
    bits and (when present) a stuck enable, both polarities each.
    """
    if spec.kind == "comb":
        return collapse_faults(spec.netlist()).n_collapsed
    n = 4 * spec.output_width  # q and d bits, both polarities
    if any(name == "en" for name, _ in spec.input_ports):
        n += 2
    return n


@dataclass
class MetricsTable:
    """Rows × columns of C/O measurements with coverage marks."""

    rows: List[InstructionVariant]
    columns: List[Column]
    cells: Dict[Tuple[str, Column], MetricsCell] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    c_theta: float = C_THETA
    o_theta: float = O_THETA

    def cell(self, row: InstructionVariant,
             column: Column) -> Optional[MetricsCell]:
        return self.cells.get((row.label, column))

    def set_cell(self, row: InstructionVariant, column: Column,
                 cell: MetricsCell) -> None:
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        self.cells[(row.label, column)] = cell

    def is_covered(self, row: InstructionVariant, column: Column) -> bool:
        cell = self.cell(row, column)
        return bool(cell) and cell.covered(self.c_theta, self.o_theta)

    def covered_columns(self, row: InstructionVariant) -> List[Column]:
        return [c for c in self.columns if self.is_covered(row, c)]

    def rows_covering(self, column: Column) -> List[InstructionVariant]:
        return [r for r in self.rows if self.is_covered(r, column)]

    def column_label(self, column: Column) -> str:
        name, mode = column
        try:
            from repro.dsp.components import component_by_name
            spec = component_by_name(name)
            if len(spec.modes) == 1:
                return name
            return f"{name} {spec.mode_label(mode)}"
        except KeyError:
            return f"{name} {mode}"

    def with_thresholds(self, c_theta: float, o_theta: float) -> "MetricsTable":
        """A view of the same measurements under different thresholds.

        This is the paper's "If sufficient coverage is not reached, the
        thresholds can be lowered a limited amount of times".
        """
        return MetricsTable(
            rows=self.rows, columns=self.columns, cells=self.cells,
            fault_counts=self.fault_counts,
            c_theta=c_theta, o_theta=o_theta,
        )

    # ------------------------------------------------------------------
    def render(self, max_columns: Optional[int] = None) -> str:
        """ASCII rendering in the style of the paper's Table 2."""
        columns = self.columns[:max_columns] if max_columns else self.columns
        header = ["instr".ljust(14)]
        header += [self.column_label(c)[:14].ljust(14) for c in columns]
        fault_row = ["#faults".ljust(14)]
        for name, _mode in columns:
            fault_row.append(str(self.fault_counts.get(name, "")).ljust(14))
        lines = ["  ".join(header), "  ".join(fault_row)]
        for row in self.rows:
            parts = [row.label.ljust(14)]
            for column in columns:
                cell = self.cell(row, column)
                if cell is None:
                    parts.append("".ljust(14))
                else:
                    mark = " X" if cell.covered(self.c_theta, self.o_theta) \
                        else ""
                    parts.append(f"{cell.c:.2f},{cell.o:.2f}{mark}".ljust(14))
            lines.append("  ".join(parts))
        return "\n".join(lines)


def build_metrics_table(
    variants: Optional[Sequence[InstructionVariant]] = None,
    n_controllability_samples: int = 150,
    n_observability_good: int = 12,
    seed: int = 2004,
    columns: Optional[Sequence[Column]] = None,
    build=None,
) -> MetricsTable:
    """Measure C and O for every variant and assemble the metrics table.

    This is the "Construct Metrics Table" step of the paper's Fig. 3 flow.
    Sample counts default to values that finish in minutes on a laptop;
    the benchmarks raise them.  ``build`` measures a non-paper family
    point (a :class:`repro.dsp.family.CoreBuild`).
    """
    rows = list(variants) if variants is not None else default_variants()
    components = COMPONENTS if build is None else build.components
    if columns is not None:
        cols = list(columns)
    elif build is None:
        cols = all_columns()
    else:
        cols = build.all_columns()
    table = MetricsTable(
        rows=rows,
        columns=cols,
        fault_counts={
            spec.name: component_fault_count(spec) for spec in components
        },
    )
    c_engine = ControllabilityEngine(
        n_samples=n_controllability_samples, seed=seed, build=build
    )
    o_engine = ObservabilityEngine(n_good=n_observability_good, seed=seed + 1,
                                   build=build)
    for row in rows:
        c_values = c_engine.measure(row)
        o_values = o_engine.measure(row)
        for column in cols:
            if column in c_values or column in o_values:
                table.set_cell(row, column, MetricsCell(
                    c=c_values.get(column, 0.0),
                    o=o_values.get(column, 0.0),
                ))
    return table
