"""Observability measurement by random error injection.

Implements the paper's procedure: run a fault-free ("good") simulation of
the instruction inside its wrapper (operand loads before, ``Out dest``
after), then, for a component with an *n*-bit output, re-run ``2 × n``
times with a random erroneous value forced onto the component's output at
the cycle the instruction occupies that component.  The observability is::

    O(X) = δ_core / δ(X)

— the fraction of injections whose effect reaches the core's output port
within the observation window.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import mask
from repro.dsp.components import COMPONENTS
from repro.dsp.core import DspCore
from repro.dsp.isa import Instruction, Opcode, encode
from repro.metrics.controllability import (
    InstructionVariant,
    component_cycle,
    prepare_core,
)
from repro.runtime.errors import ConfigError
from repro.runtime.rng import RngFactory, resolve_factory

_NOP_WORD = encode(Instruction(Opcode.NOP))


def observation_wrapper(variant: InstructionVariant,
                        build=None) -> List[Instruction]:
    """The "Out" wrapper: propagate the instruction's result to the port.

    Register-writing instructions are followed by three ``out dest``
    instructions: the first reads the result through the distance-1 bypass,
    the second through the temp (forwarding) register, and the third from
    the register file (the path that passes through MacReg/buffer storage
    and the write-back) — so faults in every forwarding path are
    observable.  The out family needs nothing (it *is* the propagation).
    """
    instr = variant.instruction()
    from repro.dsp.isa import control_word
    cw_fn = control_word if build is None else build.control_word
    if cw_fn(variant.opcode).reg_we:
        return [Instruction(Opcode.OUT, regb=instr.dest)] * 3
    return []


class ObservabilityEngine:
    """Estimates O for every (component, mode) column, per variant."""

    def __init__(self, n_good: int = 25, errors_per_bit: int = 2,
                 window: int = 8, seed: int = 1977,
                 rng_factory: Optional[RngFactory] = None,
                 build=None):
        if n_good < 1:
            raise ConfigError("need at least one good simulation")
        self.n_good = n_good
        self.errors_per_bit = errors_per_bit
        self.window = window
        self.seed = seed
        self.build = build
        # Injected label->Random factory (see ControllabilityEngine).
        self.rng_factory = resolve_factory(seed, rng_factory)

    def _fork(self, state, stuck) -> DspCore:
        if self.build is None:
            return DspCore(state=state, stuck_bits=stuck)
        return self.build.make_core(state=state, stuck_bits=stuck)

    # ------------------------------------------------------------------
    def _run_ports(self, core: DspCore, words: Sequence[int],
                   inject_cycle: Optional[int] = None,
                   component: Optional[str] = None,
                   value: Optional[int] = None,
                   traces: Optional[List[Dict]] = None) -> List[int]:
        """Run ``words``; returns the output-port stream."""
        ports: List[int] = []
        for t, word in enumerate(words):
            overrides = None
            if inject_cycle is not None and t == inject_cycle:
                overrides = {component: value}
            trace: Optional[Dict] = {} if traces is not None else None
            ports.append(core.step(word, overrides=overrides,
                                   trace=trace).port)
            if traces is not None:
                traces.append(trace)
        return ports

    def measure(self, variant: InstructionVariant,
                extra_wrapper: Sequence[Instruction] = ()) -> Dict[Tuple[str, int], float]:
        """Observability per (component, mode) column for ``variant``.

        ``extra_wrapper`` appends additional propagation instructions
        (Phase 2 uses this to test candidate observation sequences, e.g.
        ``outa`` to expose an accumulator).
        """
        rng = self.rng_factory(variant.label)
        observed: Dict[Tuple[str, int], int] = {}
        injected: Dict[Tuple[str, int], int] = {}

        for _ in range(self.n_good):
            setup_rng = random.Random(rng.random())
            core = prepare_core(variant, setup_rng, build=self.build)
            snapshot = core.state.copy()
            stuck = dict(core.stuck_bits)

            wrapper = (observation_wrapper(variant, build=self.build)
                       + list(extra_wrapper))
            words = [encode(variant.instruction(setup_rng))]
            words += [encode(i) for i in wrapper]
            words += [_NOP_WORD] * max(0, self.window - len(words))

            # Clean run, keeping per-cycle traces and post-cycle state
            # snapshots (the latter for storage-corruption injection).
            traces: List[Dict] = []
            clean_ports: List[int] = []
            post_states = []
            for word in words:
                trace: Dict = {}
                clean_ports.append(core.step(word, trace=trace).port)
                traces.append(trace)
                post_states.append(core.state.copy())

            components = (COMPONENTS if self.build is None
                          else self.build.components)
            for spec in components:
                cycle = component_cycle(spec.name, self.build)
                if cycle >= len(traces):
                    continue
                activity = traces[cycle].get(spec.name)
                if activity is None:
                    continue
                key = (spec.name, activity.mode)
                good_value = activity.output
                n_bits = spec.output_width
                for _ in range(self.errors_per_bit * n_bits):
                    bad = rng.randrange(1 << n_bits)
                    if bad == good_value:
                        bad ^= 1 + rng.randrange((1 << n_bits) - 1)
                        bad &= mask(n_bits)
                    if spec.kind == "register":
                        # A storage error: corrupt the stored value after
                        # the instruction's EX cycle; it is observable only
                        # if a later instruction reads the element.
                        forked_state = post_states[cycle].copy()
                        _set_state_element(forked_state, spec.state_key, bad)
                        forked = self._fork(forked_state, stuck)
                        ports = clean_ports[:cycle + 1] + self._run_ports(
                            forked, words[cycle + 1:]
                        )
                    else:
                        forked = self._fork(snapshot.copy(), stuck)
                        ports = self._run_ports(
                            forked, words, inject_cycle=cycle,
                            component=spec.name, value=bad,
                        )
                    injected[key] = injected.get(key, 0) + 1
                    if ports != clean_ports:
                        observed[key] = observed.get(key, 0) + 1

        return {
            key: observed.get(key, 0) / count
            for key, count in injected.items()
        }


def _set_state_element(state, state_key, value: int) -> None:
    """Write ``value`` into the state element named by ``state_key``."""
    kind = state_key[0]
    if kind == "acc_a":
        state.acc_a = value
    elif kind == "acc_b":
        state.acc_b = value
    elif kind == "macreg":
        state.macreg = value
    elif kind == "buffer":
        state.buffer = value
    elif kind == "temp":
        state.temp = value
    elif kind == "reg":
        state.regs[state_key[1]] = value
    else:
        raise ConfigError(f"unknown state element {state_key!r}")
