"""Two-level truth-table logic, used for the DSP control decoder.

Given a truth table mapping input words to output words, builds minterm
AND gates and per-output OR gates — the sum-of-products network a simple
synthesis of a decoder would produce.  Unspecified input values produce
all-zero outputs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist


def truth_table_logic(b: NetlistBuilder, inputs: List[int],
                      out_width: int, table: Mapping[int, int],
                      prefix: str = "tt") -> List[int]:
    """Build SOP logic for ``table`` inside an existing builder.

    ``inputs`` are the input nets (LSB first); returns ``out_width`` output
    nets.  Rows mapping to zero are skipped (no minterm built).
    """
    inverted = [b.not_(bit) for bit in inputs]
    minterms: Dict[int, int] = {}
    for value, out_word in table.items():
        if value >= (1 << len(inputs)):
            raise ValueError(f"table row {value} exceeds input width")
        if out_word == 0:
            continue
        terms = [
            inputs[i] if (value >> i) & 1 else inverted[i]
            for i in range(len(inputs))
        ]
        minterms[value] = b.and_(*terms, name=f"{prefix}_m{value}")
    outputs: List[int] = []
    for j in range(out_width):
        sources = [
            net for value, net in minterms.items()
            if (table[value] >> j) & 1
        ]
        if not sources:
            outputs.append(b.const0())
        elif len(sources) == 1:
            outputs.append(b.buf(sources[0], name=f"{prefix}_o{j}"))
        else:
            outputs.append(b.or_(*sources, name=f"{prefix}_o{j}"))
    return outputs


def make_truth_table_logic(in_width: int, out_width: int,
                           table: Mapping[int, int],
                           name: str = "decoder") -> Netlist:
    """Standalone truth-table netlist: bus ``in`` → ``out``."""
    b = NetlistBuilder(name)
    inputs = b.input_bus("in", in_width)
    outputs = truth_table_logic(b, inputs, out_width, table, prefix=name)
    b.output_bus("out", outputs)
    return b.finish()
