"""Signed array multiplier with sign extension.

The paper's MAC contains an 8-bit multiplier "that outputs a sign extended
product to 18 bits".  We build the classic shift-and-add array for a two's
complement multiplicand: partial product *i* is the sign-extended
multiplicand ANDed with multiplier bit *i* and shifted left by *i*; the
top partial product (the multiplier's sign bit) is *subtracted* instead of
added.  The result is the exact ``n×n → 2n``-bit two's complement product,
then sign-extended to the requested output width with buffers.
"""

from __future__ import annotations

from typing import List

from repro._util import to_signed, to_unsigned
from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist
from repro.rtl.arith import ripple_adder


def multiplier_into(b: NetlistBuilder, a_bus: List[int], b_bus: List[int],
                    out_width: int = 18) -> List[int]:
    """Build the signed array multiplier inside an existing builder.

    Returns the ``out_width``-wide product bus (two's complement product
    sign-extended from ``2n`` bits).  Partial products are added over their
    live bit ranges only (the bits below each shift pass through), so the
    array contains no dead padding logic.
    """
    n = len(a_bus)
    if len(b_bus) != n:
        raise ValueError("multiplier operands must have equal width")
    prod_w = 2 * n
    if out_width < prod_w:
        raise ValueError(f"out_width {out_width} < product width {prod_w}")
    # Sign-extend the multiplicand to the product width once.
    a_ext = list(a_bus) + [b.buf(a_bus[-1]) for _ in range(prod_w - n)]

    def row(bit: int, shift: int) -> List[int]:
        """Partial product bits over the live range [shift, prod_w)."""
        return [b.and_(bit, a_ext[j]) for j in range(prod_w - shift)]

    acc = row(b_bus[0], 0)
    for i in range(1, n - 1):
        pp = row(b_bus[i], i)
        upper, _ = ripple_adder(b, acc[i:], pp, b.const0(),
                                drop_final_carry=True)
        acc = acc[:i] + upper
    # Two's complement: subtract the sign partial product (invert, carry 1).
    inverted = [b.not_(bit) for bit in row(b_bus[n - 1], n - 1)]
    upper, _ = ripple_adder(b, acc[n - 1:], inverted, b.const1(),
                            drop_final_carry=True)
    acc = acc[:n - 1] + upper

    # Sign-extend the product to the output width with buffers.
    return list(acc) + [b.buf(acc[-1]) for _ in range(out_width - prod_w)]


def make_multiplier(n: int = 8, out_width: int = 18,
                    name: str = "multiplier") -> Netlist:
    """Signed ``n×n`` multiplier: buses ``a``, ``b`` → ``p`` (``out_width``)."""
    b = NetlistBuilder(name)
    a_bus = b.input_bus("a", n)
    b_bus = b.input_bus("b", n)
    out = multiplier_into(b, a_bus, b_bus, out_width)
    b.output_bus("p", out)
    return b.finish()


def multiplier_reference(a: int, bb: int, n: int = 8, out_width: int = 18) -> int:
    """Word-level model of :func:`make_multiplier`."""
    product = to_signed(a, n) * to_signed(bb, n)
    return to_unsigned(product, out_width)


def make_multiplier_mod(n: int = 8, name: str = "multiplier_mod") -> Netlist:
    """``n×n`` multiplier keeping only the low ``n`` product bits.

    Modulo ``2**n`` the signed and unsigned products coincide, so no sign
    correction is needed; partial products are accumulated over their live
    ranges only.  Used by the simple Fig. 1 datapath, whose whole datapath
    is ``n`` bits wide.
    """
    b = NetlistBuilder(name)
    a_bus = b.input_bus("a", n)
    b_bus = b.input_bus("b", n)
    acc = [b.and_(b_bus[0], a_bus[j]) for j in range(n)]
    for i in range(1, n):
        pp = [b.and_(b_bus[i], a_bus[j]) for j in range(n - i)]
        upper, _ = ripple_adder(b, acc[i:], pp, b.const0(),
                                drop_final_carry=True)
        acc = acc[:i] + upper
    b.output_bus("p", acc)
    return b.finish()


def multiplier_mod_reference(a: int, bb: int, n: int = 8) -> int:
    """Word-level model of :func:`make_multiplier_mod`."""
    return (a * bb) & ((1 << n) - 1)
