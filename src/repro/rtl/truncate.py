"""The MAC's truncater.

"The MAC also contains a truncater, which truncates the data to the right
of the decimal point."  In the 18-bit 10.8 internal format that means
zeroing the 8 fractional bits when the truncate control bit is set.
"""

from __future__ import annotations

from repro._util import mask
from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist


def truncater_into(b: NetlistBuilder, data, en: int, frac: int = 8):
    """Build the truncater inside an existing builder; returns the out bus.

    ``out[i] = data[i] AND NOT en`` for fractional bits ``i < frac``;
    integer bits pass through.
    """
    keep = b.not_(en)
    return [
        b.and_(data[i], keep) if i < frac else b.buf(data[i])
        for i in range(len(data))
    ]


def make_truncater(width: int = 18, frac: int = 8,
                   name: str = "truncater") -> Netlist:
    """Truncater netlist: buses ``data``, ``en`` → ``out``."""
    b = NetlistBuilder(name)
    data = b.input_bus("data", width)
    en = b.input("en")
    out = truncater_into(b, data, en, frac)
    b.output_bus("out", out)
    return b.finish()


def truncater_reference(data: int, en: int, width: int = 18, frac: int = 8) -> int:
    """Word-level model of :func:`make_truncater`."""
    data &= mask(width)
    if en:
        return data & ~mask(frac)
    return data
