"""Registers with write enable and the 16×8 register file.

The register file follows the paper's description: sixteen 8-bit registers,
two read ports (operands A and B) and one write port.  Structurally it is a
write-address decoder, per-register enabled registers, and two 16:1 read
mux trees — the same shape synthesis would produce without a RAM macro.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.logic.builder import NetlistBuilder
from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


def enabled_register(b: NetlistBuilder, d: Sequence[int], en: int,
                     name: str) -> List[int]:
    """A register bank that loads ``d`` when ``en`` is high, else holds."""
    qs: List[int] = []
    loop_nets = [b.net(f"{name}_d{i}") for i in range(len(d))]
    for i, d_bit in enumerate(d):
        q = b.net(f"{name}[{i}]")
        b.netlist.add_dff(q, loop_nets[i], 0)
        # next = en ? d : q  (built inline so the mux drives the declared net)
        nsel = b.not_(en)
        hold = b.and_(q, nsel)
        load = b.and_(d_bit, en)
        b.netlist.add_gate(GateType.OR, loop_nets[i], (hold, load))
        qs.append(q)
    b.netlist.add_bus(name, qs)
    return qs


def make_register(width: int, name: str = "register") -> Netlist:
    """Enabled register netlist: buses ``d``, ``en`` → ``q``."""
    b = NetlistBuilder(name)
    d = b.input_bus("d", width)
    en = b.input("en")
    qs = enabled_register(b, d, en, "q")
    for q in qs:
        b.netlist.add_output(q)
    return b.finish()


def register_reference(q: int, d: int, en: int) -> int:
    """Word-level model of one clock edge of :func:`make_register`."""
    return d if en else q


def _address_decoder(b: NetlistBuilder, addr: Sequence[int],
                     n: int) -> List[int]:
    """One-hot decode of an address bus into ``n`` select lines."""
    inverted = [b.not_(bit) for bit in addr]
    selects: List[int] = []
    for value in range(n):
        terms = [
            addr[i] if (value >> i) & 1 else inverted[i]
            for i in range(len(addr))
        ]
        selects.append(b.and_(*terms))
    return selects


def _read_mux_tree(b: NetlistBuilder, addr: Sequence[int],
                   words: Sequence[Sequence[int]]) -> List[int]:
    """Binary mux tree selecting ``words[addr]``."""
    level = [list(w) for w in words]
    for bit in addr:
        level = [
            b.mux2_bus(bit, level[2 * i], level[2 * i + 1])
            for i in range(len(level) // 2)
        ]
    return level[0]


def register_file_into(b: NetlistBuilder, wdata: Sequence[int],
                       waddr: Sequence[int], wen: int,
                       raddr_a: Sequence[int], raddr_b: Sequence[int],
                       n_regs: int = 16,
                       prefix: str = "rf") -> "Tuple[List[int], List[int]]":
    """Build the register file inside an existing builder.

    Returns ``(rdata_a, rdata_b)``.  Reads see the *current* stored values
    (the write takes effect at the clock edge).
    """
    if n_regs & (n_regs - 1):
        raise ValueError("n_regs must be a power of two")
    selects = _address_decoder(b, waddr, n_regs)
    regs: List[List[int]] = []
    for r in range(n_regs):
        en = b.and_(selects[r], wen)
        regs.append(enabled_register(b, wdata, en, f"{prefix}_r{r}"))
    rdata_a = _read_mux_tree(b, raddr_a, regs)
    rdata_b = _read_mux_tree(b, raddr_b, regs)
    return rdata_a, rdata_b


def make_register_file(n_regs: int = 16, width: int = 8,
                       name: str = "regfile") -> Netlist:
    """Register file netlist.

    Buses: ``wdata`` (write data), ``waddr``, ``wen``, ``raddr_a``,
    ``raddr_b`` → ``rdata_a``, ``rdata_b``.
    """
    if n_regs & (n_regs - 1):
        raise ValueError("n_regs must be a power of two")
    addr_w = n_regs.bit_length() - 1
    b = NetlistBuilder(name)
    wdata = b.input_bus("wdata", width)
    waddr = b.input_bus("waddr", addr_w)
    wen = b.input("wen")
    raddr_a = b.input_bus("raddr_a", addr_w)
    raddr_b = b.input_bus("raddr_b", addr_w)
    rdata_a, rdata_b = register_file_into(
        b, wdata, waddr, wen, raddr_a, raddr_b, n_regs
    )
    b.output_bus("rdata_a", rdata_a)
    b.output_bus("rdata_b", rdata_b)
    return b.finish()
