"""Structural RTL component library.

Each module provides factory functions that build standalone gate-level
netlists for one datapath component, with named input/output buses.  These
netlists play the role of the synthesised (Design Compiler) blocks in the
paper: they define the stuck-at fault universe of each component and are
what the fault simulators grade.

Word-level reference models (``*_reference`` functions) accompany every
generator and are used by tests and by the behavioural DSP core, keeping the
behavioural and gate-level views in lock-step.
"""

from repro.rtl.arith import (
    make_adder,
    make_addsub,
    ripple_adder,
    addsub_reference,
)
from repro.rtl.multiplier import make_multiplier, multiplier_reference
from repro.rtl.shifter import make_shifter, shifter_reference, SHIFT_MODES
from repro.rtl.saturate import make_limiter, limiter_reference
from repro.rtl.truncate import make_truncater, truncater_reference
from repro.rtl.mux import make_mux2_bus, mux2_reference
from repro.rtl.register import (
    make_register,
    make_register_file,
    register_reference,
)
from repro.rtl.decoder import make_truth_table_logic

__all__ = [
    "make_adder",
    "make_addsub",
    "ripple_adder",
    "addsub_reference",
    "make_multiplier",
    "multiplier_reference",
    "make_shifter",
    "shifter_reference",
    "SHIFT_MODES",
    "make_limiter",
    "limiter_reference",
    "make_truncater",
    "truncater_reference",
    "make_mux2_bus",
    "mux2_reference",
    "make_register",
    "make_register_file",
    "register_reference",
    "make_truth_table_logic",
]
