"""Standalone bus multiplexers.

The MAC datapath's MUXa, MUXb, MUXg and MUX7 are all 2:1 bus muxes; this
module provides the standalone netlist used as their fault universe (the
builder's inline :meth:`~repro.logic.builder.NetlistBuilder.mux2_bus` is
used when assembling the flat core).
"""

from __future__ import annotations

from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist


def make_mux2_bus(width: int, name: str = "mux2") -> Netlist:
    """2:1 bus mux netlist: buses ``a``, ``b``, ``sel`` → ``out``.

    ``out = sel ? b : a``.
    """
    b = NetlistBuilder(name)
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    sel = b.input("sel")
    out = b.mux2_bus(sel, a_bus, b_bus)
    b.output_bus("out", out)
    return b.finish()


def mux2_reference(sel: int, a: int, b: int) -> int:
    """Word-level model of :func:`make_mux2_bus`."""
    return b if sel else a


def make_gated_bus(width: int, invert_enable: bool = False,
                   name: str = "gated") -> Netlist:
    """A bus clear gate: ``out = data & en`` (or ``& ~en``).

    This is what a 2:1 mux degenerates to when one leg is tied to zero —
    the real structure of the MAC's MUXa (zero when ``muxa_zero``) and
    MUXb (zero unless ``muxb_shift``).
    """
    b = NetlistBuilder(name)
    data = b.input_bus("data", width)
    en = b.input("en")
    gate = b.not_(en) if invert_enable else b.buf(en)
    out = [b.and_(bit, gate) for bit in data]
    b.output_bus("out", out)
    return b.finish()


def gated_bus_reference(data: int, en: int, invert_enable: bool = False) -> int:
    """Word-level model of :func:`make_gated_bus`."""
    active = (not en) if invert_enable else bool(en)
    return data if active else 0
