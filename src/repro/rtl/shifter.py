"""The MAC's arithmetic shifter.

Per the paper, the shifter is controlled by two control bits (``c`` and
``d``) and "the direction and amount of shift is determined by the four bit
signed integer from the A input".  We define the four modes as:

======  =====================================================
mode    behaviour
======  =====================================================
``00``  pass-through (the accumulate feedback path)
``01``  shift by the signed 4-bit amount: positive = left
        (logical, zero fill), negative = arithmetic right
``10``  shift left by one
``11``  arithmetic shift right by one
======  =====================================================

Modes ``10``/``11`` exist in the hardware but — exactly as in the paper —
no instruction of the DSP core ever selects them, which is what the
Phase 2 "unreachable mode" elimination and the Phase 3 control-bit
constraint study (experiment E2) are about.
"""

from __future__ import annotations

from typing import List, Sequence

from repro._util import mask, to_signed, to_unsigned
from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist
from repro.rtl.arith import incrementer

#: mode encoding → human-readable label
SHIFT_MODES = {0: "00", 1: "01", 2: "10", 3: "11"}


def _barrel_left(b: NetlistBuilder, data: List[int],
                 amount: Sequence[int]) -> List[int]:
    """Logical left barrel shifter (zero fill) by the magnitude bits.

    Zero-filled positions reduce the 2:1 mux to a clear gate
    (``out = in AND NOT sel``) — a full mux against a constant would carry
    untestable faults.
    """
    current = data
    for k, sel in enumerate(amount):
        step = 1 << k
        nsel = b.not_(sel)
        current = [
            b.and_(current[j], nsel) if j < step
            else b.mux2(sel, current[j], current[j - step])
            for j in range(len(current))
        ]
    return current


def _barrel_right_arith(b: NetlistBuilder, data: List[int],
                        amount: Sequence[int]) -> List[int]:
    """Arithmetic right barrel shifter (sign fill) by a 4-bit magnitude.

    The MSB always equals the sign whatever the shift, so no mux is built
    for it (a mux of a net with itself would be untestable logic).
    """
    current = data
    for k, sel in enumerate(amount):
        step = 1 << k
        sign = current[-1]
        shifted = [
            current[j + step] if j + step < len(current) else sign
            for j in range(len(current))
        ]
        current = [
            cur if cur == shift else b.mux2(sel, cur, shift)
            for cur, shift in zip(current, shifted)
        ]
    return current


def shifter_into(b: NetlistBuilder, data: List[int], amt: List[int],
                 mode: List[int]) -> List[int]:
    """Build the 4-mode arithmetic shifter inside an existing builder.

    All four modes share one pair of barrel networks — the mode logic only
    selects the *effective amount* (0 for pass, |amt| for mode 01, 1 for
    the fixed shifts) and the direction.  This matches what synthesis does
    and is what makes the paper's control-bit constraint study come out
    the way it does: excluding modes "10"/"11" orphans only the handful of
    gates that produce their effective amount, while excluding mode "01"
    kills the test access to most of the barrel stages.
    """
    amt_width = len(amt)
    m0, m1 = mode[0], mode[1]

    # Magnitude of the signed amount: negate when the sign bit is set
    # (conditional invert + increment).  The top magnitude bit is just the
    # increment carry: it is set only for amt = -8.
    sign = amt[-1]
    inverted = [b.xor(amt[i], sign) for i in range(amt_width - 1)]
    magnitude = []
    carry = sign
    for i, bit in enumerate(inverted):
        magnitude.append(b.xor(bit, carry))
        carry = b.and_(bit, carry)
    magnitude.append(carry)

    # Effective amount: mode 01 -> |amt|; modes 10/11 -> 1; mode 00 -> 0.
    mode01 = b.and_(b.not_(m1), m0)
    eff_amt = [b.mux2(mode01, m1, magnitude[0])]
    eff_amt += [b.and_(mode01, magnitude[k]) for k in range(1, amt_width)]

    # Direction: mode 01 follows the amount's sign; mode 11 is the only
    # other right shift.
    mode11 = b.and_(m1, m0)
    dir_right = b.mux2(mode01, mode11, sign)

    # Left shifts never exceed +7 (the most positive 4-bit amount), so the
    # left barrel needs no shift-by-8 stage; magnitude 8 only arises for
    # amt = -8, which is a right shift.
    left = _barrel_left(b, data, eff_amt[:amt_width - 1])
    right = _barrel_right_arith(b, data, eff_amt)
    return b.mux2_bus(dir_right, left, right)


def dedicated_shifter_into(b: NetlistBuilder, data: List[int],
                           amt: List[int], mode: List[int]) -> List[int]:
    """Per-mode ("dedicated") implementation of the same shifter.

    Word-level behaviour is identical to :func:`shifter_into`, but each
    mode owns its datapath: the pass-through and the fixed ±1 shifts are
    pure wiring, the variable mode drives its own pair of barrels, and a
    final 4:1 mux selects by the raw mode bits.  This is the area-heavier
    point of the core family's shifter axis — the shared effective-amount
    logic of the barrel variant is exactly what it does *not* have, so
    the two variants distribute testability very differently across the
    mode columns.
    """
    width = len(data)
    amt_width = len(amt)
    zero = b.const0()

    # Mode 00: pass-through (buffered so the mux leg is its own site).
    pass_out = [b.buf(bit) for bit in data]
    # Mode 10: fixed logical left by one.  Mode 11: fixed arithmetic
    # right by one.  Both are wiring; buffers keep the legs distinct.
    left1 = [b.buf(zero)] + [b.buf(data[j]) for j in range(width - 1)]
    right1 = ([b.buf(data[j + 1]) for j in range(width - 1)]
              + [b.buf(data[width - 1])])

    # Mode 01: signed variable shift with its own magnitude negator and
    # its own left/right barrels.
    sign = amt[-1]
    inverted = [b.xor(amt[i], sign) for i in range(amt_width - 1)]
    magnitude = []
    carry = sign
    for bit in inverted:
        magnitude.append(b.xor(bit, carry))
        carry = b.and_(bit, carry)
    magnitude.append(carry)
    var_left = _barrel_left(b, data, magnitude[:amt_width - 1])
    var_right = _barrel_right_arith(b, data, magnitude)
    var_out = b.mux2_bus(sign, var_left, var_right)

    return b.mux4_bus(list(mode), [pass_out, var_out, left1, right1])


def make_shifter(width: int = 18, amt_width: int = 4,
                 name: str = "shifter", style: str = "barrel") -> Netlist:
    """Shifter netlist: buses ``data``, ``amt``, ``mode`` → ``out``.

    ``style`` selects the implementation: ``"barrel"`` (shared barrels,
    the paper core) or ``"dedicated"`` (per-mode datapaths).
    """
    builders = {"barrel": shifter_into, "dedicated": dedicated_shifter_into}
    if style not in builders:
        raise ValueError(f"unknown shifter style {style!r}")
    b = NetlistBuilder(name)
    data = b.input_bus("data", width)
    amt = b.input_bus("amt", amt_width)
    mode = b.input_bus("mode", 2)
    out = builders[style](b, data, amt, mode)
    b.output_bus("out", out)
    return b.finish()


def shifter_reference(data: int, amt: int, mode: int,
                      width: int = 18, amt_width: int = 4) -> int:
    """Word-level model of :func:`make_shifter`."""
    data &= mask(width)
    signed_data = to_signed(data, width)
    if mode == 0:
        return data
    if mode == 2:
        return (data << 1) & mask(width)
    if mode == 3:
        return to_unsigned(signed_data >> 1, width)
    if mode == 1:
        amount = to_signed(amt, amt_width)
        if amount >= 0:
            return (data << amount) & mask(width)
        return to_unsigned(signed_data >> (-amount), width)
    raise ValueError(f"bad shifter mode {mode}")
