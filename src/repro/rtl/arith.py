"""Ripple-carry adders and the MAC's adder/subtracter.

The adder/subtracter computes ``result = a + b`` or ``result = a - b``
depending on the ``sub`` control input, implemented the classic way: XOR the
second operand with ``sub`` and feed ``sub`` as carry-in.  Widths are
parametric; the DSP core instantiates it at 18 bits (the paper's
accumulator width).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro._util import to_unsigned
from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist


def full_adder(b: NetlistBuilder, a: int, bb: int, cin: int) -> Tuple[int, int]:
    """One full adder; returns ``(sum, carry_out)`` nets."""
    axb = b.xor(a, bb)
    s = b.xor(axb, cin)
    carry = b.or_(b.and_(a, bb), b.and_(axb, cin))
    return s, carry


def ripple_adder(
    b: NetlistBuilder,
    a: Sequence[int],
    bb: Sequence[int],
    cin: int,
    drop_final_carry: bool = False,
) -> Tuple[List[int], Optional[int]]:
    """Ripple-carry add two equal-width buses; returns ``(sum_bus, cout)``.

    With ``drop_final_carry`` the most significant stage builds only the sum
    XOR (no carry gates), avoiding dead logic — and therefore untestable
    faults — when the caller discards the carry-out.
    """
    if len(a) != len(bb):
        raise ValueError(f"adder width mismatch: {len(a)} vs {len(bb)}")
    total: List[int] = []
    carry: Optional[int] = cin
    carry_const = b.const_value(cin)
    for i, (ai, bi) in enumerate(zip(a, bb)):
        last = i == len(a) - 1
        if last and drop_final_carry:
            if carry_const == 0:
                total.append(b.xor(ai, bi))
            elif carry_const == 1:
                total.append(b.xnor(ai, bi))
            else:
                total.append(b.xor(b.xor(ai, bi), carry))
            carry = None
        elif carry_const == 0:
            # Constant-zero carry-in: the stage degenerates to a half adder
            # (a full adder here would carry untestable faults).
            total.append(b.xor(ai, bi))
            carry = b.and_(ai, bi)
            carry_const = None
        elif carry_const == 1:
            total.append(b.xnor(ai, bi))
            carry = b.or_(ai, bi)
            carry_const = None
        else:
            s, carry = full_adder(b, ai, bi, carry)
            total.append(s)
    return total, carry


def incrementer(
    b: NetlistBuilder,
    a: Sequence[int],
    cin: int,
) -> List[int]:
    """Add a single carry-in bit to a bus (no carry-out).

    Cheaper than a full ripple adder against a constant-zero bus, and —
    unlike that construction — free of untestable half-dead logic.
    """
    total: List[int] = []
    carry = cin
    for i, bit in enumerate(a):
        total.append(b.xor(bit, carry))
        if i < len(a) - 1:
            carry = b.and_(bit, carry)
    return total


def carry_select_adder(
    b: NetlistBuilder,
    a: Sequence[int],
    bb: Sequence[int],
    cin: int,
    block: int = 4,
    drop_final_carry: bool = False,
) -> Tuple[List[int], Optional[int]]:
    """Carry-select add: ripple blocks computed for both carry-ins, the
    real carry picking each block's result through muxes.

    Word-level behaviour matches :func:`ripple_adder`; the structure is
    the core family's "carry-select" MAC adder variant (shorter carry
    chain, more area).  The first block rides the real carry-in directly —
    duplicating it against constants would only add untestable logic.
    """
    if len(a) != len(bb):
        raise ValueError(f"adder width mismatch: {len(a)} vs {len(bb)}")
    if block < 1:
        raise ValueError(f"carry-select block must be >= 1, got {block}")
    total: List[int] = []
    carry: Optional[int] = None
    for start in range(0, len(a), block):
        a_blk = list(a[start:start + block])
        b_blk = list(bb[start:start + block])
        last_block = start + block >= len(a)
        drop = drop_final_carry and last_block
        if start == 0:
            sum_blk, carry = ripple_adder(b, a_blk, b_blk, cin, drop)
        else:
            sum0, c0 = ripple_adder(b, a_blk, b_blk, b.const0(), drop)
            sum1, c1 = ripple_adder(b, a_blk, b_blk, b.const1(), drop)
            sum_blk = b.mux2_bus(carry, sum0, sum1)
            carry = None if drop else b.mux2(carry, c0, c1)
        total.extend(sum_blk)
    return total, carry


def make_adder(width: int, name: str = "adder") -> Netlist:
    """Standalone adder netlist: buses ``a``, ``b``, ``cin`` → ``sum``, ``cout``."""
    b = NetlistBuilder(name)
    a = b.input_bus("a", width)
    bb = b.input_bus("b", width)
    cin = b.input("cin")
    total, cout = ripple_adder(b, a, bb, cin)
    b.output_bus("sum", total)
    b.output(cout)
    b.netlist.add_bus("cout", [cout])
    return b.finish()


#: Adder implementations selectable by the core family's ``adder`` axis.
ADDER_STYLES = ("ripple", "carry-select")


def adder_into(b: NetlistBuilder, a: Sequence[int], bb: Sequence[int],
               cin: int, style: str = "ripple",
               drop_final_carry: bool = False,
               ) -> Tuple[List[int], Optional[int]]:
    """Add two buses with the named adder structure."""
    if style == "ripple":
        return ripple_adder(b, a, bb, cin, drop_final_carry)
    if style == "carry-select":
        return carry_select_adder(b, a, bb, cin,
                                  drop_final_carry=drop_final_carry)
    raise ValueError(f"unknown adder style {style!r}")


def make_addsub(width: int, name: str = "addsub",
                adder: str = "ripple") -> Netlist:
    """Adder/subtracter netlist: ``a``, ``b``, ``sub`` → ``result``.

    ``result = a + b`` when ``sub = 0`` and ``a - b`` when ``sub = 1``
    (two's complement wrap-around, no flags).  ``adder`` picks the carry
    structure (see :data:`ADDER_STYLES`).
    """
    b = NetlistBuilder(name)
    a = b.input_bus("a", width)
    bb = b.input_bus("b", width)
    sub = b.input("sub")
    b_inverted = [b.xor(bit, sub) for bit in bb]
    total, _ = adder_into(b, a, b_inverted, sub, adder,
                          drop_final_carry=True)
    b.output_bus("result", total)
    return b.finish()


def addsub_reference(a: int, bb: int, sub: int, width: int) -> int:
    """Word-level model of :func:`make_addsub`."""
    if sub:
        return to_unsigned(a - bb, width)
    return to_unsigned(a + bb, width)
