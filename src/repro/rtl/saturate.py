"""The MAC's limiter (saturator).

"The limiter clips the maximum positive and negative values of the 18-bit
input integer producing an 8-bit output integer."  The 18-bit accumulator
value is in 10.8 fixed point; the 8-bit output is in 4.4 fixed point, i.e.
the output window is bits ``[11:4]``.  If the value does not fit the window
the output saturates to ``0x7F`` (most positive) or ``0x80`` (most
negative).
"""

from __future__ import annotations

from repro._util import bits, mask, to_signed
from repro.logic.builder import NetlistBuilder
from repro.logic.netlist import Netlist


def limiter_into(b: NetlistBuilder, data, out_width: int = 8,
                 frac_drop: int = 4):
    """Build the limiter inside an existing builder; returns the out bus."""
    in_width = len(data)
    top = frac_drop + out_width - 1  # index of the window's sign bit
    if top >= in_width - 1:
        raise ValueError("window does not leave room for overflow bits")
    sign = data[in_width - 1]
    upper = data[top:in_width - 1]  # bits between window sign and input sign
    any_upper = b.or_(*upper) if len(upper) > 1 else b.buf(upper[0])
    all_upper = b.and_(*upper) if len(upper) > 1 else b.buf(upper[0])
    pos_ovf = b.and_(b.not_(sign), any_upper)
    neg_ovf = b.and_(sign, b.not_(all_upper))
    ovf = b.or_(pos_ovf, neg_ovf)
    out = []
    for i in range(out_width):
        # Saturated value: 0x80 when negative overflow, 0x7F when positive.
        sat_bit = neg_ovf if i == out_width - 1 else pos_ovf
        out.append(b.mux2(ovf, data[frac_drop + i], sat_bit))
    return out


def make_limiter(in_width: int = 18, out_width: int = 8, frac_drop: int = 4,
                 name: str = "limiter") -> Netlist:
    """Limiter netlist: bus ``data`` (``in_width``) → ``out`` (``out_width``).

    ``frac_drop`` is how many low (fractional) bits the window discards; the
    window is ``data[frac_drop + out_width - 1 : frac_drop]``.
    """
    b = NetlistBuilder(name)
    data = b.input_bus("data", in_width)
    out = limiter_into(b, data, out_width, frac_drop)
    b.output_bus("out", out)
    return b.finish()


def limiter_reference(data: int, in_width: int = 18, out_width: int = 8,
                      frac_drop: int = 4) -> int:
    """Word-level model of :func:`make_limiter`."""
    value = to_signed(data, in_width)
    window = value >> frac_drop  # arithmetic shift keeps the sign
    max_out = (1 << (out_width - 1)) - 1
    min_out = -(1 << (out_width - 1))
    if window > max_out:
        return max_out & mask(out_width)
    if window < min_out:
        return min_out & mask(out_width)
    return bits(data, frac_drop + out_width - 1, frac_drop)
