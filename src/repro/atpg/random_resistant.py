"""Random-pattern-resistant fault identification and targeting.

Phase 3's third enhancement: "Some components may contain random resistant
faults, which still may not be detected after looping through the test
program a reasonable amount of times...  ATPG is used specifically on that
component to find which test patterns are needed."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import Fault, collapse_faults
from repro.logic.netlist import Netlist
from repro.atpg.podem import Podem, PodemResult


def find_random_resistant(
    netlist: Netlist,
    n_patterns: int = 4096,
    seed: int = 23,
    pattern_sampler=None,
    rng: Optional[random.Random] = None,
) -> List[Fault]:
    """Faults of ``netlist`` not detected by ``n_patterns`` random patterns.

    ``pattern_sampler(rng) -> {bus: word}`` customises the distribution
    (e.g. restricting control modes); default is uniform on every input
    bus.  ``rng`` overrides the default seed-derived stream.
    """
    rng = rng if rng is not None else random.Random(seed)
    input_buses = [
        (name, nets) for name, nets in netlist.buses.items()
        if all(n in netlist.inputs for n in nets)
    ]

    def default_sampler(r):
        return {name: r.randrange(1 << len(nets))
                for name, nets in input_buses}

    sampler = pattern_sampler or default_sampler
    sim = CombFaultSimulator(netlist, collapse_faults(netlist))
    block = 256
    blocks = []
    for start in range(0, n_patterns, block):
        count = min(block, n_patterns - start)
        words: Dict[str, List[int]] = {name: [] for name, _ in input_buses}
        for _ in range(count):
            sample = sampler(rng)
            for name, _nets in input_buses:
                words[name].append(sample[name])
        blocks.append(words)
    first = sim.run_with_dropping(blocks)
    return [f for f, t in first.items() if t is None]


@dataclass
class TargetedFault:
    """ATPG outcome for one random-resistant fault."""

    fault: Fault
    result: PodemResult

    @property
    def pattern(self) -> Optional[Dict[int, int]]:
        return self.result.pattern


def target_random_resistant(
    netlist: Netlist,
    faults: Sequence[Fault],
    backtrack_limit: int = 2000,
    guided: bool = False,
) -> List[TargetedFault]:
    """Run PODEM on each random-resistant fault of a component.

    ``guided=True`` steers the search with the SCOAP cost model from
    :mod:`repro.analysis.testability` — apt here, since random-resistant
    faults are exactly the ones the static model predicts to be hard.
    """
    engine = Podem(netlist, backtrack_limit=backtrack_limit, guided=guided)
    return [TargetedFault(fault=f, result=engine.generate(f)) for f in faults]
