"""Time-frame expansion of sequential netlists.

Unrolls a sequential netlist into ``n_frames`` combinational copies: frame
*i*'s flip-flop outputs are driven by frame *i−1*'s flip-flop inputs, and
frame 0's start from the declared reset values.  The result is the
combinational model sequential ATPG runs PODEM on — a physical fault maps
to one fault site per frame (see :meth:`fault_sites`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.faults.model import Fault
from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


@dataclass
class UnrolledNetlist:
    """A combinational expansion of a sequential netlist."""

    netlist: Netlist
    n_frames: int
    #: (frame, original net id) -> unrolled net id
    net_map: Dict[Tuple[int, int], int]
    original: Netlist

    def fault_sites(self, fault: Fault) -> List[Fault]:
        """The per-frame replicas of a physical stuck-at fault."""
        return [
            Fault(self.net_map[(frame, fault.net)], fault.stuck_at)
            for frame in range(self.n_frames)
        ]

    def frame_bus(self, frame: int, name: str) -> List[int]:
        """An original bus's nets within one frame."""
        return [self.net_map[(frame, n)] for n in self.original.buses[name]]


def unroll(netlist: Netlist, n_frames: int) -> UnrolledNetlist:
    """Expand ``netlist`` over ``n_frames`` clock cycles."""
    if n_frames < 1:
        raise ValueError("need at least one frame")
    out = Netlist(f"{netlist.name}_x{n_frames}")
    net_map: Dict[Tuple[int, int], int] = {}

    def frame_net(frame: int, net: int) -> int:
        key = (frame, net)
        if key not in net_map:
            name = f"f{frame}/{netlist.net_names[net]}"
            net_map[key] = out.add_net(name)
        return net_map[key]

    prev_dff_d: Dict[int, int] = {}
    for frame in range(n_frames):
        for net in netlist.inputs:
            out.add_input(frame_net(frame, net))
        for dff in netlist.dffs:
            q = frame_net(frame, dff.q)
            if frame == 0:
                kind = GateType.CONST1 if dff.init else GateType.CONST0
                out.add_gate(kind, q, ())
            else:
                out.add_gate(GateType.BUF, q, (prev_dff_d[dff.q],))
        for gate in netlist.gates:
            out.add_gate(
                gate.kind,
                frame_net(frame, gate.output),
                tuple(frame_net(frame, i) for i in gate.inputs),
            )
        for po in netlist.outputs:
            out.add_output(frame_net(frame, po))
        prev_dff_d = {
            dff.q: frame_net(frame, dff.d) for dff in netlist.dffs
        }

    for name, nets in netlist.buses.items():
        for frame in range(n_frames):
            mapped = [net_map.get((frame, n)) for n in nets]
            if all(m is not None for m in mapped):
                out.add_bus(f"f{frame}/{name}", mapped)
    out.validate()
    return UnrolledNetlist(netlist=out, n_frames=n_frames,
                           net_map=net_map, original=netlist)
