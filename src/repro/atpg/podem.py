"""PODEM combinational ATPG.

Classic PODEM over the project's netlist model, engineered for pure-Python
speed:

* the **good machine** is re-implied with a compiled three-valued
  (bitplane) evaluator (:class:`~repro.logic.compiled.CompiledEvaluator3`);
* the **faulty machine** is an overlay evaluated only over the fault
  sites' transitive fanout cone, which is also where the D-frontier is
  collected;
* decisions are PI-only with objective/backtrace and a backtrack limit.

Multiple fault sites with individual polarities are supported so one
*physical* fault replicated across time frames (sequential ATPG via
:mod:`repro.atpg.unroll`) can be targeted as a unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.faults.model import Fault
from repro.logic.gates import GateType
from repro.logic.netlist import Gate, Netlist

if TYPE_CHECKING:
    from repro.analysis.testability import TestabilityAnalysis

X = None  # unknown

#: Controlling value per gate type (None = no controlling value).
_CONTROLLING = {
    GateType.AND: 0, GateType.NAND: 0,
    GateType.OR: 1, GateType.NOR: 1,
}
#: Gate types whose output inverts the underlying function.
_INVERTING = {
    GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT,
}


def _eval3_scalar(kind: GateType, values: List[Optional[int]]) -> Optional[int]:
    """Three-valued gate evaluation over {0, 1, None}."""
    if kind is GateType.AND or kind is GateType.NAND:
        if any(v == 0 for v in values):
            out = 0
        elif all(v == 1 for v in values):
            out = 1
        else:
            return X
        return out ^ 1 if kind is GateType.NAND else out
    if kind is GateType.OR or kind is GateType.NOR:
        if any(v == 1 for v in values):
            out = 1
        elif all(v == 0 for v in values):
            out = 0
        else:
            return X
        return out ^ 1 if kind is GateType.NOR else out
    if kind is GateType.XOR or kind is GateType.XNOR:
        a, b = values[0], values[1]
        if a is None or b is None:
            return X
        out = a ^ b
        return out ^ 1 if kind is GateType.XNOR else out
    if kind is GateType.NOT:
        v = values[0]
        return X if v is None else v ^ 1
    if kind is GateType.BUF:
        return values[0]
    if kind is GateType.CONST0:
        return 0
    if kind is GateType.CONST1:
        return 1
    raise ValueError(f"unknown gate type {kind!r}")


@dataclass
class PodemResult:
    """Outcome of one PODEM run.

    ``backtracks`` counts decision reversals and ``decisions`` counts PI
    assignments tried; together they make guided-vs-unguided search
    effort measurable (E5 benchmark registry) instead of anecdotal.
    """

    fault_sites: Tuple[Fault, ...]
    pattern: Optional[Dict[int, int]]  # PI net -> value (when detected)
    status: str                        # "detected" | "untestable" | "aborted"
    backtracks: int
    decisions: int = 0

    @property
    def detected(self) -> bool:
        return self.status == "detected"

    def pattern_words(self, netlist: Netlist) -> Dict[str, int]:
        """The pattern as words per input bus (unassigned bits are 0)."""
        if self.pattern is None:
            raise ValueError("no pattern (fault not detected)")
        words: Dict[str, int] = {}
        pi_set = set(netlist.inputs)
        for name, nets in netlist.buses.items():
            if not all(n in pi_set for n in nets):
                continue
            word = 0
            for i, net in enumerate(nets):
                if self.pattern.get(net):
                    word |= 1 << i
            words[name] = word
        return words


class _Machines:
    """Good bitplanes plus the faulty overlay for one implication."""

    __slots__ = ("is1", "is0", "overlay")

    def __init__(self, is1: Sequence[int], is0: Sequence[int],
                 overlay: Dict[int, Optional[int]]):
        self.is1 = is1
        self.is0 = is0
        self.overlay = overlay  # net -> faulty value in {0, 1, None}

    def good(self, net: int) -> Optional[int]:
        if self.is1[net]:
            return 1
        if self.is0[net]:
            return 0
        return X

    def faulty(self, net: int) -> Optional[int]:
        if net in self.overlay:
            return self.overlay[net]
        return self.good(net)


class Podem:
    """PODEM test generation for stuck-at faults on a combinational netlist.

    With ``guided=True`` the objective and backtrace choices are steered
    by a static SCOAP cost model (:mod:`repro.analysis.testability`):
    excitation targets the cheapest-to-justify site, propagation picks
    the D-frontier gate closest to an output (min CO) and justification
    walks through the easiest input when one controlling value suffices
    — or the *hardest* input first when every input is needed, so doomed
    branches fail fast.  ``analysis`` supplies a precomputed model
    (otherwise one is derived from the netlist); unguided behaviour is
    bit-identical to the classic first-X heuristics.
    """

    def __init__(self, netlist: Netlist, backtrack_limit: int = 2000,
                 guided: bool = False,
                 analysis: Optional["TestabilityAnalysis"] = None):
        if netlist.dffs:
            raise ValueError(
                "PODEM needs a combinational netlist; unroll sequential "
                "designs first (repro.atpg.unroll)"
            )
        self.netlist = netlist
        self.order = netlist.levelize()
        self.backtrack_limit = backtrack_limit
        from repro.runtime.cache import compiled_evaluator3
        self._eval3 = compiled_evaluator3(netlist)
        self._driver_gate: Dict[int, Gate] = {
            g.output: g for g in netlist.gates
        }
        self._pi_set = set(netlist.inputs)
        self._po_set = set(netlist.outputs)
        self.guided = guided
        if guided and analysis is None:
            from repro.analysis.testability import analyze_testability
            analysis = analyze_testability(netlist)
        self.analysis = analysis if guided else None

    # ------------------------------------------------------------------
    def generate(self, fault: Fault) -> PodemResult:
        """Generate a pattern for a single stuck-at fault."""
        return self.generate_multi((fault,))

    def generate_multi(self, faults: Sequence[Fault]) -> PodemResult:
        """Generate a pattern for one fault replicated at several sites."""
        sites = {f.net: f.stuck_at for f in faults}
        cone = self._site_cone(frozenset(sites))
        cone_pos = [n for n in (set(g.output for g in cone) | set(sites))
                    if n in self._po_set]

        assignments: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool]] = []
        backtracks = 0
        n_decisions = 0

        machines = self._imply(assignments, sites, cone)
        while True:
            if self._detected(machines, cone_pos):
                return PodemResult(
                    fault_sites=tuple(faults),
                    pattern=dict(assignments),
                    status="detected",
                    backtracks=backtracks,
                    decisions=n_decisions,
                )
            objective = self._objective(machines, sites, cone)
            pi: Optional[Tuple[int, int]] = None
            if objective is not None:
                pi = self._backtrace(*objective, machines)
            if pi is None:
                backtracked = False
                while decisions:
                    net, value, flipped = decisions.pop()
                    del assignments[net]
                    if not flipped:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemResult(tuple(faults), None,
                                               "aborted", backtracks,
                                               n_decisions)
                        decisions.append((net, value ^ 1, True))
                        assignments[net] = value ^ 1
                        backtracked = True
                        break
                if not backtracked:
                    return PodemResult(tuple(faults), None, "untestable",
                                       backtracks, n_decisions)
            else:
                net, value = pi
                assignments[net] = value
                decisions.append((net, value, False))
                n_decisions += 1
            machines = self._imply(assignments, sites, cone)

    # ------------------------------------------------------------------
    def _site_cone(self, sites: FrozenSet[int]) -> List[Gate]:
        """Gates in the transitive fanout of any site, topological order."""
        tainted = set(sites)
        cone: List[Gate] = []
        for gate in self.order:
            if any(i in tainted for i in gate.inputs):
                tainted.add(gate.output)
                cone.append(gate)
        return cone

    def _imply(self, assignments: Dict[int, int], sites: Dict[int, int],
               cone: List[Gate]) -> _Machines:
        """Good machine: compiled full eval.  Faulty: event-driven overlay.

        The overlay only stores nets whose faulty value *differs* from the
        good one, so gates with no overlay input are skipped — for an
        unexcited fault the cone walk degenerates to dictionary probes.
        """
        is1, is0 = self._eval3.run(assignments)
        overlay: Dict[int, Optional[int]] = dict(sites)
        for gate in cone:
            touched = False
            for i in gate.inputs:
                if i in overlay:
                    touched = True
                    break
            if not touched:
                continue
            out = gate.output
            if out in sites:
                continue  # stays forced
            values = []
            for i in gate.inputs:
                if i in overlay:
                    values.append(overlay[i])
                elif is1[i]:
                    values.append(1)
                elif is0[i]:
                    values.append(0)
                else:
                    values.append(X)
            val = _eval3_scalar(gate.kind, values)
            good_out = 1 if is1[out] else (0 if is0[out] else X)
            if val != good_out:
                overlay[out] = val
        return _Machines(is1, is0, overlay)

    def _detected(self, machines: _Machines, cone_pos: Sequence[int]) -> bool:
        for po in cone_pos:
            g = machines.good(po)
            f = machines.faulty(po)
            if g is not X and f is not X and g != f:
                return True
        return False

    def _objective(self, machines: _Machines, sites: Dict[int, int],
                   cone: List[Gate]) -> Optional[Tuple[int, int]]:
        """Next (net, value) goal, or ``None`` on conflict."""
        analysis = self.analysis
        # 1. Excitation: at least one site must carry the opposite of its
        # stuck value in the good machine.
        excited = any(machines.good(n) == (s ^ 1)
                      for n, s in sites.items())
        if not excited:
            best: Optional[Tuple[int, int]] = None
            best_cost = 0.0
            for net, stuck in sites.items():
                if machines.good(net) is not X:
                    continue
                if analysis is None:
                    return net, stuck ^ 1
                cost = analysis.cc(net, stuck ^ 1)
                if best is None or cost < best_cost:
                    best, best_cost = (net, stuck ^ 1), cost
            return best  # None when every site is pinned at its stuck value
        # 2. Propagation: an X side-input of a D-frontier gate (all
        # D-frontier gates lie inside the cone by construction).
        best_goal: Optional[Tuple[int, int]] = None
        best_key: Tuple[float, float] = (0.0, 0.0)
        for gate in cone:
            out = gate.output
            g_out = machines.good(out)
            f_out = machines.faulty(out)
            if g_out is not X and f_out is not X:
                continue  # fully determined (either D already or masked)
            has_d = False
            for i in gate.inputs:
                if i not in machines.overlay and i not in sites:
                    continue
                g = machines.good(i)
                f = machines.faulty(i)
                if g is not X and f is not X and g != f:
                    has_d = True
                    break
            if not has_d:
                continue
            control = _CONTROLLING.get(gate.kind)
            non_controlling = (control ^ 1) if control is not None else 0
            for i in gate.inputs:
                if machines.good(i) is X and i not in machines.overlay:
                    if analysis is None:
                        return i, non_controlling
                    # Guided: drive the D-frontier gate closest to an
                    # output (min CO), and within it set the hardest
                    # side input first so hopeless branches die early.
                    key = (analysis.co[out],
                           -analysis.cc(i, non_controlling))
                    if best_goal is None or key < best_key:
                        best_goal, best_key = (i, non_controlling), key
        return best_goal

    def _backtrace(self, net: int, value: int,
                   machines: _Machines) -> Optional[Tuple[int, int]]:
        """Map an internal objective to a PI assignment.

        Guided mode replaces the first-X input choice with SCOAP costs:
        when one controlling input suffices, walk through the *easiest*
        one; when every input must take the non-controlling value, walk
        through the *hardest* one first.
        """
        good = machines.good
        analysis = self.analysis
        current, target = net, value
        for _ in range(self.netlist.n_nets + 1):
            if current in self._pi_set:
                if good(current) is not X:
                    return None
                return current, target
            gate = self._driver_gate.get(current)
            if gate is None or not gate.inputs:
                return None  # constant or undriven: cannot justify
            if gate.kind in _INVERTING:
                target ^= 1
            if gate.kind in (GateType.XOR, GateType.XNOR):
                other = [i for i in gate.inputs if good(i) is not X]
                known = good(other[0]) if other else 0
                x_inputs = [i for i in gate.inputs if good(i) is X]
                if not x_inputs:
                    return None
                want = target ^ known
                if analysis is not None:
                    current = min(x_inputs,
                                  key=lambda n, w=want: analysis.cc(n, w))
                else:
                    current = x_inputs[0]
                target = want
                continue
            control = _CONTROLLING.get(gate.kind)
            x_inputs = [i for i in gate.inputs if good(i) is X]
            if not x_inputs:
                return None
            if control is not None and target == control:
                if analysis is not None:
                    current = min(
                        x_inputs, key=lambda n, c=control: analysis.cc(n, c))
                else:
                    current = x_inputs[0]
                target = control
            else:
                want = target if control is None else control ^ 1
                if analysis is not None:
                    current = max(x_inputs,
                                  key=lambda n, w=want: analysis.cc(n, w))
                else:
                    current = x_inputs[0]
                target = want
        return None
