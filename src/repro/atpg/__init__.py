"""Automatic test pattern generation.

* :mod:`repro.atpg.podem` — classic PODEM over the project's netlists
  (3-valued dual-machine implication, objective/backtrace, backtrack
  limit).  Used component-level in Phase 3 and as the engine of the
  sequential baseline.
* :mod:`repro.atpg.unroll` — time-frame expansion of sequential netlists
  into combinational ones (the fault is replicated per frame).
* :mod:`repro.atpg.random_resistant` — identify faults that survive random
  patterns and target them with PODEM (the paper's Phase 3 enhancement).
"""

from repro.atpg.podem import Podem, PodemResult
from repro.atpg.unroll import unroll
from repro.atpg.random_resistant import (
    find_random_resistant,
    target_random_resistant,
)

__all__ = [
    "Podem",
    "PodemResult",
    "unroll",
    "find_random_resistant",
    "target_random_resistant",
]
