"""JSON artifact loaders for the lint CLI.

``repro lint`` accepts small JSON documents describing the three subject
kinds (dispatched on their ``"kind"`` field):

* ``{"kind": "netlist", ...}`` — a flat gate-level netlist;
* ``{"kind": "program", ...}`` — a self-test program in assembler syntax;
* ``{"kind": "campaigns", ...}`` — a list of campaign configurations.

The loaders are deliberately *permissive*: their whole point is to admit
defective artifacts (multi-driven nets, dead stores, bogus covers claims)
so the rules can flag them.  Structural sanity is the linter's job, not
the loader's — gates are appended to ``Netlist.gates`` directly, bypassing
:meth:`~repro.logic.netlist.Netlist.add_gate`'s incremental guard, exactly
the way a buggy generator would.  Only *syntactic* problems (unknown gate
kinds, unparseable assembler lines, missing fields) raise
:class:`~repro.runtime.errors.ConfigError`.

Example netlist document::

    {"kind": "netlist", "name": "demo",
     "nets": ["a", "b", "y"],
     "inputs": ["a", "b"], "outputs": ["y"],
     "gates": [{"kind": "and", "output": "y", "inputs": ["a", "b"]}],
     "dffs": [], "buses": {}}

Example program document::

    {"kind": "program",
     "lines": [{"asm": "MACA+ R0, R1, R2", "acc_state": "R",
                "covers": [["addsub", 0]]},
               {"ld_rnd": 0, "in_loop": true}]}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.bist.template import RandomLoad
from repro.dsp.isa import assemble
from repro.lint.campaign_rules import CampaignConfig
from repro.logic.gates import GateType
from repro.logic.netlist import Dff, Gate, Netlist
from repro.runtime.errors import ConfigError
from repro.selftest.program import TestProgram

ARTIFACT_KINDS = ("netlist", "program", "campaigns")

Artifact = Union[Netlist, TestProgram, List[CampaignConfig]]


def load_document(path: str) -> Dict[str, Any]:
    """Read and minimally vet one artifact file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read artifact {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"artifact {path!r} is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") not in ARTIFACT_KINDS:
        raise ConfigError(
            f"artifact {path!r} must be a JSON object with "
            f"\"kind\" in {ARTIFACT_KINDS}"
        )
    return doc


def load_artifact(path: str) -> Artifact:
    """Load one artifact file into its lintable subject."""
    doc = load_document(path)
    kind = doc["kind"]
    if kind == "netlist":
        return netlist_from_doc(doc)
    if kind == "program":
        return program_from_doc(doc)
    return campaigns_from_doc(doc)


# ----------------------------------------------------------------------
# Netlists
# ----------------------------------------------------------------------
def netlist_from_doc(doc: Dict[str, Any]) -> Netlist:
    """Build a (possibly defective) netlist from its JSON description."""
    netlist = Netlist(name=str(doc.get("name", "artifact")))
    for name in doc.get("nets", []):
        netlist.add_net(str(name))

    def net(ref: Any) -> int:
        if isinstance(ref, int):
            return ref
        try:
            return netlist.net_id(str(ref))
        except KeyError:
            raise ConfigError(
                f"netlist {netlist.name!r}: unknown net {ref!r}"
            ) from None

    for ref in doc.get("inputs", []):
        netlist.add_input(net(ref))
    for ref in doc.get("outputs", []):
        netlist.add_output(net(ref))
    for entry in doc.get("gates", []):
        try:
            kind = GateType(str(entry["kind"]).lower())
        except (KeyError, ValueError):
            raise ConfigError(
                f"netlist {netlist.name!r}: bad gate entry {entry!r}"
            ) from None
        gate = Gate(kind=kind, output=net(entry.get("output")),
                    inputs=tuple(net(i) for i in entry.get("inputs", [])))
        # Appended directly: duplicate drivers must *load* so the linter
        # can flag them (NET001); add_gate would reject them here.
        if gate.output not in netlist.driver:
            netlist.driver[gate.output] = len(netlist.gates)
        netlist.gates.append(gate)
        netlist._topo_cache = None
    for entry in doc.get("dffs", []):
        init = entry.get("init", 0)
        dff = Dff(q=net(entry.get("q")), d=net(entry.get("d")),
                  init=None if init is None else int(init) & 1)
        netlist.dffs.append(dff)
        netlist._dff_q[dff.q] = dff
        netlist._topo_cache = None
    for name, nets in doc.get("buses", {}).items():
        netlist.buses[str(name)] = [net(ref) for ref in nets]
    return netlist


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
def program_from_doc(doc: Dict[str, Any]) -> TestProgram:
    """Build a self-test program from its JSON description."""
    program = TestProgram()
    for i, entry in enumerate(doc.get("lines", [])):
        if not isinstance(entry, dict):
            raise ConfigError(f"program line {i} must be an object, "
                              f"got {entry!r}")
        if "ld_rnd" in entry:
            item: Any = RandomLoad(int(entry["ld_rnd"]))
        elif "asm" in entry:
            try:
                item = assemble(str(entry["asm"]))
            except ValueError as exc:
                raise ConfigError(
                    f"program line {i}: {exc}"
                ) from exc
        else:
            raise ConfigError(
                f"program line {i} needs an \"asm\" or \"ld_rnd\" field"
            )
        covers = [
            (str(component), int(mode))
            for component, mode in entry.get("covers", [])
        ]
        program.add(
            item,
            comment=str(entry.get("comment", "")),
            phase=str(entry.get("phase", "")),
            covers=covers,
            in_loop=bool(entry.get("in_loop", True)),
            acc_state=str(entry.get("acc_state", "")),
        )
    return program


# ----------------------------------------------------------------------
# Campaign configurations
# ----------------------------------------------------------------------
def campaigns_from_doc(doc: Dict[str, Any]) -> List[CampaignConfig]:
    """Normalise a campaigns document into :class:`CampaignConfig`\\ s."""
    entries = doc.get("campaigns", [])
    if not isinstance(entries, list):
        raise ConfigError("\"campaigns\" must be a list of objects")
    configs = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ConfigError(f"campaign entry {i} must be an object")
        entry = dict(entry)
        entry.setdefault("name", f"campaign{i}")
        configs.append(CampaignConfig.from_doc(entry))
    return configs
