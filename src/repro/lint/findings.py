"""Findings, severities and the pluggable rule registry.

The linter is organised as a flat registry of *rules*.  Each rule has a
stable id (``NET001``, ``PRG003``, ...), belongs to one analysis *domain*
(``netlist`` / ``program`` / ``campaign``), carries a default severity and
a one-line description, and is a plain function from the domain subject to
an iterable of :class:`Finding`\\ s.  Domains are what the CLI and the
in-process hooks run; the registry is what ``repro lint --list-rules`` and
the README's rule catalog render.

A finding's ``key`` (``rule@location``) is the unit of *baseline
suppression*: a committed baseline file lists the keys of known, accepted
findings so CI only fails on new ones (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro.runtime.errors import ConfigError


class Severity(IntEnum):
    """Finding severity; ordering matters (``ERROR`` > ``WARNING``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @staticmethod
    def parse(text: str) -> "Severity":
        try:
            return Severity[text.upper()]
        except KeyError:
            raise ConfigError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Finding:
    """One structured lint finding."""

    rule: str
    severity: Severity
    domain: str
    location: str       # e.g. "netlist:dsp_core:net 'p[3]'"
    message: str
    hint: str = ""      # how to fix / why it might be acceptable

    @property
    def key(self) -> str:
        """Stable identity used by baseline suppression."""
        return f"{self.rule}@{self.location}"

    def render(self) -> str:
        text = f"{self.severity.label:<8}{self.rule}  {self.location}: " \
               f"{self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_record(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "domain": self.domain,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
            "key": self.key,
        }


@dataclass(frozen=True)
class Rule:
    """Registry entry for one lint rule."""

    rule_id: str
    domain: str
    severity: Severity
    description: str
    check: Callable[..., Iterable[Finding]]
    #: What the check function is called with.  Defaults to the domain
    #: subject (a netlist / a program / campaign configs); rules with a
    #: different subject (e.g. ``"table"`` for the metrics-table
    #: cross-check) are skipped by the per-domain entry points and run by
    #: their own driver.
    subject: str = ""


#: rule id -> Rule, in registration order (dicts preserve it).
REGISTRY: Dict[str, Rule] = {}

DOMAINS = ("netlist", "program", "campaign")


def rule(rule_id: str, domain: str, severity: Severity,
         description: str,
         subject: str = "") -> Callable[[Callable[..., Iterable[Finding]]],
                                        Callable[..., Iterable[Finding]]]:
    """Decorator registering a rule function under ``rule_id``."""
    if domain not in DOMAINS:
        raise ConfigError(f"unknown lint domain {domain!r}")

    def register(check: Callable[..., Iterable[Finding]]
                 ) -> Callable[..., Iterable[Finding]]:
        if rule_id in REGISTRY:
            raise ConfigError(f"duplicate lint rule id {rule_id!r}")
        REGISTRY[rule_id] = Rule(
            rule_id=rule_id, domain=domain, severity=severity,
            description=description, check=check,
            subject=subject or domain,
        )
        return check

    return register


def rules_for(domain: str) -> List[Rule]:
    """Domain rules runnable on the domain subject, in registration order."""
    return [r for r in REGISTRY.values()
            if r.domain == domain and r.subject == domain]


def rules_for_subject(subject: str) -> List[Rule]:
    """All rules taking ``subject`` as their check argument."""
    return [r for r in REGISTRY.values() if r.subject == subject]


def finding(rule_id: str, location: str, message: str, hint: str = "",
            severity: Optional[Severity] = None) -> Finding:
    """Build a :class:`Finding` with the rule's registered defaults."""
    entry = REGISTRY[rule_id]
    return Finding(
        rule=rule_id,
        severity=severity if severity is not None else entry.severity,
        domain=entry.domain,
        location=location,
        message=message,
        hint=hint,
    )


def rule_catalog() -> str:
    """Human-readable table of every registered rule (CLI / README)."""
    header = f"{'id':<8}{'domain':<10}{'severity':<10}description"
    lines = [header, "-" * len(header)]
    for entry in REGISTRY.values():
        lines.append(
            f"{entry.rule_id:<8}{entry.domain:<10}"
            f"{entry.severity.label:<10}{entry.description}"
        )
    return "\n".join(lines)


@dataclass
class LintReport:
    """The outcome of one lint invocation: kept + suppressed findings."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    def counts(self) -> Dict[str, int]:
        return {
            severity.label: len(self.by_severity(severity))
            for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        }

    def apply_baseline(self, keys: Iterable[str]) -> int:
        """Move findings whose key is baselined into ``suppressed``.

        Returns the number of findings suppressed.
        """
        accepted = set(keys)
        kept: List[Finding] = []
        n_before = len(self.suppressed)
        for item in self.findings:
            if item.key in accepted:
                self.suppressed.append(item)
            else:
                kept.append(item)
        self.findings = kept
        return len(self.suppressed) - n_before

    def exit_code(self, strict: bool = False) -> int:
        """CI exit code: 1 when errors (or warnings under ``strict``)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def render(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (-int(f.severity), f.rule, f.location)
        )]
        counts = self.counts()
        summary = (f"{len(self.findings)} finding(s): "
                   f"{counts['error']} error, {counts['warning']} warning, "
                   f"{counts['info']} info")
        if self.suppressed:
            summary += f" ({len(self.suppressed)} baselined)"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "findings": [f.to_record() for f in self.findings],
            "suppressed": [f.to_record() for f in self.suppressed],
            "counts": self.counts(),
        }
