"""Campaign-configuration lint rules.

A campaign configuration is linted as a list of normalised
:class:`CampaignConfig` records, built either from live adapter instances
(:meth:`CampaignConfig.from_adapter` introspects the adapter's
:class:`~repro.runtime.runner.CampaignRunner`) or from a JSON document
(the ``{"kind": "campaigns", ...}`` artifact the CLI loads).

Rules:

* ``CMP001`` — two campaigns share one checkpoint path: the second
  ``create()`` clobbers the first's records, and on resume the
  fingerprint check aborts one of them;
* ``CMP002`` — timeout/jobs combinations that cannot make progress
  (non-positive budgets, budgets so small every attempt times out,
  a fallback budget that is not finite when the primary already timed
  out);
* ``CMP003`` — checkpoint paths the store machinery reserves or cannot
  create (missing parent directory, ``.tmp`` / ``.shard-`` suffixes used
  by atomic replace and the process-pool shards);
* ``CMP004`` — unusable chaos-injection policies (probability ≥ 1.0,
  missing seed, a checkpoint inside the chaos scratch directory that
  the soak deletes on exit);
* ``CMP005`` — scheduler-service policies that defeat the service's
  own crash-safety (a lease TTL the heartbeat cadence cannot keep
  renewed, a zero job-retry budget, a job journal inside the chaos
  scratch directory);
* ``CMP006`` — transport/worker policies that defeat the distributed
  tier's fault tolerance (an RPC timeout at or above the heartbeat
  cadence, a zero transport retry budget, a retry deadline shorter
  than one RPC attempt, an artifact store inside the chaos scratch
  directory).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.lint.findings import Finding, LintReport, Severity, finding, rule, rules_for

#: Below this per-unit budget (seconds) even trivial units time out:
#: thread spawn + checkpoint fsync alone typically cost more.
MIN_PLAUSIBLE_TIMEOUT = 0.01


@dataclass(frozen=True)
class CampaignConfig:
    """The lint-relevant slice of one campaign's configuration."""

    name: str
    checkpoint: Optional[str] = None
    unit_timeout: Optional[float] = None
    fallback_timeout: Optional[float] = None
    jobs: int = 1
    max_retries: int = 2
    #: The ``"chaos"`` block of the campaign entry, when present — the
    #: injection policy :mod:`repro.runtime.chaos` would run with.
    chaos: Optional[Any] = None
    #: The ``"service"`` block, when present — the scheduler policy
    #: (:class:`repro.runtime.service.ServiceConfig`) the campaign
    #: would be submitted under.
    service: Optional[Any] = None
    #: The ``"transport"`` block, when present — the remote-worker RPC
    #: policy (:class:`repro.runtime.transport.RetryPolicy` plus the
    #: artifact-store path) the campaign's workers would connect with.
    transport: Optional[Any] = None

    @classmethod
    def from_adapter(cls, name: str, campaign: Any) -> "CampaignConfig":
        """Introspect a live campaign adapter (anything with ``.runner``)."""
        runner = campaign.runner
        store = runner.store
        return cls(
            name=name,
            checkpoint=None if store is None else store.path,
            unit_timeout=runner.unit_timeout,
            fallback_timeout=runner.fallback_timeout,
            jobs=runner.jobs,
            max_retries=runner.max_retries,
        )

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "CampaignConfig":
        """Build from one entry of a ``campaigns`` JSON document."""
        return cls(
            name=str(doc.get("name", "campaign")),
            checkpoint=doc.get("checkpoint"),
            unit_timeout=doc.get("unit_timeout"),
            fallback_timeout=doc.get("fallback_timeout"),
            jobs=int(doc.get("jobs", 1)),
            max_retries=int(doc.get("max_retries", 2)),
            chaos=doc.get("chaos"),
            service=doc.get("service"),
            transport=doc.get("transport"),
        )


def _loc(config: CampaignConfig, what: str = "") -> str:
    base = f"campaign:{config.name}"
    return f"{base}:{what}" if what else base


# ----------------------------------------------------------------------
# CMP001 — checkpoint path collisions
# ----------------------------------------------------------------------
@rule("CMP001", "campaign", Severity.ERROR,
      "two campaigns share one checkpoint path")
def check_checkpoint_collisions(
    configs: Sequence[CampaignConfig],
) -> Iterator[Finding]:
    by_path: Dict[str, List[CampaignConfig]] = {}
    for config in configs:
        if config.checkpoint:
            key = os.path.abspath(config.checkpoint)
            by_path.setdefault(key, []).append(config)
    for path, sharers in sorted(by_path.items()):
        if len(sharers) < 2:
            continue
        names = ", ".join(c.name for c in sharers)
        for config in sharers:
            yield finding(
                "CMP001", _loc(config, "checkpoint"),
                f"checkpoint {config.checkpoint!r} is shared by "
                f"[{names}]; whichever campaign starts second wipes the "
                "first's records, and resume aborts on the fingerprint "
                "mismatch",
                hint="give every campaign its own checkpoint file",
            )


# ----------------------------------------------------------------------
# CMP002 — no-progress timeout/jobs combinations
# ----------------------------------------------------------------------
@rule("CMP002", "campaign", Severity.ERROR,
      "timeout/jobs combination cannot make progress")
def check_progress(configs: Sequence[CampaignConfig]) -> Iterator[Finding]:
    for config in configs:
        timeout = config.unit_timeout
        if timeout is not None and timeout <= 0:
            yield finding(
                "CMP002", _loc(config, "unit_timeout"),
                f"unit_timeout={timeout!r}: every attempt times out "
                "immediately, so every unit is quarantined",
                hint="use a positive budget, or None for no timeout",
            )
        elif timeout is not None and timeout < MIN_PLAUSIBLE_TIMEOUT:
            yield finding(
                "CMP002", _loc(config, "unit_timeout"),
                f"unit_timeout={timeout!r} is below "
                f"{MIN_PLAUSIBLE_TIMEOUT}s; even trivial units are likely "
                "to time out and quarantine",
                hint="budget per unit, not per campaign",
                severity=Severity.WARNING,
            )
        fallback = config.fallback_timeout
        if fallback is not None and fallback <= 0:
            yield finding(
                "CMP002", _loc(config, "fallback_timeout"),
                f"fallback_timeout={fallback!r}: the degraded attempt "
                "can never finish, so timed-out units still quarantine",
                hint="the fallback budget must be positive (or None)",
            )
        if config.jobs < 1:
            yield finding(
                "CMP002", _loc(config, "jobs"),
                f"jobs={config.jobs}: no worker would run any unit",
                hint="jobs must be >= 1 ('auto' resolves to the core count)",
            )
        if config.max_retries < 0:
            yield finding(
                "CMP002", _loc(config, "max_retries"),
                f"max_retries={config.max_retries}: the retry loop never "
                "attempts the unit at all",
                hint="use 0 to disable retries but still attempt once",
            )


# ----------------------------------------------------------------------
# CMP003 — reserved / uncreatable checkpoint paths
# ----------------------------------------------------------------------
@rule("CMP003", "campaign", Severity.ERROR,
      "checkpoint path is reserved or cannot be created")
def check_checkpoint_paths(
    configs: Sequence[CampaignConfig],
) -> Iterator[Finding]:
    for config in configs:
        path = config.checkpoint
        if not path:
            continue
        base = os.path.basename(path)
        if base.endswith(".tmp") or ".shard-" in base:
            yield finding(
                "CMP003", _loc(config, "checkpoint"),
                f"checkpoint {path!r} uses a reserved suffix: the store "
                "writes '<checkpoint>.tmp' during atomic replace and the "
                "pool writes '<checkpoint>.shard-<pid>' worker shards",
                hint="pick a name that is not '.tmp'-suffixed and does "
                     "not contain '.shard-'",
            )
        parent = os.path.dirname(os.path.abspath(path))
        if not os.path.isdir(parent):
            yield finding(
                "CMP003", _loc(config, "checkpoint"),
                f"checkpoint directory {parent!r} does not exist; the "
                "store opens the file lazily and the campaign dies on "
                "its first completed unit",
                hint="create the directory before launching the campaign",
            )


# ----------------------------------------------------------------------
# CMP004 — unusable chaos-injection policies
# ----------------------------------------------------------------------
@rule("CMP004", "campaign", Severity.ERROR,
      "chaos-injection policy is unusable or self-destructive")
def check_chaos_policy(
    configs: Sequence[CampaignConfig],
) -> Iterator[Finding]:
    for config in configs:
        doc = config.chaos
        if doc is None:
            continue
        if not isinstance(doc, dict):
            yield finding(
                "CMP004", _loc(config, "chaos"),
                f"chaos block must be an object, got {type(doc).__name__}",
                hint="use {\"seed\": ..., \"probability\": ..., ...}",
            )
            continue
        probability = doc.get("probability")
        if isinstance(probability, (int, float)) and probability >= 1.0:
            yield finding(
                "CMP004", _loc(config, "chaos.probability"),
                f"chaos probability={probability!r}: every eligible "
                "injection point fires until the per-class budget is "
                "exhausted, so the campaign only measures the budget "
                "(usually a percentage pasted where a fraction belongs)",
                hint="use a fraction in [0, 1), e.g. 0.25",
            )
        if doc.get("seed") is None:
            yield finding(
                "CMP004", _loc(config, "chaos.seed"),
                "chaos block has no seed: an unseeded failure schedule "
                "cannot be replayed, so a soak failure is unreproducible",
                hint="set an integer seed (the soak derives per-campaign "
                     "seeds from it)",
            )
        scratch = doc.get("scratch")
        if scratch and config.checkpoint:
            checkpoint = os.path.abspath(config.checkpoint)
            root = os.path.abspath(scratch)
            if os.path.commonpath([checkpoint, root]) == root:
                yield finding(
                    "CMP004", _loc(config, "checkpoint"),
                    f"checkpoint {config.checkpoint!r} lives inside the "
                    f"chaos scratch directory {scratch!r}, which the soak "
                    "deletes on exit — the campaign's durable state is "
                    "destroyed with the chaos debris",
                    hint="point the checkpoint outside the scratch "
                         "directory",
                )


# ----------------------------------------------------------------------
# CMP005 — self-defeating scheduler-service policies
# ----------------------------------------------------------------------
@rule("CMP005", "campaign", Severity.ERROR,
      "scheduler-service policy defeats its own crash-safety")
def check_service_policy(
    configs: Sequence[CampaignConfig],
) -> Iterator[Finding]:
    for config in configs:
        doc = config.service
        if doc is None:
            continue
        if not isinstance(doc, dict):
            yield finding(
                "CMP005", _loc(config, "service"),
                f"service block must be an object, got "
                f"{type(doc).__name__}",
                hint="use {\"lease_ttl\": ..., "
                     "\"heartbeat_interval\": ..., ...}",
            )
            continue
        ttl = doc.get("lease_ttl")
        heartbeat = doc.get("heartbeat_interval")
        for field_name, value in (("lease_ttl", ttl),
                                  ("heartbeat_interval", heartbeat)):
            if isinstance(value, (int, float)) and value <= 0:
                yield finding(
                    "CMP005", _loc(config, f"service.{field_name}"),
                    f"{field_name}={value!r}: a non-positive interval "
                    "makes every lease instantly reclaimable (or never "
                    "renewed), so jobs thrash between workers forever",
                    hint="both intervals must be positive seconds",
                )
        if isinstance(ttl, (int, float)) and ttl > 0 \
                and isinstance(heartbeat, (int, float)) \
                and heartbeat > 0 and ttl <= heartbeat:
            yield finding(
                "CMP005", _loc(config, "service.lease_ttl"),
                f"lease_ttl={ttl!r} <= heartbeat_interval={heartbeat!r}: "
                "every lease expires before its first renewal arrives, "
                "so healthy workers are perpetually fenced off and the "
                "job is reclaimed mid-run on every attempt",
                hint="keep the TTL several heartbeats long (e.g. "
                     "ttl >= 3 * heartbeat_interval)",
            )
        retries = doc.get("max_job_retries")
        if isinstance(retries, int) and retries == 0:
            yield finding(
                "CMP005", _loc(config, "service.max_job_retries"),
                "max_job_retries=0: the first failed attempt quarantines "
                "the job, so one transient infrastructure error "
                "permanently poisons a healthy campaign",
                hint="budget at least one retry; reclaims are free but "
                     "failures are not",
                severity=Severity.WARNING,
            )
        journal = doc.get("journal")
        chaos_doc = config.chaos if isinstance(config.chaos, dict) else {}
        scratch = chaos_doc.get("scratch")
        if journal and scratch:
            journal_abs = os.path.abspath(journal)
            root = os.path.abspath(scratch)
            if os.path.commonpath([journal_abs, root]) == root:
                yield finding(
                    "CMP005", _loc(config, "service.journal"),
                    f"job journal {journal!r} lives inside the chaos "
                    f"scratch directory {scratch!r}, which the soak "
                    "deletes on exit — the whole queue's durable state "
                    "(every job, lease and retry counter) is destroyed "
                    "with the chaos debris",
                    hint="point the journal outside the scratch directory",
                )


# ----------------------------------------------------------------------
# CMP006 — self-defeating transport/worker policies
# ----------------------------------------------------------------------
@rule("CMP006", "campaign", Severity.ERROR,
      "transport/worker policy defeats the distributed tier's "
      "fault tolerance")
def check_transport_policy(
    configs: Sequence[CampaignConfig],
) -> Iterator[Finding]:
    for config in configs:
        doc = config.transport
        if doc is None:
            continue
        if not isinstance(doc, dict):
            yield finding(
                "CMP006", _loc(config, "transport"),
                f"transport block must be an object, got "
                f"{type(doc).__name__}",
                hint="use {\"rpc_timeout\": ..., \"max_attempts\": ..., "
                     "\"deadline\": ..., \"artifacts\": ...}",
            )
            continue
        rpc_timeout = doc.get("rpc_timeout")
        service_doc = config.service \
            if isinstance(config.service, dict) else {}
        heartbeat = service_doc.get("heartbeat_interval")
        if isinstance(rpc_timeout, (int, float)) and rpc_timeout <= 0:
            yield finding(
                "CMP006", _loc(config, "transport.rpc_timeout"),
                f"rpc_timeout={rpc_timeout!r}: every RPC gives up "
                "before the scheduler can answer, so no worker ever "
                "registers",
                hint="the per-attempt socket timeout must be positive",
            )
        elif isinstance(rpc_timeout, (int, float)) \
                and isinstance(heartbeat, (int, float)) \
                and heartbeat > 0 and rpc_timeout >= heartbeat:
            yield finding(
                "CMP006", _loc(config, "transport.rpc_timeout"),
                f"rpc_timeout={rpc_timeout!r} >= "
                f"heartbeat_interval={heartbeat!r}: one stalled "
                "heartbeat RPC blocks past its own cadence, renewals "
                "fall behind and the lease expires under a perfectly "
                "healthy worker — the scheduler then reclaims and "
                "re-runs work that was never lost",
                hint="keep the RPC timeout well under one heartbeat "
                     "interval so a stall skips at most one renewal",
            )
        attempts = doc.get("max_attempts")
        if isinstance(attempts, int) and attempts < 1:
            yield finding(
                "CMP006", _loc(config, "transport.max_attempts"),
                f"max_attempts={attempts!r}: a zero transport retry "
                "budget turns every dropped frame into a lost lease — "
                "the whole point of the retry/idempotency layer is "
                "that one partition blip is survivable",
                hint="budget at least 2 attempts (retries are "
                     "idempotent on the journal)",
            )
        deadline = doc.get("deadline")
        if isinstance(deadline, (int, float)) \
                and isinstance(rpc_timeout, (int, float)) \
                and rpc_timeout > 0 and deadline < rpc_timeout:
            yield finding(
                "CMP006", _loc(config, "transport.deadline"),
                f"deadline={deadline!r} < rpc_timeout={rpc_timeout!r}: "
                "the overall retry deadline expires before a single "
                "attempt is allowed to finish, so the configured "
                "retries can never happen",
                hint="give the deadline room for at least two full "
                     "attempts plus backoff",
            )
        artifacts = doc.get("artifacts")
        chaos_doc = config.chaos if isinstance(config.chaos, dict) else {}
        scratch = chaos_doc.get("scratch")
        if artifacts and scratch:
            artifacts_abs = os.path.abspath(artifacts)
            root = os.path.abspath(scratch)
            if os.path.commonpath([artifacts_abs, root]) == root:
                yield finding(
                    "CMP006", _loc(config, "transport.artifacts"),
                    f"artifact store {artifacts!r} lives inside the "
                    f"chaos scratch directory {scratch!r}, which the "
                    "soak deletes on exit — every uploaded result "
                    "blob and the hash-chained manifest are destroyed "
                    "with the chaos debris",
                    hint="point the artifact store outside the scratch "
                         "directory",
                )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def lint_campaigns(
    configs: Sequence[CampaignConfig],
    min_severity: Severity = Severity.INFO,
) -> LintReport:
    """Run every campaign rule over the normalised configurations."""
    report = LintReport()
    for entry in rules_for("campaign"):
        report.extend(f for f in entry.check(configs)
                      if f.severity >= min_severity)
    return report
