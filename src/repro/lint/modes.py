"""Static control-bit mode reachability.

Phase 2 discards metrics-table columns *dynamically*: a column is
unreachable when no instruction's trace produced a cell for it
(:func:`repro.selftest.phase2.unreachable_columns`).  This module derives
the same answer *statically*, straight from the decoder truth table: each
multi-mode component's mode is a fixed function of the decoded
:class:`~repro.dsp.isa.ControlWord`, so the reachable mode set of a
component is simply the image of that function over all opcodes.

The two answers must agree on the paper core — the cross-check
(:func:`mode_reachability_crosscheck`) is both a lint rule input and a
regression test, and catches either a datapath emit drifting away from the
decoder or a metrics run that silently lost rows.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.dsp.components import COMPONENTS, all_columns, component_by_name
from repro.dsp.isa import ControlWord, Opcode, control_word
from repro.lint.findings import (
    Finding,
    LintReport,
    Severity,
    finding,
    rule,
    rules_for_subject,
)

Column = Tuple[str, int]

#: How each multi-mode component's trace mode is computed from the decoded
#: control word.  Mirrors the ``emit(...)`` calls in
#: :meth:`repro.dsp.mac.MacDatapath.evaluate` and
#: :meth:`repro.dsp.core.DspCore.step`; single-mode components always
#: report mode 0 and need no entry.
MODE_EXTRACTORS: Dict[str, Callable[[ControlWord], int]] = {
    "muxa": lambda cw: cw.muxa_zero,
    "muxb": lambda cw: cw.muxb_shift,
    "shifter": lambda cw: cw.shmode,
    "addsub": lambda cw: cw.sub,
    "truncater": lambda cw: cw.trunc,
    "muxg_shifter": lambda cw: cw.accsel,
    "muxg_limiter": lambda cw: cw.accsel,
    "mux7": lambda cw: cw.mux7_buffer,
}


def component_mode(component: str, cw: ControlWord) -> int:
    """The metrics-table mode ``component`` runs in under ``cw``."""
    extractor = MODE_EXTRACTORS.get(component)
    return extractor(cw) if extractor is not None else 0


def static_mode_reachability(
    opcodes: Iterable[Opcode] = tuple(Opcode),
    build: Optional[Any] = None,
) -> Dict[str, FrozenSet[int]]:
    """component name -> set of modes some opcode decodes to.

    ``build`` analyses a non-paper family point: its component registry
    and decoder (a family point without a truncater, say, never reaches
    the "trunc" mode because the builder clears the control bit).
    """
    components = COMPONENTS if build is None else build.components
    cw_fn = control_word if build is None else build.control_word
    reachable: Dict[str, Set[int]] = {spec.name: set() for spec in components}
    words = [cw_fn(op) for op in opcodes]
    for spec in components:
        for cw in words:
            reachable[spec.name].add(component_mode(spec.name, cw))
    return {name: frozenset(modes) for name, modes in reachable.items()}


def static_unreachable_columns(
    columns: Iterable[Column] = (),
    build: Optional[Any] = None,
) -> List[Column]:
    """Columns whose mode no opcode can decode to.

    ``columns`` defaults to the full metrics-table column set.  On the
    paper core this is exactly the shifter's "10"/"11" columns — the modes
    the paper's §2.4 eliminates by hand.
    """
    if build is None:
        column_list = list(columns) or all_columns(metrics_only=True)
    else:
        column_list = list(columns) or build.all_columns(metrics_only=True)
    reachable = static_mode_reachability(build=build)
    return [
        (name, mode) for name, mode in column_list
        if mode not in reachable.get(name, frozenset())
    ]


def mode_reachability_crosscheck(
    table: Any,
    build: Optional[Any] = None,
) -> Tuple[List[Column], List[Column]]:
    """Compare static vs dynamic unreachability on one metrics table.

    Returns ``(dynamic_only, static_only)``:

    * ``dynamic_only`` — columns the simulated traces never exercised even
      though some opcode statically selects the mode (a datapath emit bug,
      or a metrics run missing rows);
    * ``static_only`` — columns the traces claim to exercise although no
      opcode decodes to the mode (a mode-extractor / decoder mismatch).

    Both empty ⇔ Phase 2's dynamic discard and the static rule agree.
    """
    from repro.selftest.phase2 import unreachable_columns

    dynamic = set(unreachable_columns(table))
    static = set(static_unreachable_columns(table.columns, build=build))
    dynamic_only = sorted(dynamic - static)
    static_only = sorted(static - dynamic)
    return dynamic_only, static_only


# ----------------------------------------------------------------------
# Registry-visible rules (ISA / metrics-table subjects)
# ----------------------------------------------------------------------
@rule("ISA000", "program", Severity.INFO,
      "column is statically unreachable: no opcode selects its mode",
      subject="isa")
def check_static_unreachable(_subject: object = None) -> Iterator[Finding]:
    for name, mode in static_unreachable_columns():
        label = component_by_name(name).mode_label(mode)
        yield finding(
            "ISA000", f"isa:{name}:{mode}",
            f"no opcode's control bits select {name} mode {mode} "
            f"({label!r})",
            hint="Phase 2 discards this column; the paper eliminates the "
                 "shifter's \"10\"/\"11\" columns the same way",
        )


@rule("ISA001", "program", Severity.ERROR,
      "static and dynamic mode reachability disagree",
      subject="table")
def check_table_crosscheck(table) -> Iterator[Finding]:
    dynamic_only, static_only = mode_reachability_crosscheck(table)
    for name, mode in dynamic_only:
        yield finding(
            "ISA001", f"table:{name}:{mode}",
            f"some opcode decodes {name} into mode {mode}, but no "
            "simulated trace ever exercised the column",
            hint="a datapath emit() drifted away from the decoder truth "
                 "table, or the metrics run is missing rows",
        )
    for name, mode in static_only:
        yield finding(
            "ISA001", f"table:{name}:{mode}",
            f"traces claim to exercise {name} mode {mode}, but no "
            "opcode's control bits select it",
            hint="the trace mode computation disagrees with "
                 "control_word(); fix MODE_EXTRACTORS or the emit() call",
        )


def lint_isa(min_severity: Severity = Severity.INFO) -> LintReport:
    """Run the ISA-subject rules (static mode reachability)."""
    report = LintReport()
    for entry in rules_for_subject("isa"):
        report.extend(f for f in entry.check(None)
                      if f.severity >= min_severity)
    return report


def lint_table(table, min_severity: Severity = Severity.INFO) -> LintReport:
    """Run the metrics-table-subject rules (the static/dynamic cross-check)."""
    report = LintReport()
    for entry in rules_for_subject("table"):
        report.extend(f for f in entry.check(table)
                      if f.severity >= min_severity)
    return report
