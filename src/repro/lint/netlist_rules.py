"""Netlist-domain lint rules.

These turn the structural assumptions the simulators rely on into
machine-checked invariants:

* ``NET000`` — structural sanity (undriven nets, combinational loops),
  the findings form of :meth:`repro.logic.netlist.Netlist.validate`;
* ``NET001`` — multi-driven nets (two gates, a gate and a DFF, or a gate
  and a primary input contending for one net);
* ``NET002`` — dead logic: gates/DFFs with no structural path to any
  primary output (through any number of state boundaries);
* ``NET003`` — constant-propagation-provable stuck nets (a gate output
  that can never toggle, excluding intentional CONST gates);
* ``NET004`` — unknown power-up state (``Dff.init is None``) that can
  propagate to a primary output;
* ``NET005`` — floating buses: bus metadata naming undriven or unknown
  nets;
* ``NET006``/``NET007`` — fanout and depth outliers, the structural
  predictors of slow random-pattern coverage (info only).

``lint_netlist`` runs every registered netlist rule; ``warn_on_netlist``
is the warn-only hook the campaign adapters call when they construct a
fault universe.
"""

from __future__ import annotations

import os
import warnings
import weakref
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.findings import (
    Finding,
    LintReport,
    Severity,
    finding,
    rule,
    rules_for,
)
from repro.logic.gates import GateType
from repro.logic.netlist import Netlist

#: Three-valued constant lattice: 0, 1, or None (= unknown / toggling).
MaybeBit = Optional[int]


def _loc(netlist: Netlist, what: str) -> str:
    return f"netlist:{netlist.name}:{what}"


def _net_name(netlist: Netlist, net: int) -> str:
    if 0 <= net < len(netlist.net_names):
        return netlist.net_names[net]
    return f"<net#{net}>"


def _try_levelize(netlist: Netlist):
    """The topological order, or ``None`` when the structure is broken."""
    try:
        return netlist.levelize()
    except ValueError:
        return None


# ----------------------------------------------------------------------
# NET000 — structural sanity
# ----------------------------------------------------------------------
@rule("NET000", "netlist", Severity.ERROR,
      "structural validation failed (undriven nets, combinational loops)")
def check_structure(netlist: Netlist) -> Iterator[Finding]:
    try:
        netlist.validate()
    except ValueError as exc:
        yield finding(
            "NET000", _loc(netlist, "structure"), str(exc),
            hint="fix the netlist construction; downstream simulators "
                 "reject this netlist outright",
        )


# ----------------------------------------------------------------------
# NET001 — multi-driven nets
# ----------------------------------------------------------------------
@rule("NET001", "netlist", Severity.ERROR,
      "net has more than one driver (gate/gate, gate/DFF or gate/PI)")
def check_multi_driven(netlist: Netlist) -> Iterator[Finding]:
    drivers: Dict[int, List[str]] = {}
    for idx, gate in enumerate(netlist.gates):
        drivers.setdefault(gate.output, []).append(
            f"{gate.kind.value} gate #{idx}"
        )
    for dff in netlist.dffs:
        drivers.setdefault(dff.q, []).append("DFF Q")
    for net in netlist.inputs:
        drivers.setdefault(net, []).append("primary input")
    for net, sources in sorted(drivers.items()):
        if len(sources) > 1:
            yield finding(
                "NET001",
                _loc(netlist, f"net {_net_name(netlist, net)!r}"),
                f"driven by {len(sources)} sources: {', '.join(sources)}",
                hint="remove all but one driver; simulation results are "
                     "order-dependent otherwise",
            )


# ----------------------------------------------------------------------
# NET002 — dead logic
# ----------------------------------------------------------------------
def _useful_nets(netlist: Netlist) -> Set[int]:
    """Nets with a structural path to some primary output.

    Computed as a reverse fixpoint that crosses state boundaries: a net
    is useful if it is a PO, feeds a gate with a useful output, or is the
    D input of a DFF whose Q is useful.
    """
    useful: Set[int] = set(netlist.outputs)
    changed = True
    while changed:
        changed = False
        for gate in netlist.gates:
            if gate.output in useful:
                for net in gate.inputs:
                    if net not in useful:
                        useful.add(net)
                        changed = True
        for dff in netlist.dffs:
            if dff.q in useful and dff.d not in useful:
                useful.add(dff.d)
                changed = True
    return useful


@rule("NET002", "netlist", Severity.WARNING,
      "dead logic: no structural path from this gate/DFF to any output")
def check_dead_logic(netlist: Netlist) -> Iterator[Finding]:
    if not netlist.outputs:
        return  # everything would be "dead"; NET000 territory instead
    useful = _useful_nets(netlist)
    for gate in netlist.gates:
        if gate.output not in useful:
            yield finding(
                "NET002",
                _loc(netlist, f"net {_net_name(netlist, gate.output)!r}"),
                f"{gate.kind.value} gate output never reaches a primary "
                "output",
                hint="dead logic is untestable: every fault on it is "
                     "undetectable and drags coverage down",
            )
    for dff in netlist.dffs:
        if dff.q not in useful:
            yield finding(
                "NET002",
                _loc(netlist, f"net {_net_name(netlist, dff.q)!r}"),
                "DFF output never reaches a primary output",
                hint="dead state element; remove it or observe it",
            )


# ----------------------------------------------------------------------
# NET003 — constant (stuck) nets
# ----------------------------------------------------------------------
def _propagate_constants(netlist: Netlist) -> Dict[int, MaybeBit]:
    """Three-valued forward constant propagation.

    PIs and DFF Qs are unknown (DFFs toggle across cycles); constants
    flow through gates using dominance (AND with a 0 leg is 0, OR with a
    1 leg is 1, ...).  Returns net -> 0/1 for provably constant nets.
    """
    values: Dict[int, MaybeBit] = {}
    order = _try_levelize(netlist)
    if order is None:
        return values
    for gate in order:
        ins = [values.get(net) for net in gate.inputs]
        known = [v for v in ins if v is not None]
        out: MaybeBit = None
        kind = gate.kind
        if kind is GateType.CONST0:
            out = 0
        elif kind is GateType.CONST1:
            out = 1
        elif kind is GateType.BUF:
            out = ins[0]
        elif kind is GateType.NOT:
            out = None if ins[0] is None else 1 - ins[0]
        elif kind in (GateType.AND, GateType.NAND):
            if 0 in known:
                out = 0
            elif len(known) == len(ins) and all(v == 1 for v in known):
                out = 1
            if out is not None and kind is GateType.NAND:
                out = 1 - out
        elif kind in (GateType.OR, GateType.NOR):
            if 1 in known:
                out = 1
            elif len(known) == len(ins) and all(v == 0 for v in known):
                out = 0
            if out is not None and kind is GateType.NOR:
                out = 1 - out
        elif kind in (GateType.XOR, GateType.XNOR):
            if len(known) == len(ins):
                out = ins[0] ^ ins[1]  # type: ignore[operator]
                if kind is GateType.XNOR:
                    out = 1 - out
        if out is not None:
            values[gate.output] = out
    return values


@rule("NET003", "netlist", Severity.WARNING,
      "net is provably stuck at a constant (excluding intentional CONSTs)")
def check_constant_nets(netlist: Netlist) -> Iterator[Finding]:
    constants = _propagate_constants(netlist)
    const_gate_outputs = {
        g.output for g in netlist.gates
        if g.kind in (GateType.CONST0, GateType.CONST1)
    }
    fanout = netlist.fanout_map()
    observed = set(netlist.outputs) | {d.d for d in netlist.dffs}
    for net, value in sorted(constants.items()):
        if net in const_gate_outputs:
            continue  # a deliberate tie-off
        if not fanout.get(net) and net not in observed:
            continue  # NET002's problem, not a stuck net anyone reads
        yield finding(
            "NET003",
            _loc(netlist, f"net {_net_name(netlist, net)!r}"),
            f"always evaluates to {value}; the stuck-at-{value} fault "
            "here is undetectable",
            hint="a constant-fed gate usually means a wiring bug or "
                 "over-tied control input",
        )


# ----------------------------------------------------------------------
# NET004 — unknown power-up state reaching outputs
# ----------------------------------------------------------------------
@rule("NET004", "netlist", Severity.WARNING,
      "uninitialised DFF state (init=None) can propagate to an output")
def check_uninitialised_state(netlist: Netlist) -> Iterator[Finding]:
    sources = [d for d in netlist.dffs if d.init is None]
    if not sources:
        return
    constants = _propagate_constants(netlist)
    tainted: Set[int] = {d.q for d in sources}
    order = _try_levelize(netlist)
    if order is None:
        return
    changed = True
    while changed:
        changed = False
        for gate in order:
            if gate.output in tainted or gate.output in constants:
                continue  # constants block X propagation
            if any(net in tainted for net in gate.inputs):
                tainted.add(gate.output)
                changed = True
        for dff in netlist.dffs:
            if dff.d in tainted and dff.q not in tainted:
                tainted.add(dff.q)
                changed = True
    names = ", ".join(_net_name(netlist, d.q) for d in sources[:4])
    for net in netlist.outputs:
        if net in tainted:
            yield finding(
                "NET004",
                _loc(netlist, f"output {_net_name(netlist, net)!r}"),
                "can observe the unknown power-up value of "
                f"uninitialised DFF(s) [{names}{'...' if len(sources) > 4 else ''}]",
                hint="give the DFF a reset value or mask the output until "
                     "initialisation; golden signatures are irreproducible "
                     "otherwise",
            )


# ----------------------------------------------------------------------
# NET005 — floating buses
# ----------------------------------------------------------------------
@rule("NET005", "netlist", Severity.ERROR,
      "bus metadata names undriven or unknown nets")
def check_floating_buses(netlist: Netlist) -> Iterator[Finding]:
    driven = set(netlist.driver)
    driven.update(d.q for d in netlist.dffs)
    driven.update(netlist.inputs)
    for name, nets in sorted(netlist.buses.items()):
        unknown = [n for n in nets if not 0 <= n < netlist.n_nets]
        floating = [n for n in nets
                    if 0 <= n < netlist.n_nets and n not in driven]
        if unknown:
            yield finding(
                "NET005", _loc(netlist, f"bus {name!r}"),
                f"references {len(unknown)} unknown net id(s): "
                f"{unknown[:8]}",
                hint="the bus was registered against a different netlist",
            )
        if floating:
            pretty = ", ".join(_net_name(netlist, n) for n in floating[:8])
            yield finding(
                "NET005", _loc(netlist, f"bus {name!r}"),
                f"bit(s) [{pretty}] are undriven (floating)",
                hint="word-level adapters read every bus bit; a floating "
                     "bit makes packed values undefined",
            )


# ----------------------------------------------------------------------
# NET006 / NET007 — structural outliers (coverage predictors)
# ----------------------------------------------------------------------
#: A net is a fanout outlier when it drives more than ``max(abs, ratio *
#: mean-fanout)`` gate inputs; a sink is a depth outlier when its cone is
#: deeper than ``max(abs, ratio * mean-sink-depth)`` levels.
FANOUT_ABS, FANOUT_RATIO = 48, 12.0
DEPTH_ABS, DEPTH_RATIO = 24, 3.0


@rule("NET006", "netlist", Severity.INFO,
      "extreme-fanout net (random-pattern coverage predictor)")
def check_fanout_outliers(netlist: Netlist) -> Iterator[Finding]:
    counts: Dict[int, int] = {}
    for gate in netlist.gates:
        for net in gate.inputs:
            counts[net] = counts.get(net, 0) + 1
    for dff in netlist.dffs:
        counts[dff.d] = counts.get(dff.d, 0) + 1
    if not counts:
        return
    mean = sum(counts.values()) / len(counts)
    threshold = max(FANOUT_ABS, FANOUT_RATIO * mean)
    for net, fanout in sorted(counts.items()):
        if fanout > threshold:
            yield finding(
                "NET006",
                _loc(netlist, f"net {_net_name(netlist, net)!r}"),
                f"fanout {fanout} (mean {mean:.1f}); faults here need "
                "many patterns to propagate uniquely",
            )


@rule("NET007", "netlist", Severity.INFO,
      "extreme-depth cone (random-pattern coverage predictor)")
def check_depth_outliers(netlist: Netlist) -> Iterator[Finding]:
    if _try_levelize(netlist) is None:
        return
    from repro.logic.analysis import logic_depth
    report = logic_depth(netlist)
    if not report.depth_by_output:
        return
    threshold = max(DEPTH_ABS, DEPTH_RATIO * report.mean_output_depth)
    for net, depth in sorted(report.depth_by_output.items()):
        if depth > threshold:
            yield finding(
                "NET007",
                _loc(netlist, f"sink {_net_name(netlist, net)!r}"),
                f"logic depth {depth} (mean sink depth "
                f"{report.mean_output_depth:.1f}); long chains correlate "
                "with slow fault coverage",
            )


# ----------------------------------------------------------------------
# NET008–NET011 — static testability (SCOAP/COP, repro.analysis)
# ----------------------------------------------------------------------
#: NET008/NET009 flag nets whose SCOAP controllability/observability sits
#: strictly above this percentile of the netlist's finite values.  The
#: cliff is relative, so a small clean netlist — where the worst net IS
#: the percentile — produces no findings; only designs with a long
#: testability tail (like the flat core) do.
TESTABILITY_PERCENTILE = 99.0
#: Below this size the percentile cliff is statistically meaningless.
TESTABILITY_MIN_NETS = 64
#: NET010: a fault site whose COP detection probability is below this
#: floor is predicted random-resistant — random patterns are expected to
#: need more than ~1/floor vectors to hit it.  Kept equal to
#: ``repro.analysis.testability.DEFAULT_DETECT_FLOOR`` so the lint rule
#: and the ``repro testability`` CLI agree by default (a test pins it).
DETECT_PROB_FLOOR = 1e-8

#: One SCOAP/COP analysis per netlist instance per process: four rules
#: share it, and the campaign warn hook may lint the same core the CLI
#: just did.
_testability_cache: "weakref.WeakKeyDictionary[Netlist, object]" = \
    weakref.WeakKeyDictionary()


def _testability(netlist: Netlist):
    """The cached :class:`TestabilityAnalysis`, or ``None`` if broken."""
    if netlist in _testability_cache:
        return _testability_cache[netlist]
    from repro.analysis.testability import analyze_testability
    try:
        analysis = analyze_testability(netlist)
    except ValueError:
        analysis = None  # structurally broken: NET000's findings apply
    _testability_cache[netlist] = analysis
    return analysis


@rule("NET008", "netlist", Severity.INFO,
      "hard-to-control net (SCOAP controllability above percentile cliff)")
def check_hard_to_control(netlist: Netlist) -> Iterator[Finding]:
    analysis = _testability(netlist)
    if analysis is None or netlist.n_nets < TESTABILITY_MIN_NETS:
        return
    from repro.analysis.testability import finite, percentile
    difficulty = [analysis.difficulty(net) for net in range(netlist.n_nets)]
    cliff = percentile(finite(difficulty), TESTABILITY_PERCENTILE)
    for net, cost in enumerate(difficulty):
        if cliff < cost < float("inf"):
            yield finding(
                "NET008",
                _loc(netlist, f"net {_net_name(netlist, net)!r}"),
                f"SCOAP controllability {cost:.0f} exceeds the p"
                f"{TESTABILITY_PERCENTILE:g} cliff ({cliff:.0f})",
                hint="justifying a value here costs a long input "
                     "sequence; consider a control/test point",
            )


@rule("NET009", "netlist", Severity.INFO,
      "hard-to-observe net (SCOAP observability above percentile cliff)")
def check_hard_to_observe(netlist: Netlist) -> Iterator[Finding]:
    analysis = _testability(netlist)
    if analysis is None or netlist.n_nets < TESTABILITY_MIN_NETS:
        return
    from repro.analysis.testability import finite, percentile
    cliff = percentile(finite(analysis.co), TESTABILITY_PERCENTILE)
    for net, cost in enumerate(analysis.co):
        if cliff < cost < float("inf"):
            yield finding(
                "NET009",
                _loc(netlist, f"net {_net_name(netlist, net)!r}"),
                f"SCOAP observability {cost:.0f} exceeds the p"
                f"{TESTABILITY_PERCENTILE:g} cliff ({cliff:.0f})",
                hint="propagating a fault effect from here to an output "
                     "is expensive; consider an observation point",
            )


@rule("NET010", "netlist", Severity.WARNING,
      "predicted random-resistant fault site (COP detection probability "
      "below floor)")
def check_random_resistant_sites(netlist: Netlist) -> Iterator[Finding]:
    analysis = _testability(netlist)
    if analysis is None:
        return
    from repro.faults.model import collapse_faults
    for fault in collapse_faults(netlist).faults:
        score = analysis.score(fault)
        if score.statically_untestable:
            continue  # NET011's finding, not a probability problem
        prob = score.detection_probability
        if prob < DETECT_PROB_FLOOR:
            name = _net_name(netlist, fault.net)
            yield finding(
                "NET010",
                _loc(netlist, f"fault {name!r} sa{fault.stuck_at}"),
                f"COP detection probability {prob:.2e} is below the "
                f"{DETECT_PROB_FLOOR:.0e} floor",
                hint="random patterns are not expected to catch this "
                     "fault; schedule it for deterministic ATPG "
                     "(repro.atpg, guided=True)",
            )


@rule("NET011", "netlist", Severity.WARNING,
      "statically untestable candidate (unbounded SCOAP excitation or "
      "observation cost)")
def check_statically_untestable(netlist: Netlist) -> Iterator[Finding]:
    analysis = _testability(netlist)
    if analysis is None:
        return
    from repro.faults.model import collapse_faults
    for fault in collapse_faults(netlist).faults:
        score = analysis.score(fault)
        if not score.statically_untestable:
            continue
        name = _net_name(netlist, fault.net)
        reasons = []
        if score.excite_cost == float("inf"):
            reasons.append(
                f"no input sequence drives it to {fault.stuck_at ^ 1}"
            )
        if score.observe_cost == float("inf"):
            reasons.append("no path propagates it to an output")
        yield finding(
            "NET011",
            _loc(netlist, f"fault {name!r} sa{fault.stuck_at}"),
            "statically untestable: " + " and ".join(reasons),
            hint="dead or constant logic (see NET002/NET003); faults "
                 "here cap achievable coverage",
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_netlist(netlist: Netlist,
                 min_severity: Severity = Severity.INFO) -> LintReport:
    """Run every netlist rule; findings below ``min_severity`` are dropped."""
    report = LintReport()
    for entry in rules_for("netlist"):
        report.extend(f for f in entry.check(netlist)
                      if f.severity >= min_severity)
    return report


class LintWarning(UserWarning):
    """Category used by the warn-only campaign construction hook."""


#: Netlists already screened by :func:`warn_on_netlist` this process.
_screened: "weakref.WeakSet[Netlist]" = weakref.WeakSet()


def warn_on_netlist(netlist: Netlist, context: str = "",
                    min_severity: Severity = Severity.ERROR,
                    ) -> Optional[LintReport]:
    """Warn-only netlist screening for fault-universe construction.

    Campaign adapters call this when they build a fault universe: the
    netlist rules run once per netlist instance per process, and any
    findings at ``min_severity`` or above surface as a single
    :class:`LintWarning` (never an exception — campaigns must keep
    working on imperfect netlists).  The default threshold is ERROR:
    the paper core's netlists legitimately carry warning-level findings
    (dead tie-off gates, outliers), and a hook that cries wolf on clean
    inputs trains everyone to ignore it.  Disable with ``REPRO_LINT=0``.
    Returns the report, or ``None`` when screening was skipped.
    """
    if os.environ.get("REPRO_LINT", "1") == "0":
        return None
    if netlist in _screened:
        return None
    _screened.add(netlist)
    report = lint_netlist(netlist, min_severity=min_severity)
    if report.findings:
        worst = report.findings[:3]
        summary = "; ".join(f"{f.rule} {f.message}" for f in worst)
        more = len(report.findings) - len(worst)
        if more > 0:
            summary += f" (+{more} more)"
        warnings.warn(
            f"lint: netlist {netlist.name!r}"
            + (f" ({context})" if context else "")
            + f" has {len(report.findings)} finding(s): {summary} — "
            "run `python -m repro lint` for the full report",
            LintWarning,
            stacklevel=2,
        )
    return report


def _reset_screened_for_tests() -> None:
    _screened.clear()
