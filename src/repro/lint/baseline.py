"""Baseline suppression files.

A baseline records the ``rule@location`` keys of *known, accepted*
findings so CI fails only on new ones — the standard ratchet workflow:

1. ``repro lint --write-baseline lint-baseline.json <targets>`` records
   the current findings;
2. the file is committed;
3. later runs with ``--baseline lint-baseline.json`` suppress exactly
   those keys (they are reported separately and never affect the exit
   code), while anything new still fails.

Format (version 1)::

    {"version": 1, "suppress": ["NET003@netlist:demo:net 'y'", ...]}
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.lint.findings import LintReport
from repro.runtime.errors import ConfigError

FORMAT_VERSION = 1


def load_baseline(path: str) -> List[str]:
    """The suppressed finding keys recorded in ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path!r} is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != FORMAT_VERSION:
        raise ConfigError(
            f"baseline {path!r} is not a version-{FORMAT_VERSION} "
            "baseline file"
        )
    keys = doc.get("suppress", [])
    if not isinstance(keys, list) or \
            not all(isinstance(k, str) for k in keys):
        raise ConfigError(f"baseline {path!r}: \"suppress\" must be a "
                          "list of finding keys")
    return keys


def save_baseline(path: str, keys: Iterable[str]) -> int:
    """Write a baseline containing ``keys``; returns how many."""
    unique = sorted(set(keys))
    doc = {"version": FORMAT_VERSION, "suppress": unique}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return len(unique)


def baseline_from_report(path: str, report: LintReport) -> int:
    """Record every finding in ``report`` (kept + suppressed) as accepted."""
    keys = [f.key for f in report.findings] + \
           [f.key for f in report.suppressed]
    return save_baseline(path, keys)
