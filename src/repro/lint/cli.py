"""The ``repro lint`` subcommand.

Targets are positional and mix freely:

* ``core`` — the flat gate-level DSP core netlist;
* ``components`` — every component's standalone gate netlist;
* ``isa`` — static mode reachability of the instruction set;
* ``program`` — generate the self-test program (Phases 1–2) and lint it,
  plus the static/dynamic mode-reachability cross-check on its table;
* ``<file>.json`` — a netlist / program / campaigns artifact
  (see :mod:`repro.lint.artifacts`).

The default target set (``core components isa``) is cheap and
deterministic — it is what the CI smoke step runs.

Exit codes: 0 clean (after baseline suppression), 1 findings at error
severity (or warning severity under ``--strict``), 2 configuration
errors (bad target, unreadable artifact — raised as
:class:`~repro.runtime.errors.ConfigError` and mapped by ``main()``).
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.findings import LintReport, Severity, rule_catalog
from repro.runtime.errors import ConfigError

DEFAULT_TARGETS = ("core", "components", "isa")
BUILTIN_TARGETS = ("core", "components", "isa", "program")


def add_lint_arguments(parser) -> None:
    """Attach the lint options to an argparse subparser."""
    parser.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="builtin targets (%s) and/or JSON artifact files; "
             "default: %s" % (", ".join(BUILTIN_TARGETS),
                              " ".join(DEFAULT_TARGETS)),
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable findings on stdout")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress the finding keys recorded in FILE")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record the current findings as accepted "
                             "and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    parser.add_argument("--min-severity", default="info",
                        choices=["info", "warning", "error"],
                        help="drop findings below this severity")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--table", metavar="FILE",
                        help="also cross-check a saved metrics table "
                             "against static mode reachability")
    parser.add_argument("--samples", type=int, default=60,
                        help="controllability samples for the 'program' "
                             "target's table")
    parser.add_argument("--good", type=int, default=4,
                        help="observability good machines for the "
                             "'program' target's table")


def _lint_target(target: str, args) -> LintReport:
    from repro.lint.netlist_rules import lint_netlist
    min_severity = Severity.parse(args.min_severity)
    if target == "core":
        from repro.dsp.gatelevel import make_gatelevel_core
        return lint_netlist(make_gatelevel_core(), min_severity)
    if target == "components":
        from repro.dsp.components import COMPONENTS
        report = LintReport()
        for spec in COMPONENTS:
            if spec.factory is not None:
                report.merge(lint_netlist(spec.netlist(), min_severity))
        return report
    if target == "isa":
        from repro.lint.modes import lint_isa
        return lint_isa(min_severity)
    if target == "program":
        from repro.lint.modes import lint_table
        from repro.lint.program_rules import lint_program
        from repro.selftest.generator import SelfTestGenerator
        selftest = SelfTestGenerator().generate(
            n_controllability_samples=args.samples,
            n_observability_good=args.good,
        )
        report = lint_program(selftest.program, min_severity)
        report.merge(lint_table(selftest.table, min_severity))
        return report
    if target.endswith(".json"):
        return _lint_artifact(target, min_severity)
    raise ConfigError(
        f"unknown lint target {target!r}: expected one of "
        f"{', '.join(BUILTIN_TARGETS)} or a .json artifact path"
    )


def _lint_artifact(path: str, min_severity: Severity) -> LintReport:
    from repro.lint.artifacts import load_artifact
    from repro.lint.campaign_rules import lint_campaigns
    from repro.lint.netlist_rules import lint_netlist
    from repro.lint.program_rules import lint_program
    from repro.logic.netlist import Netlist
    from repro.selftest.program import TestProgram

    subject = load_artifact(path)
    if isinstance(subject, Netlist):
        return lint_netlist(subject, min_severity)
    if isinstance(subject, TestProgram):
        return lint_program(subject, min_severity)
    return lint_campaigns(subject, min_severity)


def run_lint(args) -> int:
    """Execute ``repro lint`` with parsed arguments; returns the exit code."""
    if args.list_rules:
        # Import for the registration side effect: the catalog renders
        # whatever is registered.
        import repro.lint.campaign_rules  # noqa: F401
        import repro.lint.modes  # noqa: F401
        import repro.lint.netlist_rules  # noqa: F401
        import repro.lint.program_rules  # noqa: F401
        print(rule_catalog())
        return 0

    targets: List[str] = list(args.targets) or list(DEFAULT_TARGETS)
    report = LintReport()
    for target in targets:
        report.merge(_lint_target(target, args))
    if args.table:
        from repro.lint.modes import lint_table
        from repro.metrics.io import load_table
        report.merge(lint_table(load_table(args.table),
                                Severity.parse(args.min_severity)))

    if args.baseline:
        from repro.lint.baseline import load_baseline
        report.apply_baseline(load_baseline(args.baseline))

    if args.write_baseline:
        from repro.lint.baseline import baseline_from_report
        n = baseline_from_report(args.write_baseline, report)
        print(f"recorded {n} accepted finding(s) in {args.write_baseline}")
        return 0

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)
