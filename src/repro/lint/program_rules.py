"""Self-test-program lint rules.

These check the generated (or hand-written) looped program against the
assumptions under which the metrics table was measured:

* ``PRG000`` — the loop section is empty (nothing to iterate);
* ``PRG001`` — an 'R'-state row executes while the selected accumulator
  is provably still zero (read-before-write vs the table's "0"/"R" state
  variants): the measured controllability does not apply to what the
  program actually runs;
* ``PRG002`` — dead store: a register write whose value no later
  instruction reads before it is overwritten, on an instruction with no
  other architectural effect — its result never reaches an ``Out``;
* ``PRG003`` — a line claims to cover a column whose mode no opcode can
  decode to (the static form of Phase 2's unreachable-mode discard);
* ``PRG004`` — the loop never drives the output port, so the MISR
  compacts nothing;
* ``PRG005`` — a '0'-state row whose accumulator is random in the steady
  state (iterations ≥ 2): the measured numbers only describe the first
  iteration (info);
* ``PRG006`` — a claimed column's mode disagrees with the line's own
  decoded control bits.

The accumulator/register dataflow model mirrors the behavioural core: an
instruction *reads* ``acc[accsel]`` iff ``muxb_shift`` is set and the
result is used (``acc_we`` or ``out_en``); a write leaves the accumulator
random iff the product path is open (``muxa_zero == 0``) or it re-reads an
already-random accumulator (``SHIFTA`` on a zero accumulator keeps it
zero).  Loops are analysed over two unrolled iterations so wrap-around
reads count and steady-state effects surface.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.bist.template import RandomLoad
from repro.dsp.isa import ControlWord, Instruction, Opcode, control_word
from repro.lint.findings import Finding, LintReport, Severity, finding, rule, rules_for
from repro.lint.modes import MODE_EXTRACTORS, component_mode, static_unreachable_columns
from repro.selftest.program import ProgramLine, TestProgram


def _control(line: ProgramLine) -> ControlWord:
    if isinstance(line.item, RandomLoad):
        return control_word(Opcode.LDI)  # the trap rewrites ld rnd to LDI
    return control_word(line.item.opcode)


def _writes_reg(line: ProgramLine) -> Optional[int]:
    """The register this line writes, or ``None``."""
    if isinstance(line.item, RandomLoad):
        return line.item.dest
    return line.item.dest if _control(line).reg_we else None


def _reads_regs(line: ProgramLine) -> Set[int]:
    """Registers whose *values* influence this line's visible results."""
    if isinstance(line.item, RandomLoad):
        return set()
    instr: Instruction = line.item
    op = instr.opcode
    if op in (Opcode.OUT, Opcode.MOV):
        return {instr.regb}
    cw = control_word(op)
    if op in (Opcode.LDI, Opcode.OUTA, Opcode.OUTB, Opcode.NOP):
        return set()
    # F1 (MAC family): the multiplier operands matter only when the
    # product reaches the adder; the shift amount is read from rega
    # whenever shmode selects shift-by-amount.
    reads: Set[int] = set()
    if cw.muxa_zero == 0:
        reads |= {instr.rega, instr.regb}
    if cw.shmode == 1:
        reads.add(instr.rega)
    return reads


def _loc(index: int, line: ProgramLine) -> str:
    return f"program:L{index}:{line.symbolic()}"


def _indexed_lines(program: TestProgram) -> List[Tuple[int, ProgramLine]]:
    return list(enumerate(program.lines))


def _schedule(program: TestProgram,
              n_loop_passes: int = 2) -> List[Tuple[int, ProgramLine]]:
    """Execution order with the loop unrolled ``n_loop_passes`` times.

    Indices refer back to ``program.lines`` so findings point at the
    source line regardless of which unrolled copy detected them.
    """
    one_shot = [(i, l) for i, l in _indexed_lines(program) if not l.in_loop]
    loop = [(i, l) for i, l in _indexed_lines(program) if l.in_loop]
    return one_shot + loop * n_loop_passes


# ----------------------------------------------------------------------
# PRG000 — structural sanity
# ----------------------------------------------------------------------
@rule("PRG000", "program", Severity.ERROR,
      "program has no loop section to iterate")
def check_loop_exists(program: TestProgram) -> Iterator[Finding]:
    if not program.loop_lines:
        yield finding(
            "PRG000", "program:loop",
            "no lines are marked in_loop; the test loop is empty",
            hint="a self-test program is a loop plus an optional one-shot "
                 "prologue — an empty loop tests nothing",
        )


# ----------------------------------------------------------------------
# PRG001 / PRG005 — accumulator-state assumptions vs reality
# ----------------------------------------------------------------------
def _acc_states_along(schedule: Sequence[Tuple[int, ProgramLine]]
                      ) -> List[Tuple[int, ProgramLine, str]]:
    """``(index, line, state-of-selected-acc-before-line)`` per step.

    States are "0" (provably still the reset value) and "R" (random /
    data-dependent).  Both accumulators start at "0" (power-up reset).
    """
    states = {0: "0", 1: "0"}  # accsel -> state
    out: List[Tuple[int, ProgramLine, str]] = []
    for index, line in schedule:
        cw = _control(line)
        out.append((index, line, states[cw.accsel]))
        if cw.acc_we:
            if cw.muxa_zero == 0:
                states[cw.accsel] = "R"  # product of random operands
            elif cw.muxb_shift == 1 and states[cw.accsel] == "R":
                states[cw.accsel] = "R"  # shifting a random acc
            else:
                states[cw.accsel] = "0"  # shift/clear of a zero acc
    return out


@rule("PRG001", "program", Severity.ERROR,
      "'R'-state row runs while the selected accumulator is provably zero")
def check_acc_read_before_write(program: TestProgram) -> Iterator[Finding]:
    first_pass = len(program.one_shot_lines) + len(program.loop_lines)
    seen: Set[int] = set()
    for index, line, state in _acc_states_along(_schedule(program))[:first_pass]:
        if line.acc_state != "R" or index in seen:
            continue
        seen.add(index)
        if state == "0":
            cw = _control(line)
            acc = "B" if cw.accsel else "A"
            yield finding(
                "PRG001", _loc(index, line),
                f"row {line.comment or line.symbolic()!r} assumes a random "
                f"Acc{acc}, but Acc{acc} is still zero when the line first "
                "executes",
                hint="insert a randomisation instruction (e.g. "
                     f"MPY{acc} on the random operands) before this line, "
                     "as the generator's 'randomize acc' wrapper does",
            )


@rule("PRG005", "program", Severity.INFO,
      "'0'-state row sees a random accumulator in the steady state")
def check_acc_zero_assumption(program: TestProgram) -> Iterator[Finding]:
    first_pass = len(program.one_shot_lines) + len(program.loop_lines)
    seen: Set[int] = set()
    for index, line, state in _acc_states_along(_schedule(program))[first_pass:]:
        if line.acc_state != "0" or index in seen:
            continue
        seen.add(index)
        if state == "R":
            cw = _control(line)
            acc = "B" if cw.accsel else "A"
            yield finding(
                "PRG005", _loc(index, line),
                f"row {line.comment or line.symbolic()!r} was measured with "
                f"Acc{acc}=0, but from the second iteration on Acc{acc} "
                "carries a random value",
                hint="harmless for coverage (random ⊇ zero randomness), "
                     "but the table's C value only describes iteration 1",
            )


# ----------------------------------------------------------------------
# PRG002 — dead stores
# ----------------------------------------------------------------------
@rule("PRG002", "program", Severity.ERROR,
      "dead store: register value never read before being overwritten")
def check_dead_stores(program: TestProgram) -> Iterator[Finding]:
    schedule = _schedule(program)
    source_len = len(program.lines)
    reported: Set[int] = set()
    for pos, (index, line) in enumerate(schedule):
        if pos >= source_len or index in reported:
            continue  # second unrolled copy: duplicates only
        dest = _writes_reg(line)
        if dest is None:
            continue
        cw = _control(line)
        if cw.acc_we or cw.out_en:
            continue  # the instruction has another architectural effect
        live = False
        redefined = False
        for _, later in schedule[pos + 1:]:
            if dest in _reads_regs(later):
                live = True
                break
            if _writes_reg(later) == dest:
                redefined = True
                break
        if not live:
            reported.add(index)
            yield finding(
                "PRG002", _loc(index, line),
                f"R{dest} is written but never read before "
                + ("being overwritten" if redefined else "the program ends"),
                hint="follow the write with an `out` wrapper (or drop the "
                     "line): a result that never reaches the output port "
                     "contributes nothing to the MISR signature",
            )


# ----------------------------------------------------------------------
# PRG003 — covers-claims on statically unreachable columns
# ----------------------------------------------------------------------
@rule("PRG003", "program", Severity.ERROR,
      "line claims to cover a column no opcode can reach")
def check_unreachable_covers(program: TestProgram) -> Iterator[Finding]:
    claimed = {
        column
        for line in program.lines
        for column in line.covers
    }
    unreachable = set(static_unreachable_columns(sorted(claimed)))
    if not unreachable:
        return
    for index, line in _indexed_lines(program):
        for column in line.covers:
            if column in unreachable:
                yield finding(
                    "PRG003", _loc(index, line),
                    f"claims column {column[0]}:{column[1]}, whose mode is "
                    "selected by no opcode's control bits",
                    hint="Phase 2 discards such columns (\"eliminate "
                         "columns whose control bits are not set by any "
                         "instruction\"); a claim here is a bookkeeping bug",
                )


# ----------------------------------------------------------------------
# PRG004 — unobservable loop
# ----------------------------------------------------------------------
@rule("PRG004", "program", Severity.ERROR,
      "test loop never drives the output port")
def check_loop_observability(program: TestProgram) -> Iterator[Finding]:
    loop = program.loop_lines
    if not loop:
        return  # PRG000's finding
    if not any(_control(line).out_en for line in loop):
        yield finding(
            "PRG004", "program:loop",
            "no loop instruction has out_en set; the MISR compacts "
            "nothing and every fault is unobservable",
            hint="add `out`/`outa`/`outb` observation instructions — the "
                 "paper wraps every selected instruction with one",
        )


# ----------------------------------------------------------------------
# PRG006 — covers mode vs the line's own control bits
# ----------------------------------------------------------------------
@rule("PRG006", "program", Severity.WARNING,
      "claimed column's mode disagrees with the line's control bits")
def check_covers_mode(program: TestProgram) -> Iterator[Finding]:
    for index, line in _indexed_lines(program):
        if not line.covers:
            continue
        cw = _control(line)
        for component, mode in line.covers:
            if component not in MODE_EXTRACTORS:
                continue  # single-mode components are always mode 0
            actual = component_mode(component, cw)
            if actual != mode:
                yield finding(
                    "PRG006", _loc(index, line),
                    f"claims {component}:{mode} but its opcode decodes "
                    f"{component} into mode {actual}",
                    hint="the coverage bookkeeping drifted from the "
                         "decoder truth table; re-derive covers from "
                         "control_word()",
                )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def lint_program(program: TestProgram,
                 min_severity: Severity = Severity.INFO) -> LintReport:
    """Run every program rule; findings below ``min_severity`` are dropped."""
    report = LintReport()
    for entry in rules_for("program"):
        report.extend(f for f in entry.check(program)
                      if f.severity >= min_severity)
    return report
