"""Static analysis over netlists, self-test programs and campaign configs.

The linter turns the pipeline's structural assumptions into
machine-checked invariants, organised as a flat registry of rules across
three domains (see :mod:`repro.lint.findings` for the registry model):

* **netlist** (``NET*``, :mod:`repro.lint.netlist_rules`) — multi-driven
  nets, dead logic, provably-constant nets, uninitialised-state
  propagation, floating buses, fanout/depth outliers;
* **program** (``PRG*``/``ISA*``, :mod:`repro.lint.program_rules` and
  :mod:`repro.lint.modes`) — accumulator-state assumptions vs actual
  dataflow, dead stores, unreachable-mode covers claims, loop
  observability, and the static cross-check of Phase 2's dynamic
  unreachable-column discard;
* **campaign** (``CMP*``, :mod:`repro.lint.campaign_rules`) —
  checkpoint-path collisions and no-progress timeout/jobs combinations.

Run it as ``python -m repro lint`` (see :mod:`repro.lint.cli`), or
in-process::

    from repro.lint import lint_netlist
    report = lint_netlist(netlist)
    assert not report.errors, report.render()

Campaign adapters screen their netlists automatically (warn-only) when
they construct fault universes; set ``REPRO_LINT=0`` to disable.
"""

# Importing the rule modules registers every rule; the registry is what
# the CLI, the catalog and baseline tooling operate on.
from repro.lint.campaign_rules import CampaignConfig, lint_campaigns
from repro.lint.findings import (
    DOMAINS,
    REGISTRY,
    Finding,
    LintReport,
    Rule,
    Severity,
    finding,
    rule,
    rule_catalog,
    rules_for,
    rules_for_subject,
)
from repro.lint.modes import (
    MODE_EXTRACTORS,
    component_mode,
    lint_isa,
    lint_table,
    mode_reachability_crosscheck,
    static_mode_reachability,
    static_unreachable_columns,
)
from repro.lint.netlist_rules import LintWarning, lint_netlist, warn_on_netlist
from repro.lint.program_rules import lint_program

__all__ = [
    "DOMAINS",
    "REGISTRY",
    "CampaignConfig",
    "Finding",
    "LintReport",
    "LintWarning",
    "MODE_EXTRACTORS",
    "Rule",
    "Severity",
    "component_mode",
    "finding",
    "lint_campaigns",
    "lint_isa",
    "lint_netlist",
    "lint_program",
    "lint_table",
    "mode_reachability_crosscheck",
    "rule",
    "rule_catalog",
    "rules_for",
    "rules_for_subject",
    "static_mode_reachability",
    "static_unreachable_columns",
    "warn_on_netlist",
]
