"""Lease-based job ownership for the campaign service.

A *lease* is time-bounded, fenced ownership of one job:

* **Time-bounded** — every lease carries an expiry deadline; a worker
  must renew (heartbeat) before the deadline or the scheduler may
  *reclaim* the job and hand it to someone else.  Expiry alone never
  invalidates a lease — it only makes the lease reclaimable.  Until
  the scheduler actually reclaims it (or the lease is superseded), a
  slow-but-alive worker's writes are still the newest word on the job.
* **Fenced** — each grant carries a *token*, strictly increasing per
  job.  State transitions (renew, complete, fail, release) must quote
  the token of the job's current lease; a zombie worker whose lease
  was reclaimed quotes a stale token and is rejected instead of
  double-completing the job.
* **Epoch-scoped** — each grant records the scheduler incarnation
  (*epoch*) that made it.  Workers live in the scheduler's process,
  so after a crash + restart every lease from an earlier epoch is
  provably orphaned and reclaimable immediately, without waiting out
  the TTL.

The table itself is volatile — the journal (:mod:`.queue`) is the
durable record, and the restarting scheduler rebuilds the table by
replay.  Invariants the table enforces (and the hypothesis suite in
``tests/test_service_lease.py`` hammers): at most one live lease per
job, tokens strictly monotonic per job, and no grant — hence no
resurrection — once a job has been marked terminal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set

from repro.runtime.errors import CampaignError


class LeaseError(CampaignError):
    """An illegal lease transition (double grant, terminal resurrection)."""


@dataclass(frozen=True)
class Lease:
    """One grant of job ownership."""

    job_id: str
    worker: str
    token: int          # fencing token, strictly increasing per job
    epoch: int          # scheduler incarnation that granted it
    granted_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def age(self, now: float) -> float:
        return max(0.0, now - self.granted_at)


class LeaseTable:
    """In-memory lease bookkeeping for one scheduler incarnation."""

    def __init__(self, clock: Callable[[], float] = time.time):
        self.clock = clock
        #: The current (at most one) lease per job.
        self._live: Dict[str, Lease] = {}
        #: Last token issued per job (never reused, even across drops).
        self._tokens: Dict[str, int] = {}
        #: Jobs that reached a terminal status; never leasable again.
        self._terminal: Set[str] = set()

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Lease]:
        return self._live.get(job_id)

    def live_jobs(self) -> List[str]:
        return sorted(self._live)

    def next_token(self, job_id: str) -> int:
        return self._tokens.get(job_id, 0) + 1

    def is_terminal(self, job_id: str) -> bool:
        return job_id in self._terminal

    # ------------------------------------------------------------------
    def grant(self, job_id: str, worker: str, ttl: float, epoch: int,
              now: Optional[float] = None) -> Lease:
        """Issue a new lease; refuses while another lease is current.

        The caller (the scheduler) must reclaim an expired lease before
        re-granting — grant is deliberately strict so the journal shows
        an explicit ``reclaim`` between any two ``lease`` events for
        one job, which is what the invariant checker audits.
        """
        if job_id in self._terminal:
            raise LeaseError(
                f"job {job_id!r} is terminal; it can never be leased again")
        if job_id in self._live:
            raise LeaseError(
                f"job {job_id!r} already has a live lease "
                f"(token {self._live[job_id].token}); reclaim it first")
        now = self.clock() if now is None else now
        lease = Lease(
            job_id=job_id, worker=worker,
            token=self.next_token(job_id), epoch=epoch,
            granted_at=now, expires_at=now + ttl,
        )
        self._tokens[job_id] = lease.token
        self._live[job_id] = lease
        return lease

    def renew(self, job_id: str, token: int, ttl: float,
              now: Optional[float] = None) -> Optional[Lease]:
        """Heartbeat: extend the lease iff ``token`` is still current.

        Returns the renewed lease, or ``None`` when the renewal is
        fenced off (no lease, or a stale token — the worker lost
        ownership and must stop working on the job).
        """
        lease = self._live.get(job_id)
        if lease is None or lease.token != token:
            return None
        now = self.clock() if now is None else now
        renewed = replace(lease, expires_at=now + ttl)
        self._live[job_id] = renewed
        return renewed

    def validate(self, job_id: str, token: int) -> bool:
        """Fencing check: is ``token`` the job's current lease?"""
        lease = self._live.get(job_id)
        return lease is not None and lease.token == token

    # ------------------------------------------------------------------
    def expired(self, epoch: int,
                now: Optional[float] = None) -> List[Lease]:
        """Leases the scheduler may reclaim right now: past their
        deadline, or granted by an earlier (dead) incarnation."""
        now = self.clock() if now is None else now
        return [
            lease for _, lease in sorted(self._live.items())
            if lease.expired(now) or lease.epoch < epoch
        ]

    def drop(self, job_id: str, token: int) -> Optional[Lease]:
        """Remove the lease iff ``token`` matches (reclaim / release /
        terminal transition).  Returns the dropped lease or ``None``."""
        lease = self._live.get(job_id)
        if lease is None or lease.token != token:
            return None
        del self._live[job_id]
        return lease

    def mark_terminal(self, job_id: str) -> None:
        """The job finished for good; drop any lease, refuse all future
        grants.  Reclamation can never resurrect it afterwards."""
        self._live.pop(job_id, None)
        self._terminal.add(job_id)
