"""Remote campaign workers and the distributed chaos soak.

:class:`RemoteWorker` is the other half of
:mod:`repro.runtime.transport`: a process (usually on another host)
that registers with a scheduler, leases jobs, runs their campaigns
with heartbeat renewal, uploads the result report into the scheduler's
content-addressed artifact store, and completes — every step an
at-least-once RPC quoting the lease's fencing token, so nothing the
worker does after losing ownership can corrupt a job.

The partition discipline:

* A heartbeat that cannot be delivered means ownership is *unknown* —
  the worker stops immediately (:class:`LeaseLostError` semantics,
  same as a fenced renewal) and records the ``(job, token)`` pair as
  **suspect**.
* On heal, the suspect tokens are flushed with ``release`` RPCs before
  any new lease: if the lease meanwhile expired and was re-granted the
  scheduler fences the stale token (journaled as ``fenced``); if it is
  somehow still current the release legitimately re-queues the job.
  Either way the journal shows exactly what happened.
* A completed campaign's report is uploaded *before* ``complete`` is
  sent, and both are idempotent — a worker that crashes or partitions
  between the two leaves the system re-runnable from the checkpoint
  with no duplicate artifacts and no double completion.

:func:`run_distributed_soak` (``repro serve --soak --distributed``)
drives a fleet of these workers against one scheduler entirely
in-process on a virtual clock: the seeded chaos monkey partitions
links, delays/duplicates/reorders frames, SIGKILLs the scheduler and
whole worker hosts — and every campaign must still land terminal with
a report identical to its no-chaos golden twin and a hash-verified
artifact trail.
"""

from __future__ import annotations

import base64
import os
import socket as socket_module
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.runtime import chaos
from repro.runtime.artifacts import ArtifactStore, canonical_json, \
    sha256_hex
from repro.runtime.errors import (
    CampaignError,
    DrainRequested,
    LeaseLostError,
    ReproError,
    TransportError,
)
from repro.runtime.integrity import Violation
from repro.runtime.service import (
    JOB_KINDS,
    JobSpec,
    SchedulerService,
    ServiceConfig,
    _VirtualClock,
    report_digest,
    service_job_units,
    verify_journal,
)
from repro.runtime.transport import (
    MemoryChannel,
    RetryPolicy,
    RpcClient,
    SchedulerEndpoint,
    SocketChannel,
)


# ----------------------------------------------------------------------
# The remote worker
# ----------------------------------------------------------------------
class RemoteWorker:
    """One worker process's protocol state machine over an RpcClient."""

    def __init__(self, client: RpcClient, host: Optional[str] = None,
                 pid: Optional[int] = None):
        self.client = client
        self.worker_id = client.worker_id
        self.host = host or socket_module.gethostname()
        self.pid = pid if pid is not None else os.getpid()
        self.registered = False
        self.lease_ttl: float = 30.0
        self.heartbeat_interval: float = 5.0
        #: job → token pairs whose last mutating RPC may not have
        #: landed (partition mid-call); flushed with ``release`` on
        #: heal so the journal records their fate (``fenced`` once the
        #: token has gone stale).
        self._suspect: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def register(self) -> Dict[str, Any]:
        response = self.client.call("register", host=self.host,
                                    pid=self.pid)
        if not response.get("ok"):
            raise TransportError(
                f"scheduler refused registration: "
                f"{response.get('error')}")
        self.lease_ttl = float(response.get("lease_ttl")
                               or self.lease_ttl)
        self.heartbeat_interval = float(
            response.get("heartbeat_interval") or self.heartbeat_interval)
        self.registered = True
        self.client.epoch_changed = False
        self.flush_suspects()
        return response

    def flush_suspects(self) -> None:
        """Settle every suspect token with the scheduler.  Raises
        :class:`TransportError` if the link is still down (the pairs
        stay suspect for the next heal)."""
        for job_id, token in list(self._suspect.items()):
            self.client.call("release", job=job_id, token=token)
            del self._suspect[job_id]
            obs.incr("worker.suspects_flushed")

    # ------------------------------------------------------------------
    def run_next(self) -> Optional[str]:
        """Lease and run one job over the transport.  Returns ``None``
        (nothing ready) or the outcome: ``done`` / ``failed`` /
        ``lost`` / ``fenced`` / ``released``."""
        if self.client.epoch_changed or not self.registered:
            self.register()  # the scheduler restarted under us
        self.flush_suspects()
        if self.client.drain_seen:
            raise DrainRequested("scheduler drain broadcast received")
        response = self.client.call("lease")
        job_doc = response.get("job")
        if not job_doc:
            return None
        spec = JobSpec.from_json(job_doc.get("spec") or {})
        token = int(job_doc["token"])
        return self._run_leased(spec, token)

    def _run_leased(self, spec: JobSpec, token: int) -> str:
        job_id = spec.job_id

        def heartbeat() -> bool:
            chaos.inject("worker.unit", worker=self.worker_id,
                         job=job_id)
            if self.client.drain_seen:
                raise DrainRequested("scheduler drain broadcast")
            try:
                response = self.client.call("heartbeat", job=job_id,
                                            token=token)
            except TransportError:
                # Ownership unknown: stop now, settle the token later.
                self._suspect[job_id] = token
                obs.incr("worker.heartbeats_lost")
                return False
            if response.get("draining"):
                raise DrainRequested("scheduler is draining")
            return bool(response.get("ok"))

        span = obs.span("worker.job", key=job_id,
                        worker=self.worker_id, kind=spec.kind)
        with span:
            try:
                summary = JOB_KINDS[spec.kind](spec, heartbeat)
            except LeaseLostError:
                span.set(outcome="lost")
                return "lost"
            except DrainRequested:
                try:
                    self.client.call("release", job=job_id, token=token)
                except TransportError:
                    self._suspect[job_id] = token
                span.set(outcome="released")
                return "released"
            except ReproError as exc:
                return self._report_failure(span, job_id, token, exc)
            except Exception as exc:  # noqa: BLE001 — poison-job net
                return self._report_failure(span, job_id, token, exc)
            try:
                sha = self._upload_report(spec)
                if sha is not None:
                    summary = dict(summary)
                    summary["artifact"] = sha
                response = self.client.call(
                    "complete", job=job_id, token=token, summary=summary)
            except TransportError:
                # The upload is idempotent and ``complete`` carries an
                # idempotency key; whichever landed, the journal stays
                # consistent and the release-on-heal settles the rest.
                self._suspect[job_id] = token
                span.set(outcome="lost")
                return "lost"
            outcome = "done" if response.get("ok") else "fenced"
            span.set(outcome=outcome)
            obs.incr(f"worker.jobs.{outcome}")
            return outcome

    def _report_failure(self, span: Any, job_id: str, token: int,
                        exc: BaseException) -> str:
        try:
            response = self.client.call(
                "fail", job=job_id, token=token,
                error=f"{type(exc).__name__}: {exc}")
        except TransportError:
            self._suspect[job_id] = token
            span.set(outcome="lost")
            return "lost"
        outcome = "failed" if response.get("ok") else "fenced"
        span.set(outcome=outcome)
        return outcome

    def _upload_report(self, spec: JobSpec) -> Optional[str]:
        """Push the finished campaign's per-unit rows into the
        scheduler's artifact store (content-addressed: a retry or a
        re-run uploads the identical blob to the identical address)."""
        rows = campaign_report_rows(spec)
        if rows is None:
            return None
        data = canonical_json({
            "kind": "campaign-report", "job": spec.job_id,
            "rows": rows,
        })
        response = self.client.call(
            "artifact", job=spec.job_id, name="report.json",
            data=base64.b64encode(data).decode("ascii"),
            sha256=sha256_hex(data))
        if not response.get("ok"):
            return None  # scheduler without a store: summary still lands
        obs.incr("worker.artifacts_uploaded")
        return response.get("sha256")

    def close(self) -> None:
        self.client.close()


def campaign_report_rows(spec: JobSpec) -> Optional[List[List[Any]]]:
    """The sorted ``[unit_id, status, value]`` rows of a job's
    checkpoint — the content the golden-twin audit compares."""
    from repro.runtime.checkpoint import CheckpointStore
    from repro.runtime.runner import UnitResult

    if not spec.checkpoint:
        return None
    store = CheckpointStore(spec.checkpoint)
    if not store.exists():
        return None
    _, records = store.load()
    rows = []
    for record in records.values():
        result = UnitResult.from_record(record)
        rows.append([result.unit_id, result.status, result.value])
    return sorted(rows)


def golden_report_rows(report: Any) -> List[List[Any]]:
    return sorted([r.unit_id, r.status, r.value]
                  for r in report.results.values())


# ----------------------------------------------------------------------
# The worker CLI loop (``repro worker --connect``)
# ----------------------------------------------------------------------
def run_worker(
    address: str,
    worker_id: Optional[str] = None,
    policy: RetryPolicy = RetryPolicy(),
    reconnect_seconds: float = 60.0,
    max_idle: Optional[int] = None,
    poll_seconds: float = 0.5,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Connect to a scheduler and work until drained or idle.

    Outlives transient scheduler outages: any transport failure is
    retried against a fresh connection until ``reconnect_seconds`` of
    continuous unreachability, so a ``kill -9``-ed and restarted
    scheduler picks its workers straight back up (they re-register,
    their stale tokens get fenced, their checkpoints resume).
    """
    worker_id = worker_id or \
        f"{socket_module.gethostname()}-{os.getpid()}"
    channel = SocketChannel(address, timeout=policy.rpc_timeout)
    client = RpcClient(channel, worker_id, policy=policy, seed=seed)
    worker = RemoteWorker(client)
    counts: Dict[str, int] = {}
    idle_rounds = 0
    last_contact = time.monotonic()
    status = "drained"

    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    say(f"worker {worker_id}: connecting to {address}")
    try:
        while True:
            channel.poll_event()
            if client.drain_seen:
                say(f"worker {worker_id}: drain received, exiting")
                break
            try:
                outcome = worker.run_next()
            except DrainRequested:
                say(f"worker {worker_id}: drain received, exiting")
                break
            except TransportError as exc:
                if time.monotonic() - last_contact > reconnect_seconds:
                    say(f"worker {worker_id}: scheduler unreachable "
                        f"for {reconnect_seconds:.0f}s, giving up")
                    status = "disconnected"
                    break
                say(f"worker {worker_id}: transport error ({exc}); "
                    "reconnecting")
                channel.close()
                time.sleep(poll_seconds)
                continue
            last_contact = time.monotonic()
            if outcome is None:
                idle_rounds += 1
                if max_idle is not None and idle_rounds >= max_idle:
                    status = "idle"
                    break
                time.sleep(poll_seconds)
            else:
                idle_rounds = 0
                counts[outcome] = counts.get(outcome, 0) + 1
                say(f"worker {worker_id}: job {outcome} "
                    f"(totals: {counts})")
    finally:
        worker.close()
    return {"worker": worker_id, "status": status, "outcomes": counts}


# ----------------------------------------------------------------------
# The distributed soak
# ----------------------------------------------------------------------
class _SoakHub:
    """The in-process 'network': routes worker requests to the current
    scheduler endpoint, turns a scheduler death mid-request into the
    :class:`TransportError` a real socket would raise — the workers
    survive it, unlike PR 6's single-process soak."""

    def __init__(self) -> None:
        self.endpoint: Optional[SchedulerEndpoint] = None
        self.service: Optional[SchedulerService] = None
        self.on_scheduler_death: Optional[Callable[[], None]] = None

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.endpoint is None:
            raise TransportError("scheduler is down")
        try:
            return self.endpoint.dispatch(request)
        except chaos.ChaosKill as kill:
            self.kill_scheduler()
            raise TransportError(
                f"connection lost: scheduler died mid-request ({kill})"
            ) from kill

    def kill_scheduler(self) -> None:
        if self.service is not None:
            self.service.close()
        self.service = None
        self.endpoint = None
        if self.on_scheduler_death is not None:
            self.on_scheduler_death()


@dataclass
class DistributedSoakReport:
    """Aggregate outcome of ``repro serve --soak --distributed``."""

    seed: int
    classes: Tuple[str, ...]
    n_jobs: int
    n_workers: int
    scheduler_crashes: int = 0
    worker_crashes: int = 0
    partitions: int = 0
    retries: int = 0
    delayed: int = 0
    duplicated: int = 0
    reordered: int = 0
    reclaims: int = 0
    fenced: int = 0
    releases: int = 0
    leases: int = 0
    registrations: int = 0
    artifacts_verified: int = 0
    injections: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def n_disruptions(self) -> int:
        return (self.scheduler_crashes + self.worker_crashes
                + self.partitions + self.reclaims)

    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        injected = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.injections.items()) if count)
        return (
            f"{self.n_jobs} campaigns over {self.n_workers} workers: "
            f"{self.scheduler_crashes} scheduler crashes, "
            f"{self.worker_crashes} worker-host losses, "
            f"{self.partitions} partitioned frames, "
            f"{self.reclaims} lease reclaims, {self.fenced} fenced "
            f"writes, {self.artifacts_verified} artifacts verified, "
            f"{len(self.violations)} invariant violations "
            f"[{injected or 'nothing injected'}]"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "classes": list(self.classes),
            "jobs": self.n_jobs,
            "workers": self.n_workers,
            "scheduler_crashes": self.scheduler_crashes,
            "worker_crashes": self.worker_crashes,
            "partitions": self.partitions,
            "retries": self.retries,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "reclaims": self.reclaims,
            "fenced": self.fenced,
            "releases": self.releases,
            "leases": self.leases,
            "registrations": self.registrations,
            "artifacts_verified": self.artifacts_verified,
            "disruptions": self.n_disruptions,
            "injections": {k: v for k, v in
                           sorted(self.injections.items()) if v},
            "violations": [v.to_json() for v in self.violations],
        }


def run_distributed_soak(
    seed: int,
    campaigns: int = 20,
    n_units: int = 6,
    workers: int = 3,
    classes: Any = chaos.DISTRIBUTED_SOAK_CLASSES,
    probability: float = 0.3,
    max_per_class: Optional[int] = None,
    scratch: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> DistributedSoakReport:
    """Soak the whole distributed tier on a virtual clock.

    ``campaigns`` jobs, ``workers`` remote workers over the in-memory
    transport, one scheduler — then the seeded monkey partitions,
    delays, duplicates and reorders frames, SIGKILLs the scheduler
    (restarted with an epoch bump, replaying its journal) and kills
    whole worker hosts (replaced by fresh workers; the dead host's
    leases expire and are reclaimed).  Afterwards the audit must find:
    every job terminal exactly once, zero journal invariant
    violations, every campaign's checkpoint and uploaded artifact
    identical to its no-chaos golden twin, the artifact manifest
    hash-verified, and every enabled chaos class actually fired.
    """
    import shutil
    import tempfile

    from repro.runtime.chaos import ChaosConfig, ChaosKill, ChaosMonkey
    from repro.runtime.checkpoint import CheckpointStore
    from repro.runtime.integrity import verify_campaign
    from repro.runtime.queue import JobJournal
    from repro.runtime.runner import CampaignReport, CampaignRunner, \
        UnitResult

    classes = tuple(classes)
    if max_per_class is None:
        max_per_class = max(2, campaigns // 4)
    own_scratch = scratch is None
    scratch = scratch or tempfile.mkdtemp(prefix="repro-dist-")
    os.makedirs(scratch, exist_ok=True)
    journal_path = os.path.join(scratch, "service.jsonl")
    artifact_root = os.path.join(scratch, "artifacts")

    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    report = DistributedSoakReport(
        seed=seed, classes=classes, n_jobs=campaigns, n_workers=workers)

    specs: List[JobSpec] = []
    goldens: Dict[str, CampaignReport] = {}
    for i in range(campaigns):
        job_seed = seed * 1_000_003 + i
        spec = JobSpec(
            job_id=f"job{i:03d}", kind="soak", seed=job_seed,
            n_units=n_units,
            checkpoint=os.path.join(scratch, f"job{i:03d}.jsonl"),
        )
        specs.append(spec)
        goldens[spec.job_id] = CampaignRunner().run(
            service_job_units(spec))

    chaos_config = ChaosConfig(
        seed=seed, classes=classes, probability=probability,
        max_per_class=max_per_class, scratch=scratch)
    # The scarcest injection point is ``service.tick`` — one occurrence
    # per scheduler round, and with ``workers`` jobs finishing per round
    # the whole soak takes only ~campaigns/workers clean rounds.  Every
    # class's guaranteed first firing must land inside that window.
    monkey = chaos.install(ChaosMonkey(
        chaos_config, horizon=max(4, campaigns // max(1, workers))))
    clock = _VirtualClock()
    svc_config = ServiceConfig(
        lease_ttl=12.0, heartbeat_interval=3.0, max_job_retries=4,
        backoff_base=1.0, backoff_max=4.0,
    )
    policy = RetryPolicy(
        max_attempts=4, backoff_base=0.2, backoff_factor=2.0,
        backoff_max=1.0, jitter=0.5, deadline=90.0, rpc_timeout=6.0,
    )
    hub = _SoakHub()

    def on_death() -> None:
        report.scheduler_crashes += 1
        say("scheduler killed")

    hub.on_scheduler_death = on_death

    def start_scheduler() -> SchedulerService:
        service = SchedulerService(journal_path, config=svc_config,
                                   clock=clock.now)
        service.chaos_clock_advance = clock.advance
        endpoint = SchedulerEndpoint(
            service, artifacts=ArtifactStore(artifact_root))
        hub.service = service
        hub.endpoint = endpoint
        for spec in specs:
            service.submit(spec)  # idempotent re-submission
        return service

    next_worker = [0]
    all_clients: List[RpcClient] = []

    def make_worker() -> RemoteWorker:
        index = next_worker[0]
        next_worker[0] += 1
        client = RpcClient(
            MemoryChannel(hub), f"w{index}", policy=policy,
            clock=clock.now, sleep=clock.advance,
            seed=seed * 31 + index)
        all_clients.append(client)
        return RemoteWorker(client, host=f"host{index % workers}",
                            pid=1000 + index)

    roster = [make_worker() for _ in range(workers)]

    # Convergence bound: every injection costs at most a few extra
    # rounds; each job needs only one clean lease-run-complete pass.
    budget = 80 + campaigns * 10 + 15 * max_per_class * len(classes)
    try:
        while True:
            if budget <= 0:
                raise CampaignError(
                    "distributed soak failed to converge (round budget "
                    "exhausted without all jobs terminal)")
            budget -= 1
            if hub.endpoint is None:
                try:
                    start_scheduler()
                except ChaosKill:
                    # Died mid-recovery (e.g. a torn journal append
                    # while re-submitting): tear the half-started
                    # incarnation back down and try again.
                    hub.kill_scheduler()
                    say("scheduler killed during recovery")
                    continue
            assert hub.service is not None
            try:
                hub.service.tick()
            except ChaosKill:
                hub.kill_scheduler()
                continue
            if len(hub.service.jobs) >= len(specs) \
                    and hub.service.all_terminal():
                break
            progressed = False
            for slot, worker in enumerate(roster):
                if hub.endpoint is None:
                    break  # scheduler died under a sibling this round
                try:
                    outcome = worker.run_next()
                except ChaosKill as kill:
                    # The whole worker host is gone; its lease times
                    # out and is reclaimed.  A fresh host takes the
                    # slot — with a new identity, like real hardware.
                    report.worker_crashes += 1
                    say(f"worker {worker.worker_id} host lost ({kill})")
                    roster[slot] = make_worker()
                    progressed = True
                    continue
                except (TransportError, DrainRequested):
                    continue  # partitioned / scheduler down: next round
                if outcome is not None:
                    progressed = True
            if not progressed:
                # Leases held by dead/partitioned workers must expire;
                # retry backoff gates must open.
                clock.advance(svc_config.heartbeat_interval)
    finally:
        chaos.uninstall()

    report.injections = monkey.injection_counts()
    for client in all_clients:
        report.partitions += client.stats["partitions"]
        report.retries += client.stats["retries"]
        report.delayed += client.stats["delayed"]
        report.duplicated += client.stats["duplicated"]
        report.reordered += client.stats["reordered"]

    # ---- the audit --------------------------------------------------
    report.violations.extend(
        verify_journal(journal_path, require_terminal=True))
    _, events, _ = JobJournal(journal_path).load(repair=False)
    report.reclaims = sum(1 for e in events if e["event"] == "reclaim")
    report.fenced = sum(1 for e in events if e["event"] == "fenced")
    report.releases = sum(1 for e in events if e["event"] == "release")
    report.leases = sum(1 for e in events if e["event"] == "lease")
    report.registrations = sum(
        1 for e in events if e["event"] == "worker")
    completes = {e["job"]: e for e in events if e["event"] == "complete"}

    store = ArtifactStore(artifact_root)
    report.violations.extend(store.verify())

    for spec in specs:
        golden = goldens[spec.job_id]
        expected = [u.unit_id for u in service_job_units(spec)]
        try:
            _, records = CheckpointStore(spec.checkpoint).load()
        except Exception as exc:  # noqa: BLE001 — audited below
            report.violations.append(Violation(
                "broken-chain", spec.checkpoint or spec.job_id,
                str(exc)))
            continue
        rebuilt = CampaignReport()
        for unit_id in expected:
            if unit_id in records:
                rebuilt.results[unit_id] = \
                    UnitResult.from_record(records[unit_id])
        report.violations.extend(verify_campaign(
            rebuilt, checkpoint=spec.checkpoint, golden=golden,
            expected_units=expected))

        complete = completes.get(spec.job_id)
        summary = (complete or {}).get("summary") or {}
        if complete is not None:
            if summary.get("digest") != report_digest(golden):
                report.violations.append(Violation(
                    "summary-digest-mismatch", spec.job_id,
                    f"completion summary digest "
                    f"{summary.get('digest')!r} differs from the "
                    "golden twin's"))
            sha = summary.get("artifact")
            if not isinstance(sha, str) or not sha:
                report.violations.append(Violation(
                    "missing-artifact", spec.job_id,
                    "completed job recorded no result artifact"))
            else:
                try:
                    doc = store.get_json(sha)
                except ReproError as exc:
                    report.violations.append(Violation(
                        "bad-artifact", spec.job_id, str(exc)))
                else:
                    if doc.get("rows") != golden_report_rows(golden):
                        report.violations.append(Violation(
                            "artifact-mismatch", spec.job_id,
                            "uploaded report rows differ from the "
                            "golden twin's"))
                    else:
                        report.artifacts_verified += 1
        say(f"{spec.job_id}: audited")

    for name in classes:
        if not report.injections.get(name):
            report.violations.append(Violation(
                "class-never-fired", name,
                "enabled chaos class never injected (soak too short "
                "or horizon unreachable)"))

    if own_scratch:
        shutil.rmtree(scratch, ignore_errors=True)
    return report
