"""Resilient campaign runtime.

Long-running workloads (hierarchical fault simulation, metric sampling,
ATPG baselines) run as *campaigns* of idempotent work units with JSONL
checkpointing, per-unit wall-clock timeouts, retry-with-backoff,
quarantine of poisoned units and graceful degradation to cheaper
backends.  See :mod:`repro.runtime.runner` for the execution model and
:mod:`repro.runtime.campaigns` for the per-workload adapters.

The package also owns the structured exception hierarchy
(:class:`ReproError` and friends) used across the whole reproduction.
"""

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import (
    CampaignError,
    CheckpointCorruptError,
    ConfigError,
    ReproError,
    SimulationError,
    UnitTimeout,
)
from repro.runtime.rng import derive_rng, rng_factory
from repro.runtime.runner import (
    CampaignReport,
    CampaignRunner,
    UnitResult,
    WorkUnit,
    call_with_timeout,
)

__all__ = [
    "CampaignError",
    "CampaignReport",
    "CampaignRunner",
    "CheckpointCorruptError",
    "CheckpointStore",
    "ConfigError",
    "ReproError",
    "SimulationError",
    "UnitResult",
    "UnitTimeout",
    "WorkUnit",
    "call_with_timeout",
    "derive_rng",
    "rng_factory",
]
