"""Resilient campaign runtime.

Long-running workloads (hierarchical fault simulation, metric sampling,
ATPG baselines) run as *campaigns* of idempotent work units with JSONL
checkpointing, per-unit wall-clock timeouts, retry-with-backoff,
quarantine of poisoned units and graceful degradation to cheaper
backends.  See :mod:`repro.runtime.runner` for the execution model and
:mod:`repro.runtime.campaigns` for the per-workload adapters.

Campaigns scale across cores through the process-pool backend
(:mod:`repro.runtime.pool`, ``jobs > 1`` / ``REPRO_JOBS``) and share
compiled evaluators and good-machine traces through the
content-addressed caches in :mod:`repro.runtime.cache`.

Populations of campaigns run under the crash-safe scheduler service
(:mod:`repro.runtime.service`): a persistent hash-chained job journal
(:mod:`repro.runtime.queue`), time-bounded fenced leases
(:mod:`repro.runtime.lease`), heartbeat renewal and reclamation, retry
with backoff and poison-job quarantine — ``repro serve`` on the CLI.

The package also owns the structured exception hierarchy
(:class:`ReproError` and friends) used across the whole reproduction.
"""

from repro.runtime.cache import cache_stats, clear_caches, netlist_hash
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.pool import merge_shards, resolve_jobs
from repro.runtime.errors import (
    CampaignError,
    CheckpointCorruptError,
    ConfigError,
    DrainRequested,
    LeaseLostError,
    ReproError,
    SimulationError,
    UnitTimeout,
)
from repro.runtime.lease import Lease, LeaseError, LeaseTable
from repro.runtime.queue import JobJournal, JournalDefect
from repro.runtime.rng import derive_rng, rng_factory
from repro.runtime.runner import (
    CampaignReport,
    CampaignRunner,
    UnitResult,
    WorkUnit,
    call_with_timeout,
)
from repro.runtime.service import (
    JobSpec,
    SchedulerService,
    ServiceConfig,
    ServiceWorker,
    run_service_soak,
    verify_journal,
)

__all__ = [
    "CampaignError",
    "CampaignReport",
    "CampaignRunner",
    "CheckpointCorruptError",
    "CheckpointStore",
    "ConfigError",
    "DrainRequested",
    "JobJournal",
    "JobSpec",
    "JournalDefect",
    "Lease",
    "LeaseError",
    "LeaseLostError",
    "LeaseTable",
    "ReproError",
    "SchedulerService",
    "ServiceConfig",
    "ServiceWorker",
    "SimulationError",
    "UnitResult",
    "UnitTimeout",
    "WorkUnit",
    "cache_stats",
    "call_with_timeout",
    "clear_caches",
    "derive_rng",
    "merge_shards",
    "netlist_hash",
    "resolve_jobs",
    "rng_factory",
    "run_service_soak",
    "verify_journal",
]
