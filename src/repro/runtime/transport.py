"""Fault-tolerant message transport between the scheduler and workers.

PR 6's fencing machinery already assumed workers the scheduler cannot
see — leases expire, epochs fence, reclaims re-queue — but every worker
actually lived in the scheduler's process.  This module makes remote
workers real: a message protocol over length-prefixed JSON frames that
``repro worker --connect HOST:PORT`` processes use to register, lease
jobs, stream heartbeats and upload results, built so that *nothing the
network does* can violate a scheduler invariant.

The robustness contract, layer by layer:

* **Frames** are 4-byte big-endian length + one JSON object.  The
  decoder (:class:`FrameDecoder`) treats truncated, oversized and
  garbage input as :class:`~repro.runtime.errors.FrameError` — the
  server drops that connection and keeps serving; it never crashes.
* **Every request carries identity**: the worker id, the scheduler
  epoch the worker last saw, and — for job operations — the lease's
  fencing token.  The scheduler's existing ``_fence`` check is the
  final authority; the transport only ever *adds* rejections, never
  removes them.
* **Every RPC is at-least-once**: :class:`RpcClient` retries under a
  deadline with exponential backoff + seeded jitter.  Safe because
  every request carries an **idempotency key** and the
  :class:`SchedulerEndpoint` replays the recorded response for a key
  it has already applied — at-least-once delivery, exactly-once
  journal effect.
* **The network is hostile on purpose**: the ``transport.send``
  injection point drives four deterministic chaos classes —
  ``net_partition`` (frame lost), ``net_delay`` (delivered late),
  ``net_dup`` (delivered twice) and ``net_reorder`` (a stale frame
  arrives after a newer one).  All inert-when-off, like every other
  chaos hook.

``parse_address`` accepts ``HOST:PORT`` (TCP) and ``unix:/path``
(UNIX domain socket); :class:`MemoryChannel` swaps the sockets out for
a deterministic in-process hub so the distributed soak can partition
links and kill hosts on a virtual clock.
"""

from __future__ import annotations

import base64
import json
import os
import random
import socket
import struct
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.runtime import chaos
from repro.runtime.errors import (
    ConfigError,
    FrameError,
    ReproError,
    TransportError,
)

# ----------------------------------------------------------------------
# The frame codec
# ----------------------------------------------------------------------
#: Hard cap on one frame: far above any real request (job specs and
#: summaries are KiB-scale; artifact uploads are bounded by the store's
#: own blob limit) and far below anything that could exhaust memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(doc: Dict[str, Any]) -> bytes:
    """One message as wire bytes: 4-byte big-endian length + JSON."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed`` buffers partial input and returns every complete frame;
    a frame that can never become valid (oversized length prefix,
    non-JSON payload, a payload that is not an object) raises
    :class:`FrameError` — the caller drops the connection.  The
    decoder itself never crashes on any byte sequence.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"frame length prefix {length} exceeds the "
                    f"{MAX_FRAME_BYTES}-byte limit (corrupt or hostile "
                    "stream)")
            if len(self._buffer) < _LEN.size + length:
                return frames
            payload = bytes(self._buffer[_LEN.size:_LEN.size + length])
            del self._buffer[:_LEN.size + length]
            try:
                doc = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise FrameError(
                    f"frame payload is not JSON: {exc}") from exc
            if not isinstance(doc, dict):
                raise FrameError(
                    f"frame payload is {type(doc).__name__}, expected "
                    "an object")
            frames.append(doc)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """One client's RPC budget (what lint CMP006 audits).

    ``max_attempts`` and ``deadline`` jointly bound every call; backoff
    grows exponentially with seeded jitter so a healed partition is not
    greeted by a synchronized stampede of retries.
    """

    max_attempts: int = 5
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Extra random fraction of each backoff (0.5 ⇒ up to +50%).
    jitter: float = 0.5
    #: Total wall-clock budget for one call including retries.
    deadline: float = 30.0
    #: Per-attempt socket/read timeout.
    rpc_timeout: float = 5.0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("transport max_attempts must be >= 1")
        if self.deadline <= 0 or self.rpc_timeout <= 0:
            raise ConfigError(
                "transport deadline and rpc_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("transport backoff bounds must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigError("transport jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        base = min(self.backoff_base * self.backoff_factor ** max(
            0, attempt - 1), self.backoff_max)
        return base * (1.0 + self.jitter * rng.random())

    def lint_doc(self) -> Dict[str, Any]:
        """This policy as the ``"transport"`` block of a campaigns
        artifact (see lint rule CMP006)."""
        return {
            "max_attempts": self.max_attempts,
            "deadline": self.deadline,
            "rpc_timeout": self.rpc_timeout,
            "backoff_base": self.backoff_base,
            "backoff_max": self.backoff_max,
        }


# ----------------------------------------------------------------------
# Channels: how request/response frames actually move
# ----------------------------------------------------------------------
def parse_address(address: str) -> Tuple[str, Any]:
    """``HOST:PORT`` → ``("tcp", (host, port))``; ``unix:/path`` →
    ``("unix", path)``."""
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ConfigError("unix transport address needs a path")
        return "unix", path
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"transport address {address!r} is neither HOST:PORT nor "
            "unix:/path")
    try:
        return "tcp", (host, int(port))
    except ValueError as exc:
        raise ConfigError(
            f"transport address {address!r} has a non-integer port"
        ) from exc


def format_address(family: str, addr: Any) -> str:
    if family == "unix":
        return f"unix:{addr}"
    return f"{addr[0]}:{addr[1]}"


class SocketChannel:
    """One worker's connection to a real scheduler socket.

    Lazily connects, reconnects on the next use after any failure, and
    surfaces every socket-level problem as :class:`TransportError` so
    the :class:`RpcClient` retry loop owns the recovery policy.
    Unsolicited ``{"event": "drain"}`` frames from the server (the
    SIGTERM broadcast) set :attr:`drain_seen` instead of being
    mistaken for responses.
    """

    def __init__(self, address: str, timeout: float = 5.0):
        self.family, self.addr = parse_address(address)
        self.timeout = timeout
        self.drain_seen = False
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            if self.family == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.addr)
            else:
                sock = socket.create_connection(
                    self.addr, timeout=self.timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to scheduler at "
                f"{format_address(self.family, self.addr)}: {exc}"
            ) from exc
        self._sock = sock
        self._decoder = FrameDecoder()
        return sock

    def send_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and block for the frame answering its id."""
        sock = self._connect()
        try:
            sock.sendall(encode_frame(request))
            while True:
                for frame in self._read_frames(sock):
                    if frame.get("event") == "drain":
                        self.drain_seen = True
                        continue
                    if frame.get("id") == request.get("id"):
                        return frame
                    # A response to an earlier, timed-out attempt:
                    # stale by definition — drop it.
        except FrameError:
            self.close()
            raise
        except OSError as exc:
            self.close()
            raise TransportError(
                f"connection to scheduler lost mid-call: {exc}"
            ) from exc

    def _read_frames(self, sock: socket.socket) -> List[Dict[str, Any]]:
        while True:
            data = sock.recv(65536)
            if not data:
                raise TransportError(
                    "scheduler closed the connection mid-call")
            frames = self._decoder.feed(data)
            if frames:
                return frames

    def poll_event(self) -> bool:
        """Non-blockingly drain unsolicited frames (e.g. the drain
        broadcast) while the worker is between requests."""
        if self._sock is None:
            return self.drain_seen
        try:
            self._sock.settimeout(0.0)
            data = self._sock.recv(65536)
            if data:
                for frame in self._decoder.feed(data):
                    if frame.get("event") == "drain":
                        self.drain_seen = True
        except (BlockingIOError, socket.timeout, InterruptedError):
            pass
        except (OSError, FrameError):
            self.close()
        finally:
            if self._sock is not None:
                self._sock.settimeout(self.timeout)
        return self.drain_seen

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class MemoryChannel:
    """The soak's deterministic stand-in for a socket: requests go
    straight to a hub object exposing ``dispatch(request) -> response``
    (raising :class:`TransportError` while the scheduler is down)."""

    def __init__(self, hub: Any):
        self.hub = hub
        self.drain_seen = False

    def send_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        response = self.hub.dispatch(request)
        if response.get("draining"):
            self.drain_seen = True
        return response

    def poll_event(self) -> bool:
        return self.drain_seen

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# The RPC client
# ----------------------------------------------------------------------
class RpcClient:
    """At-least-once request/response with exactly-once server effect.

    Every call gets a fresh idempotency id (``req-<worker>-<n>``) and
    is retried under :class:`RetryPolicy` whenever the channel raises
    :class:`TransportError`.  The ``transport.send`` chaos point fires
    here, *before* the frame leaves:

    * ``net_partition`` — the frame is lost; the attempt fails.
    * ``net_delay`` — the frame is delivered late (the injected
      ``sleep`` runs first, long enough to outrun lease TTLs).
    * ``net_dup`` — the frame is delivered twice; the endpoint's
      idempotency cache must absorb the duplicate.
    * ``net_reorder`` — the *previous* request is re-delivered first,
      modelling an old frame overtaking a new one; fencing tokens and
      the idempotency cache must absorb it.
    """

    def __init__(
        self,
        channel: Any,
        worker_id: str,
        policy: RetryPolicy = RetryPolicy(),
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        seed: int = 0,
    ):
        policy.validate()
        self.channel = channel
        self.worker_id = worker_id
        self.policy = policy
        self.clock = clock
        self.sleep = sleep
        self.rng = random.Random((seed, worker_id).__repr__())
        #: The scheduler epoch this client last saw; quoted on every
        #: request so the server can spot a worker from a past life.
        self.epoch: Optional[int] = None
        #: Set when a response reveals the scheduler restarted (epoch
        #: moved) — the worker should re-register.
        self.epoch_changed = False
        self._counter = 0
        self._last_request: Optional[Dict[str, Any]] = None
        self.stats = {"sent": 0, "retries": 0, "partitions": 0,
                      "delayed": 0, "duplicated": 0, "reordered": 0}

    @property
    def drain_seen(self) -> bool:
        return bool(getattr(self.channel, "drain_seen", False))

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        self._counter += 1
        request: Dict[str, Any] = {
            "op": op,
            "id": f"req-{self.worker_id}-{self._counter}",
            "worker": self.worker_id,
        }
        if self.epoch is not None:
            request["epoch"] = self.epoch
        request.update(fields)

        deadline = self.clock() + self.policy.deadline
        attempt = 0
        last_error: Optional[BaseException] = None
        while True:
            attempt += 1
            if attempt > self.policy.max_attempts \
                    or self.clock() > deadline:
                raise TransportError(
                    f"rpc {op!r} exhausted its retry budget "
                    f"({attempt - 1} attempts): {last_error}")
            try:
                response = self._attempt(request)
            except TransportError as exc:
                last_error = exc
                self.stats["retries"] += 1
                obs.incr("transport.retries")
                self.sleep(self.policy.backoff(attempt, self.rng))
                continue
            self._last_request = request
            self.stats["sent"] += 1
            obs.incr("transport.sent")
            self._note_epoch(response)
            return response

    def _attempt(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fired = chaos.inject("transport.send", op=request["op"],
                             worker=self.worker_id)
        if fired == "net_partition":
            self.stats["partitions"] += 1
            obs.incr("transport.partitions")
            raise TransportError(
                f"chaos: link partitioned, frame {request['id']} lost")
        if fired == "net_delay":
            self.stats["delayed"] += 1
            self.sleep(self.policy.rpc_timeout)
        if fired == "net_reorder" and self._last_request is not None:
            # An old frame overtakes this one: the peer sees the stale
            # request (again) first.  Its effect must be nil.
            self.stats["reordered"] += 1
            try:
                self.channel.send_request(self._last_request)
            except TransportError:
                pass
        if fired == "net_dup":
            # Delivered twice: the first copy's effect lands, then the
            # real exchange below replays it via the idempotency cache.
            self.stats["duplicated"] += 1
            try:
                self.channel.send_request(request)
            except TransportError:
                pass
        return self.channel.send_request(request)

    def _note_epoch(self, response: Dict[str, Any]) -> None:
        epoch = response.get("epoch")
        if isinstance(epoch, int):
            if self.epoch is not None and epoch != self.epoch:
                self.epoch_changed = True
            self.epoch = epoch

    def close(self) -> None:
        self.channel.close()


# ----------------------------------------------------------------------
# The scheduler-side endpoint
# ----------------------------------------------------------------------
#: Ops whose effect must land exactly once on the journal; their
#: responses are cached by request id so retried/duplicated frames
#: replay the recorded answer instead of re-applying.
MUTATING_OPS = ("register", "lease", "heartbeat", "complete", "fail",
                "release", "artifact")


class SchedulerEndpoint:
    """Dispatches worker requests into a :class:`SchedulerService`.

    Thread-safe (the socket server dispatches from per-connection
    threads while the serve loop ticks), defensive (malformed requests
    get an error response, never an exception), and idempotent (an
    already-seen request id returns its recorded response).  The only
    exception allowed out is :class:`~repro.runtime.chaos.ChaosKill` —
    a simulated scheduler death must not be absorbed.
    """

    def __init__(self, service: Any, artifacts: Any = None,
                 idempotency_limit: int = 4096):
        self.service = service
        self.artifacts = artifacts
        # Share the scheduler's own lock: one RPC's journal effect and
        # its idempotency-cache record commit atomically with respect
        # to the serve loop and every other connection thread.
        self._lock = getattr(service, "lock", None) or threading.RLock()
        self._responses: "OrderedDict[str, Dict[str, Any]]" = \
            OrderedDict()
        self._idempotency_limit = idempotency_limit
        #: Volatile per-worker health: worker id → registration doc +
        #: last-seen stamp (the durable trail lives in the journal's
        #: ``worker``/``lease``/``renew`` events).
        self.workers: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if not isinstance(request, dict):
            return {"ok": False, "error": "request is not an object"}
        op = request.get("op")
        request_id = request.get("id")
        with self._lock:
            if isinstance(request_id, str) and op in MUTATING_OPS:
                cached = self._responses.get(request_id)
                if cached is not None:
                    obs.incr("transport.idempotent_replays")
                    return dict(cached)
            try:
                response = self._apply(op, request)
            except chaos.ChaosKill:
                raise
            except ReproError as exc:
                response = {"ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
            except Exception as exc:  # noqa: BLE001 — never crash
                response = {"ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
            response.setdefault("id", request_id)
            response.setdefault("epoch", self.service.epoch)
            response.setdefault(
                "draining",
                bool(self.service.draining
                     or self.service.drain_requested))
            if isinstance(request_id, str) and op in MUTATING_OPS:
                self._responses[request_id] = dict(response)
                while len(self._responses) > self._idempotency_limit:
                    self._responses.popitem(last=False)
            obs.incr("transport.requests")
            return response

    def _touch(self, worker: Optional[Any]) -> None:
        if isinstance(worker, str) and worker in self.workers:
            self.workers[worker]["last_seen"] = self.service.clock()

    # ------------------------------------------------------------------
    def _apply(self, op: Any, request: Dict[str, Any]) -> Dict[str, Any]:
        worker = request.get("worker")
        self._touch(worker)
        if op == "ping":
            return {"ok": True}
        if op == "register":
            return self._op_register(request)
        if op == "lease":
            return self._op_lease(request)
        if op == "heartbeat":
            job, token = self._job_token(request)
            ok = self.service.heartbeat(job, token)
            return {"ok": ok}
        if op == "complete":
            job, token = self._job_token(request)
            summary = request.get("summary")
            if not isinstance(summary, dict):
                return {"ok": False,
                        "error": "complete needs a summary object"}
            ok = self.service.complete(job, token, summary)
            return {"ok": ok, "fenced": not ok}
        if op == "fail":
            job, token = self._job_token(request)
            ok = self.service.fail(job, token,
                                   str(request.get("error", "")))
            return {"ok": ok, "fenced": not ok}
        if op == "release":
            job, token = self._job_token(request)
            ok = self.service.release(job, token)
            return {"ok": ok, "fenced": not ok}
        if op == "artifact":
            return self._op_artifact(request)
        if op == "status":
            return {"ok": True, "rows": self.service.status_rows()}
        if op == "workers":
            return {"ok": True, "workers": self.connected_workers()}
        return {"ok": False, "error": f"unknown op {op!r}"}

    @staticmethod
    def _job_token(request: Dict[str, Any]) -> Tuple[str, int]:
        job = request.get("job")
        token = request.get("token")
        if not isinstance(job, str) or not job:
            raise ConfigError("request needs a job id")
        if not isinstance(token, int):
            raise ConfigError("request needs an integer fencing token")
        return job, token

    def _op_register(self, request: Dict[str, Any]) -> Dict[str, Any]:
        worker = request.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ConfigError("register needs a worker id")
        doc = {
            "worker": worker,
            "host": str(request.get("host", "?")),
            "pid": int(request.get("pid", 0)),
            "registered_at": self.service.clock(),
            "last_seen": self.service.clock(),
        }
        # Durable observability trail: who connected, from where.
        self.service.journal_worker(worker, doc["host"], doc["pid"])
        self.workers[worker] = doc
        obs.incr("transport.workers.registered")
        config = self.service.config
        return {
            "ok": True,
            "lease_ttl": config.lease_ttl,
            "heartbeat_interval": config.heartbeat_interval,
        }

    def _op_lease(self, request: Dict[str, Any]) -> Dict[str, Any]:
        worker = request.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ConfigError("lease needs a worker id")
        leased = self.service.lease_next(worker)
        if leased is None:
            return {"ok": True, "job": None}
        state, lease = leased
        return {
            "ok": True,
            "job": {
                "spec": state.spec.to_json(),
                "token": lease.token,
                "epoch": lease.epoch,
                "attempt": state.attempts,
                "expires": lease.expires_at,
            },
        }

    def _op_artifact(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.artifacts is None:
            return {"ok": False,
                    "error": "this scheduler has no artifact store"}
        job = request.get("job")
        name = request.get("name")
        if not isinstance(job, str) or not isinstance(name, str) \
                or not job or not name:
            raise ConfigError("artifact upload needs job and name")
        try:
            data = base64.b64decode(str(request.get("data", "")),
                                    validate=True)
        except (ValueError, TypeError) as exc:
            raise ConfigError(
                f"artifact data is not valid base64: {exc}") from exc
        expected = request.get("sha256")
        sha = self.artifacts.put_artifact(job, name, data)
        if isinstance(expected, str) and expected and expected != sha:
            return {"ok": False, "sha256": sha,
                    "error": "uploaded bytes hash to a different "
                             "address than the client claimed"}
        obs.incr("transport.artifacts.uploaded")
        return {"ok": True, "sha256": sha, "size": len(data)}

    # ------------------------------------------------------------------
    def connected_workers(self) -> List[Dict[str, Any]]:
        """Live registry rows (volatile; ``repro status --workers``
        reads the durable journal trail instead)."""
        with self._lock:
            now = self.service.clock()
            return [
                {
                    "worker": doc["worker"], "host": doc["host"],
                    "pid": doc["pid"],
                    "last_seen_age": round(
                        max(0.0, now - doc["last_seen"]), 3),
                }
                for doc in self.workers.values()
            ]


# ----------------------------------------------------------------------
# The socket server
# ----------------------------------------------------------------------
class TransportServer:
    """Accepts worker connections and feeds frames to an endpoint.

    One accept thread plus one thread per connection — workers hold a
    long-lived connection and block on responses, so a thread apiece is
    the simple, honest model at this fleet size.  A connection that
    sends garbage (:class:`FrameError`) is dropped; the server and the
    scheduler keep running.  ``broadcast_drain`` pushes an unsolicited
    drain frame to every live connection so remote workers learn about
    SIGTERM from the scheduler, not from a dead socket.
    """

    def __init__(self, endpoint: SchedulerEndpoint, address: str,
                 backlog: int = 16):
        self.endpoint = endpoint
        self.family, addr = parse_address(address)
        if self.family == "unix":
            try:
                os.unlink(addr)
            except OSError:
                pass
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(addr)
            self._bound: Any = addr
        else:
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind(addr)
            self._bound = self._listener.getsockname()
        self._listener.listen(backlog)
        self._listener.settimeout(0.2)
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._connections: Dict[int, socket.socket] = {}
        self._threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-transport-accept",
            daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return format_address(self.family, self._bound)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            conn.settimeout(0.2)
            with self._lock:
                self._connections[conn.fileno()] = conn
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-transport-conn", daemon=True)
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        key = conn.fileno()
        decoder = FrameDecoder()
        try:
            while not self._stopping.is_set():
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not data:
                    return  # peer closed cleanly
                try:
                    frames = decoder.feed(data)
                except FrameError:
                    obs.incr("transport.bad_frames")
                    return  # hostile/corrupt peer: drop it, keep serving
                for frame in frames:
                    response = self.endpoint.dispatch(frame)
                    try:
                        conn.sendall(encode_frame(response))
                    except (OSError, FrameError):
                        return
        finally:
            with self._lock:
                self._connections.pop(key, None)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def broadcast_drain(self) -> int:
        """Best-effort drain notice to every live connection."""
        frame = encode_frame({"event": "drain"})
        with self._lock:
            conns = list(self._connections.values())
        notified = 0
        for conn in conns:
            try:
                conn.sendall(frame)
                notified += 1
            except OSError:
                pass
        obs.incr("transport.drain_broadcasts")
        return notified

    def connection_count(self) -> int:
        with self._lock:
            return len(self._connections)

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._connections.values())
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)
        if self.family == "unix":
            try:
                os.unlink(self._bound)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Per-worker health from the durable journal trail
# ----------------------------------------------------------------------
def journal_worker_rows(journal_path: str) -> List[Dict[str, Any]]:
    """Rebuild per-worker transport health by replaying the journal.

    Read-only (safe against a live scheduler): ``worker`` events
    contribute identity (host, pid, registrations), ``lease`` events
    bind each ``(job, token)`` to its holder, and every later
    token-quoting event (renew/complete/fail/fenced/reclaim) is
    attributed back through that binding — so fenced writes count
    against the worker whose stale token was rejected, and
    ``last-seen age`` is measured against the journal's newest event.
    """
    from repro.runtime.queue import JobJournal

    _, events, _ = JobJournal(journal_path).load(repair=False)
    rows: Dict[str, Dict[str, Any]] = {}
    holder: Dict[Tuple[str, int], str] = {}
    latest = 0.0

    def row(worker: str) -> Dict[str, Any]:
        if worker not in rows:
            rows[worker] = {
                "worker": worker, "host": "-", "pid": 0,
                "registrations": 0, "leases": 0, "done": 0,
                "failed": 0, "released": 0, "fenced": 0,
                "reclaimed": 0, "last_seen": None,
            }
        return rows[worker]

    def touch(doc: Dict[str, Any], when: Any) -> None:
        if isinstance(when, (int, float)):
            if doc["last_seen"] is None or when > doc["last_seen"]:
                doc["last_seen"] = float(when)

    for event in events:
        kind = event.get("event")
        when = event.get("time")
        if isinstance(when, (int, float)):
            latest = max(latest, float(when))
        if kind == "worker":
            doc = row(str(event.get("worker", "?")))
            doc["host"] = str(event.get("host", "-"))
            doc["pid"] = int(event.get("pid") or 0)
            doc["registrations"] += 1
            touch(doc, when)
        elif kind == "lease":
            worker = str(event.get("worker", "?"))
            doc = row(worker)
            doc["leases"] += 1
            touch(doc, when)
            job, token = event.get("job"), event.get("token")
            if isinstance(job, str) and isinstance(token, int):
                holder[(job, token)] = worker
        elif kind in ("renew", "complete", "fail", "release",
                      "fenced", "reclaim"):
            worker = holder.get((event.get("job"), event.get("token")))
            if worker is None:
                continue
            doc = row(worker)
            if kind == "complete":
                doc["done"] += 1
            elif kind == "fail":
                doc["failed"] += 1
            elif kind == "release":
                doc["released"] += 1
            elif kind == "fenced":
                doc["fenced"] += 1
            elif kind == "reclaim":
                # Scheduler-originated revocation: counts against the
                # worker but is not evidence the worker is alive.
                doc["reclaimed"] += 1
                continue
            touch(doc, when)

    for doc in rows.values():
        if doc["last_seen"] is None:
            doc["last_seen_age"] = None
        else:
            doc["last_seen_age"] = round(
                max(0.0, latest - doc["last_seen"]), 3)
        del doc["last_seen"]
    return sorted(rows.values(), key=lambda d: d["worker"])
