"""Content-addressed caches shared by every simulator (and pool worker).

Three memoisation layers back the campaign engine's throughput:

* **Compiled-evaluator cache.**  :class:`~repro.logic.compiled.CompiledEvaluator`
  construction code-generates and ``exec``-compiles one function per
  netlist — historically *per simulator instance*, so building a
  :class:`~repro.faults.combsim.CombFaultSimulator` for each of the
  core's components recompiled identical netlists over and over.  Here
  evaluators are cached by **structural hash** (gates, flip-flops, PIs,
  POs — names excluded), so structurally identical netlists share one
  compiled function no matter how many simulator instances exist.

* **Compiled-cone cache.**  The batched fault-grading engine
  (:mod:`repro.faults.batched`) compiles every fault site's fanout cone
  into a straight-line kernel
  (:class:`~repro.logic.compiled.CompiledConeEvaluator`).  Kernels are
  keyed by ``(structural hash, net id)`` so both stuck-at polarities,
  every simulator instance, and every pool worker share one compile
  per site.

* **Good-machine trace cache.**  Fault simulation evaluates the
  fault-free machine once per pattern block and then re-evaluates only
  per-fault cones on top.  Repeated grading passes (metrics sweeps,
  re-prepared campaigns, pool workers re-deriving a trace) used to
  re-simulate the good machine from scratch; the trace cache keys the
  full good-value vector by ``(netlist hash, packed pattern block)`` and
  replays it.  The cache is a bounded LRU so paper-scale sweeps cannot
  grow it without limit.

Both caches are guarded by locks (the serial runner's timeout threads
may race the main thread) and are inherited copy-on-write by forked pool
workers — warm a cache before the fork and every worker shares it.

Hit/miss counters are process-local; pool workers snapshot theirs with
:func:`counter_snapshot` after each unit, ship the delta through the
result stream, and the parent folds it back in with
:func:`merge_counts` — so :func:`cache_stats` in the parent reports
true campaign-wide aggregates under ``jobs > 1``.

Cached good-value vectors are returned by reference and must be treated
as **read-only** by callers (cone re-evaluation copies on write already).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro import obs
from repro.logic.netlist import Netlist

#: Bound on the number of good-machine blocks kept (LRU eviction).
TRACE_CACHE_MAX = 256

_LOCK = threading.Lock()
_COMPILED: Dict[str, object] = {}
_COMPILED3: Dict[str, object] = {}
_CONES: Dict[Tuple[str, int], object] = {}
_TRACE: "OrderedDict[Tuple, List[int]]" = OrderedDict()
_STATS = {
    "compile_hits": 0, "compile_misses": 0,
    "cone_hits": 0, "cone_misses": 0,
    "trace_hits": 0, "trace_misses": 0,
}

#: Cache kinds reported by :func:`cache_stats` (and mirrored by
#: :func:`repro.harness.perf.cache_delta`).
CACHE_KINDS = ("compile", "cone", "trace")


# ----------------------------------------------------------------------
# Structural hashing
# ----------------------------------------------------------------------
def netlist_hash(netlist: Netlist) -> str:
    """A structural content hash of ``netlist`` (hex digest).

    Covers everything evaluation depends on — net count, primary
    inputs/outputs, flip-flops and the gate graph — and nothing it does
    not (net *names* and bus metadata are excluded), so two
    independently built but structurally identical netlists hash equal
    and share cache entries.  The digest is memoised on the netlist and
    recomputed if the netlist has grown since.
    """
    shape = (netlist.n_nets, len(netlist.gates), len(netlist.dffs))
    cached = getattr(netlist, "_structural_hash", None)
    if cached is not None and cached[0] == shape:
        return cached[1]
    digest = hashlib.sha256()
    digest.update(repr(shape).encode())
    digest.update(repr(tuple(netlist.inputs)).encode())
    digest.update(repr(tuple(netlist.outputs)).encode())
    for dff in netlist.dffs:
        digest.update(f"D{dff.q}:{dff.d}:{dff.init};".encode())
    for gate in netlist.gates:
        digest.update(
            f"G{gate.kind.name}:{gate.output}:{gate.inputs};".encode()
        )
    value = digest.hexdigest()
    netlist._structural_hash = (shape, value)  # type: ignore[attr-defined]
    return value


# ----------------------------------------------------------------------
# Compiled evaluators
# ----------------------------------------------------------------------
def compiled_evaluator(netlist: Netlist):
    """The shared two-valued :class:`CompiledEvaluator` for ``netlist``.

    Structurally identical netlists receive the same instance; its
    ``.netlist`` attribute references whichever netlist compiled first.
    """
    from repro.logic.compiled import CompiledEvaluator
    return _compiled_for(netlist, _COMPILED, CompiledEvaluator)


def compiled_evaluator3(netlist: Netlist):
    """The shared three-valued :class:`CompiledEvaluator3` for ``netlist``."""
    from repro.logic.compiled import CompiledEvaluator3
    return _compiled_for(netlist, _COMPILED3, CompiledEvaluator3)


def _compiled_for(netlist: Netlist, table: Dict[str, object],
                  factory: Callable[[Netlist], object]):
    key = netlist_hash(netlist)
    with _LOCK:
        hit = table.get(key)
        if hit is not None:
            _STATS["compile_hits"] += 1
            obs.incr("cache.compile.hits")
            return hit
        _STATS["compile_misses"] += 1
    obs.incr("cache.compile.misses")
    built = factory(netlist)  # compile outside the lock
    with _LOCK:
        return table.setdefault(key, built)


def cone_if_cached(netlist: Netlist, net: int):
    """The compiled cone kernel for ``net`` if one already exists, else
    ``None`` — a peek that never compiles.

    The batched engine's adaptive warm-up calls this on every cone walk
    while a site is below its compile threshold, so a kernel compiled
    by another simulator instance (or inherited from a pre-fork warm
    cache) is picked up immediately.  A found kernel counts as a cone
    hit; absence counts nothing (it is not a compile decision).
    """
    key = (netlist_hash(netlist), net)
    with _LOCK:
        hit = _CONES.get(key)
        if hit is not None:
            _STATS["cone_hits"] += 1
            obs.incr("cache.cone.hits")
        return hit


def compiled_cone(netlist: Netlist, net: int):
    """The shared :class:`CompiledConeEvaluator` for one fault site.

    Keyed by ``(structural hash, net id)``: structurally identical
    netlists assign identical net ids to their gate graphs, so every
    simulator instance over the same structure — and both stuck-at
    polarities of the site — share one compiled kernel.
    """
    from repro.logic.compiled import CompiledConeEvaluator
    key = (netlist_hash(netlist), net)
    with _LOCK:
        hit = _CONES.get(key)
        if hit is not None:
            _STATS["cone_hits"] += 1
            obs.incr("cache.cone.hits")
            return hit
        _STATS["cone_misses"] += 1
    obs.incr("cache.cone.misses")
    with obs.section("sim.batched.compile_cone"):
        built = CompiledConeEvaluator(netlist, net)  # outside the lock
    obs.observe("sim.batched.cone_gates", built.n_cone_gates)
    with _LOCK:
        return _CONES.setdefault(key, built)


# ----------------------------------------------------------------------
# Good-machine trace cache
# ----------------------------------------------------------------------
def block_key(bus_patterns: Mapping[str, Sequence[int]],
              n_patterns: int) -> Tuple:
    """An exact, hashable key for one packed pattern block."""
    return (n_patterns, tuple(sorted(
        (name, tuple(words)) for name, words in bus_patterns.items()
    )))


def cached_good_values(netlist: Netlist,
                       bus_patterns: Mapping[str, Sequence[int]],
                       n_patterns: int,
                       compute: Callable[[], List[int]]) -> List[int]:
    """The good-machine value vector for one pattern block, memoised.

    ``compute`` is invoked (outside the lock) only on a miss; its result
    is stored under ``(netlist hash, stimulated bus layout, block key)``
    and returned by reference on later hits — treat it as read-only.
    The bus layout is part of the key because the structural hash
    ignores names: two identical structures that bind the same bus name
    to different nets must not share traces.
    """
    # Chaos "cache_storm" / "cache_poison" (no-op unless installed):
    # an eviction storm must be invisible in campaign results (the
    # cache is a pure memo), and a poisoned trace must be caught by the
    # golden-equivalence invariant — both are exercised by the soak.
    from repro.runtime.chaos import inject as _chaos
    _chaos("cache.lookup")
    layout = tuple(
        (name, tuple(netlist.buses[name])) for name in sorted(bus_patterns)
    )
    key = (netlist_hash(netlist), layout) \
        + block_key(bus_patterns, n_patterns)
    with _LOCK:
        hit = _TRACE.get(key)
        if hit is not None:
            _TRACE.move_to_end(key)
            _STATS["trace_hits"] += 1
            obs.incr("cache.trace.hits")
            return hit
        _STATS["trace_misses"] += 1
    obs.incr("cache.trace.misses")
    values = compute()
    with _LOCK:
        stored = _TRACE.setdefault(key, values)
        _TRACE.move_to_end(key)
        while len(_TRACE) > TRACE_CACHE_MAX:
            _TRACE.popitem(last=False)
    return stored


# ----------------------------------------------------------------------
# Pool aggregation
# ----------------------------------------------------------------------
def counter_snapshot() -> Dict[str, int]:
    """The raw per-kind hit/miss counters (no sizes, no derived rates).

    Pool workers snapshot before/after each unit and ship the
    difference to the parent; see :func:`merge_counts`.
    """
    with _LOCK:
        return dict(_STATS)


def merge_counts(delta: Mapping[str, int]) -> None:
    """Fold a worker's counter delta into this process's counters."""
    with _LOCK:
        for key in _STATS:
            _STATS[key] += delta.get(key, 0)


# ----------------------------------------------------------------------
# Introspection / test hooks
# ----------------------------------------------------------------------
def cache_stats() -> Dict[str, float]:
    """A snapshot of hit/miss counters, sizes and derived hit rates."""
    with _LOCK:
        stats = dict(_STATS)
        stats["compiled_evaluators"] = len(_COMPILED) + len(_COMPILED3)
        stats["compiled_cones"] = len(_CONES)
        stats["trace_blocks"] = len(_TRACE)
    for kind in CACHE_KINDS:
        total = stats[f"{kind}_hits"] + stats[f"{kind}_misses"]
        stats[f"{kind}_hit_rate"] = \
            stats[f"{kind}_hits"] / total if total else 0.0
    return stats


def clear_caches() -> None:
    """Drop every cached entry and zero the counters (test isolation)."""
    with _LOCK:
        _COMPILED.clear()
        _COMPILED3.clear()
        _CONES.clear()
        _TRACE.clear()
        for key in _STATS:
            _STATS[key] = 0
