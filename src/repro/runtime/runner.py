"""The resilient campaign runner.

A *campaign* is a long-running workload decomposed into idempotent
:class:`WorkUnit`\\ s (one fault to grade, one instruction variant to
sample, one PODEM target ...).  The runner executes the units in order
and survives the failure modes that kill monolithic loops:

* **Interruption** — each completed unit is checkpointed (JSONL, atomic
  appends, see :mod:`repro.runtime.checkpoint`); ``resume=True`` skips
  every unit already recorded and re-executes nothing.
* **Hangs** — a per-unit wall-clock ``unit_timeout`` bounds each
  attempt; the unit's thread is abandoned and the campaign moves on.
* **Transient failures** — failed attempts are retried with exponential
  backoff before giving up.
* **Poisoned units** — a unit that fails every attempt is *quarantined*
  (recorded, reported, skipped) instead of aborting the campaign.
* **Graceful degradation** — a unit that exhausts its attempts may fall
  back to a cheaper implementation (e.g. behavioural instead of
  gate-level simulation); its result is tagged ``degraded``.

Unit ``value``\\ s must be JSON-serialisable — they round-trip through
the checkpoint file on resume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import (
    CampaignError,
    ReproError,
    UnitTimeout,
)

#: Terminal unit statuses, in the order counts are reported.
STATUSES = ("ok", "degraded", "quarantined")


@dataclass
class WorkUnit:
    """One idempotent slice of a campaign."""

    unit_id: str
    run: Callable[[], Any]
    #: Cheaper implementation used after repeated timeouts (optional).
    fallback: Optional[Callable[[], Any]] = None
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class UnitResult:
    """Terminal outcome of one unit (what the checkpoint records)."""

    unit_id: str
    status: str                  # "ok" | "degraded" | "quarantined"
    value: Any = None
    attempts: int = 1
    timeouts: int = 0
    error: Optional[str] = None
    elapsed: float = 0.0
    resumed: bool = False        # satisfied from the checkpoint, not re-run

    def record(self) -> Dict[str, Any]:
        return {
            "unit": self.unit_id, "status": self.status,
            "value": self.value, "attempts": self.attempts,
            "timeouts": self.timeouts, "error": self.error,
            "elapsed": round(self.elapsed, 6),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "UnitResult":
        return cls(
            unit_id=record["unit"], status=record.get("status", "ok"),
            value=record.get("value"),
            attempts=record.get("attempts", 1),
            timeouts=record.get("timeouts", 0),
            error=record.get("error"),
            elapsed=record.get("elapsed", 0.0),
            resumed=True,
        )


@dataclass
class CampaignReport:
    """Aggregate outcome of one runner invocation."""

    results: Dict[str, UnitResult] = field(default_factory=dict)
    interrupted: bool = False    # stopped early (max_units cutoff)

    def __getitem__(self, unit_id: str) -> UnitResult:
        return self.results[unit_id]

    def value(self, unit_id: str, default: Any = None) -> Any:
        result = self.results.get(unit_id)
        return default if result is None else result.value

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.results.values() if not r.resumed)

    @property
    def n_resumed(self) -> int:
        return sum(1 for r in self.results.values() if r.resumed)

    @property
    def n_retried(self) -> int:
        return sum(1 for r in self.results.values() if r.attempts > 1)

    def by_status(self, status: str) -> List[UnitResult]:
        return [r for r in self.results.values() if r.status == status]

    def counts(self) -> Dict[str, int]:
        """The accounting row benchmarks and the CLI report."""
        counts = {status: len(self.by_status(status)) for status in STATUSES}
        counts.update(
            total=len(self.results), executed=self.n_executed,
            resumed=self.n_resumed, retried=self.n_retried,
        )
        return counts

    def summary(self) -> str:
        c = self.counts()
        text = (f"{c['total']} units: {c['ok']} ok, "
                f"{c['degraded']} degraded, {c['quarantined']} quarantined "
                f"({c['resumed']} resumed, {c['retried']} retried)")
        if self.interrupted:
            text += " [interrupted]"
        return text


def call_with_timeout(fn: Callable[[], Any],
                      timeout: Optional[float]) -> Any:
    """Run ``fn`` bounded by ``timeout`` seconds of wall clock.

    The attempt runs on a daemon thread; on expiry the thread is
    abandoned (pure-Python work cannot be killed) and
    :class:`UnitTimeout` is raised.  ``timeout=None`` runs inline.
    """
    if timeout is None:
        return fn()
    box: Dict[str, Any] = {}

    def target():
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise UnitTimeout(f"unit exceeded {timeout:.3g}s wall clock")
    if "error" in box:
        raise box["error"]
    return box["value"]


class CampaignRunner:
    """Executes campaigns of work units with checkpointing and recovery.

    ``backoff_base * backoff_factor**k`` seconds are slept before retry
    ``k+1`` (capped at ``backoff_max``); ``sleep`` is injectable so tests
    can assert the schedule without waiting it out.
    """

    def __init__(
        self,
        checkpoint: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 2.0,
        fallback_timeout: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_retries < 0:
            raise CampaignError("max_retries must be >= 0")
        self.store = CheckpointStore(checkpoint) if checkpoint else None
        self.unit_timeout = unit_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.fallback_timeout = fallback_timeout
        self.sleep = sleep
        self.clock = clock

    # ------------------------------------------------------------------
    def backoff_schedule(self) -> List[float]:
        """The delays slept between attempts, in order."""
        return [
            min(self.backoff_base * self.backoff_factor ** k,
                self.backoff_max)
            for k in range(self.max_retries)
        ]

    # ------------------------------------------------------------------
    def run(
        self,
        units: Sequence[WorkUnit],
        fingerprint: Optional[Dict[str, Any]] = None,
        resume: bool = False,
        repair: bool = False,
        retry_quarantined: bool = False,
        max_units: Optional[int] = None,
        progress: Optional[Callable[[UnitResult, int, int], None]] = None,
    ) -> CampaignReport:
        """Execute ``units``, honouring the checkpoint when resuming.

        ``fingerprint`` identifies the workload; a resumed checkpoint
        whose header fingerprint differs raises :class:`CampaignError`
        (the checkpoint belongs to a different campaign).  ``max_units``
        stops after that many fresh executions — the deterministic
        stand-in for a kill signal in tests and for incremental runs.
        """
        units = list(units)
        seen: set = set()
        for unit in units:
            if unit.unit_id in seen:
                raise CampaignError(f"duplicate unit id {unit.unit_id!r}")
            seen.add(unit.unit_id)

        completed: Dict[str, Dict[str, Any]] = {}
        if self.store is not None:
            if resume and self.store.exists():
                header, completed = self.store.load(repair=repair)
                recorded = header.get("fingerprint") or {}
                if fingerprint is not None and recorded != fingerprint:
                    raise CampaignError(
                        "checkpoint fingerprint mismatch: file has "
                        f"{recorded!r}, campaign expects {fingerprint!r}"
                    )
            else:
                self.store.create(fingerprint)

        report = CampaignReport()
        executed = 0
        try:
            for i, unit in enumerate(units):
                record = completed.get(unit.unit_id)
                if record is not None and (
                        record.get("status") != "quarantined"
                        or not retry_quarantined):
                    report.results[unit.unit_id] = \
                        UnitResult.from_record(record)
                    continue
                if max_units is not None and executed >= max_units:
                    report.interrupted = True
                    break
                result = self._run_unit(unit)
                executed += 1
                report.results[unit.unit_id] = result
                if self.store is not None:
                    self.store.append(result.record())
                if progress is not None:
                    progress(result, i + 1, len(units))
        finally:
            if self.store is not None:
                self.store.close()
        return report

    # ------------------------------------------------------------------
    def _run_unit(self, unit: WorkUnit) -> UnitResult:
        started = self.clock()
        timeouts = 0
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.sleep(self.backoff_schedule()[attempt - 1])
            try:
                value = call_with_timeout(unit.run, self.unit_timeout)
                return UnitResult(
                    unit_id=unit.unit_id, status="ok", value=value,
                    attempts=attempt + 1, timeouts=timeouts,
                    elapsed=self.clock() - started,
                )
            except UnitTimeout as exc:
                timeouts += 1
                last_error = exc
            except ReproError as exc:
                last_error = exc
            except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
                last_error = exc

        attempts = self.max_retries + 1
        if unit.fallback is not None and timeouts:
            # Repeated timeouts: degrade to the cheaper implementation.
            try:
                fallback_budget = self.fallback_timeout
                value = call_with_timeout(unit.fallback, fallback_budget)
                return UnitResult(
                    unit_id=unit.unit_id, status="degraded", value=value,
                    attempts=attempts + 1, timeouts=timeouts,
                    error=_describe(last_error),
                    elapsed=self.clock() - started,
                )
            except Exception as exc:  # noqa: BLE001
                last_error = exc
                attempts += 1
        return UnitResult(
            unit_id=unit.unit_id, status="quarantined", value=None,
            attempts=attempts, timeouts=timeouts,
            error=_describe(last_error),
            elapsed=self.clock() - started,
        )


def _describe(exc: Optional[BaseException]) -> Optional[str]:
    if exc is None:
        return None
    return f"{type(exc).__name__}: {exc}"
