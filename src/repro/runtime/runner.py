"""The resilient campaign runner.

A *campaign* is a long-running workload decomposed into idempotent
:class:`WorkUnit`\\ s (one fault to grade, one instruction variant to
sample, one PODEM target ...).  The runner executes the units in order
and survives the failure modes that kill monolithic loops:

* **Interruption** — each completed unit is checkpointed (JSONL, atomic
  appends, see :mod:`repro.runtime.checkpoint`); ``resume=True`` skips
  every unit already recorded and re-executes nothing.
* **Hangs** — a per-unit wall-clock ``unit_timeout`` bounds each
  attempt; the unit's thread is abandoned and the campaign moves on.
  Abandoned threads keep executing (pure-Python work cannot be killed),
  so the runner *accounts* for them: each timed-out unit's
  :class:`UnitResult` records how many of its threads were still alive
  when the unit finished (``leaked_threads``), the optional
  ``WorkUnit.reset`` hook restores shared state the zombie may have
  half-mutated, and the process-pool backend (``jobs > 1``, see
  :mod:`repro.runtime.pool`) sidesteps the problem entirely — worker
  processes die with their threads.
* **Transient failures** — failed attempts are retried with exponential
  backoff before giving up.
* **Poisoned units** — a unit that fails every attempt is *quarantined*
  (recorded, reported, skipped) instead of aborting the campaign.
* **Graceful degradation** — a unit that exhausts its attempts may fall
  back to a cheaper implementation (e.g. behavioural instead of
  gate-level simulation); its result is tagged ``degraded``.

Unit ``value``\\ s must be JSON-serialisable — they round-trip through
the checkpoint file on resume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro import obs
from repro.runtime import chaos
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import (
    CampaignError,
    FingerprintMismatchError,
    ReproError,
    UnitTimeout,
)

#: Terminal unit statuses, in the order counts are reported.
STATUSES = ("ok", "degraded", "quarantined")


@dataclass
class WorkUnit:
    """One idempotent slice of a campaign."""

    unit_id: str
    run: Callable[[], Any]
    #: Cheaper implementation used after repeated timeouts (optional).
    fallback: Optional[Callable[[], Any]] = None
    #: State-isolation hook: called after a timed-out attempt, before
    #: the next attempt or the fallback runs, so the adapter can restore
    #: shared caches the abandoned thread may still be mutating.
    reset: Optional[Callable[[], None]] = None
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class UnitResult:
    """Terminal outcome of one unit (what the checkpoint records)."""

    unit_id: str
    status: str                  # "ok" | "degraded" | "quarantined"
    value: Any = None
    attempts: int = 1
    timeouts: int = 0
    error: Optional[str] = None
    elapsed: float = 0.0
    #: Timed-out attempt threads still alive when the unit finished.
    leaked_threads: int = 0
    resumed: bool = False        # satisfied from the checkpoint, not re-run

    def record(self) -> Dict[str, Any]:
        return {
            "unit": self.unit_id, "status": self.status,
            "value": self.value, "attempts": self.attempts,
            "timeouts": self.timeouts, "error": self.error,
            "elapsed": round(self.elapsed, 6),
            "leaked_threads": self.leaked_threads,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any],
                    resumed: bool = True) -> "UnitResult":
        return cls(
            unit_id=record["unit"], status=record.get("status", "ok"),
            value=record.get("value"),
            attempts=record.get("attempts", 1),
            timeouts=record.get("timeouts", 0),
            error=record.get("error"),
            elapsed=record.get("elapsed", 0.0),
            leaked_threads=record.get("leaked_threads", 0),
            resumed=resumed,
        )


@dataclass
class CampaignReport:
    """Aggregate outcome of one runner invocation."""

    results: Dict[str, UnitResult] = field(default_factory=dict)
    interrupted: bool = False    # stopped early (max_units cutoff)
    #: Per-phase wall-clock accumulated during this run (profiler
    #: sections, e.g. ``runner.unit`` / ``sim.hier.grade_comb``).
    #: Empty unless an observability session with profiling was armed
    #: (:mod:`repro.obs`) — the default report is unchanged.
    timings: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def __getitem__(self, unit_id: str) -> UnitResult:
        return self.results[unit_id]

    def value(self, unit_id: str, default: Any = None) -> Any:
        result = self.results.get(unit_id)
        return default if result is None else result.value

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.results.values() if not r.resumed)

    @property
    def n_resumed(self) -> int:
        return sum(1 for r in self.results.values() if r.resumed)

    @property
    def n_retried(self) -> int:
        return sum(1 for r in self.results.values() if r.attempts > 1)

    def by_status(self, status: str) -> List[UnitResult]:
        return [r for r in self.results.values() if r.status == status]

    @property
    def n_leaked_threads(self) -> int:
        return sum(r.leaked_threads for r in self.results.values())

    def counts(self) -> Dict[str, int]:
        """The accounting row benchmarks and the CLI report."""
        counts = {status: len(self.by_status(status)) for status in STATUSES}
        counts.update(
            total=len(self.results), executed=self.n_executed,
            resumed=self.n_resumed, retried=self.n_retried,
            leaked=self.n_leaked_threads,
        )
        return counts

    def summary(self) -> str:
        c = self.counts()
        text = (f"{c['total']} units: {c['ok']} ok, "
                f"{c['degraded']} degraded, {c['quarantined']} quarantined "
                f"({c['resumed']} resumed, {c['retried']} retried, "
                f"{c['leaked']} threads leaked)")
        if self.interrupted:
            text += " [interrupted]"
        return text


def call_with_timeout(fn: Callable[[], Any],
                      timeout: Optional[float]) -> Any:
    """Run ``fn`` bounded by ``timeout`` seconds of wall clock.

    The attempt runs on a daemon thread; on expiry the thread is
    abandoned (pure-Python work cannot be killed) and
    :class:`UnitTimeout` is raised with the zombie thread attached as
    ``exc.thread`` so the caller can account for the leak (it keeps
    executing — and possibly mutating shared state — until it returns
    on its own).  ``timeout=None`` runs inline.
    """
    if timeout is None:
        return fn()
    box: Dict[str, Any] = {}

    def target():
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        expiry = UnitTimeout(f"unit exceeded {timeout:.3g}s wall clock")
        expiry.thread = thread
        raise expiry
    if "error" in box:
        raise box["error"]
    return box["value"]


class CampaignRunner:
    """Executes campaigns of work units with checkpointing and recovery.

    ``backoff_base * backoff_factor**k`` seconds are slept before retry
    ``k+1`` (capped at ``backoff_max``); ``sleep`` is injectable so tests
    can assert the schedule without waiting it out.

    ``jobs`` selects the execution backend: ``1`` (the default) runs
    units serially in-process; ``jobs > 1`` dispatches pending units to
    a forked process pool (:mod:`repro.runtime.pool`) in work-stealing
    chunks, with per-worker JSONL checkpoint shards merged back into
    the canonical checkpoint.  ``jobs=None`` honours the ``REPRO_JOBS``
    environment variable (default 1, ``auto`` = CPU count).  Both
    backends produce the same :class:`CampaignReport` — same unit ids,
    statuses and values, in the same order.
    """

    def __init__(
        self,
        checkpoint: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 2.0,
        fallback_timeout: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        jobs: Optional[int] = 1,
        pool_stall_timeout: Optional[float] = None,
    ):
        from repro.runtime.pool import resolve_jobs
        if max_retries < 0:
            raise CampaignError("max_retries must be >= 0")
        self.store = CheckpointStore(checkpoint) if checkpoint else None
        self.unit_timeout = unit_timeout
        #: Give up on the process pool after this many seconds without a
        #: completed unit *while a worker is dead* (``None`` = derive a
        #: bound from the retry/backoff budget; see ``pool.run_pooled``).
        self.pool_stall_timeout = pool_stall_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.fallback_timeout = fallback_timeout
        self.sleep = sleep
        self.clock = clock
        self.jobs = resolve_jobs(jobs)
        #: Threads abandoned by timed-out attempts that have not yet
        #: finished on their own (pruned as they die).
        self._leaked_threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    def backoff_schedule(self) -> List[float]:
        """The delays slept between attempts, in order."""
        return [
            min(self.backoff_base * self.backoff_factor ** k,
                self.backoff_max)
            for k in range(self.max_retries)
        ]

    # ------------------------------------------------------------------
    def run(
        self,
        units: Sequence[WorkUnit],
        fingerprint: Optional[Dict[str, Any]] = None,
        resume: bool = False,
        repair: bool = False,
        retry_quarantined: bool = False,
        max_units: Optional[int] = None,
        progress: Optional[Callable[[UnitResult, int, int], None]] = None,
        warmup: Optional[Callable[[], Any]] = None,
        force: bool = False,
    ) -> CampaignReport:
        """Execute ``units``, honouring the checkpoint when resuming.

        ``fingerprint`` identifies the workload; a resumed checkpoint
        whose header fingerprint differs raises
        :class:`FingerprintMismatchError` — the checkpoint belongs to a
        different campaign (different adapter, netlist hash, seed ...)
        and silently mixing its records into this one would fabricate
        results.  ``force=True`` overrides the check deliberately (the
        CLI's ``--force``).  ``max_units`` stops after that many fresh
        executions — the deterministic stand-in for a kill signal in
        tests and for incremental runs.

        ``warmup`` is invoked once before any unit executes under the
        process-pool backend (``jobs > 1``): campaigns use it to build
        the shared trace/setup state in the parent so every forked
        worker inherits it copy-on-write instead of re-deriving it.  It
        is skipped when nothing is pending (a fully resumed campaign
        touches the checkpoint file only) and on the serial path, where
        lazy setup already runs at most once.
        """
        units = list(units)
        seen: set = set()
        for unit in units:
            if unit.unit_id in seen:
                raise CampaignError(f"duplicate unit id {unit.unit_id!r}")
            seen.add(unit.unit_id)

        completed: Dict[str, Dict[str, Any]] = {}
        if self.store is not None:
            if resume and self.store.exists():
                header, completed = self.store.load(repair=repair)
                recorded = header.get("fingerprint") or {}
                if fingerprint is not None and recorded != fingerprint \
                        and not force:
                    raise FingerprintMismatchError(
                        "checkpoint fingerprint mismatch: file has "
                        f"{recorded!r}, campaign expects {fingerprint!r} "
                        "(resume with force to override)"
                    )
                # A previous pooled run killed mid-campaign may have left
                # worker shards holding records the canonical checkpoint
                # never received; fold them in before planning.
                from repro.runtime.pool import merge_shards
                merge_shards(self.store, completed)
            else:
                self.store.create(fingerprint)

        timings_before = obs.profile_timings()
        campaign_span = obs.span("campaign", jobs=self.jobs,
                                 units=len(units))
        try:
            with campaign_span, obs.section("campaign.run"):
                if self.jobs > 1:
                    report = self._run_pooled(
                        units, completed,
                        retry_quarantined=retry_quarantined,
                        max_units=max_units, progress=progress,
                        warmup=warmup,
                    )
                else:
                    report = self._run_serial(
                        units, completed,
                        retry_quarantined=retry_quarantined,
                        max_units=max_units, progress=progress,
                    )
                session = obs.active()
                if session is not None:
                    campaign_span.set(**report.counts())
                    if session.profiler is not None:
                        report.timings = \
                            session.profiler.delta(timings_before)
                return report
        finally:
            if self.store is not None:
                self.store.close()

    # ------------------------------------------------------------------
    def _resumable(self, record: Optional[Dict[str, Any]],
                   retry_quarantined: bool) -> bool:
        """Can this checkpoint record satisfy its unit without re-running?"""
        return record is not None and (
            record.get("status") != "quarantined" or not retry_quarantined
        )

    def _run_serial(
        self,
        units: List[WorkUnit],
        completed: Dict[str, Dict[str, Any]],
        retry_quarantined: bool,
        max_units: Optional[int],
        progress: Optional[Callable[[UnitResult, int, int], None]],
    ) -> CampaignReport:
        report = CampaignReport()
        executed = 0
        for i, unit in enumerate(units):
            record = completed.get(unit.unit_id)
            if self._resumable(record, retry_quarantined):
                report.results[unit.unit_id] = UnitResult.from_record(record)
                continue
            if max_units is not None and executed >= max_units:
                report.interrupted = True
                break
            result = self._run_unit(unit)
            executed += 1
            report.results[unit.unit_id] = result
            if self.store is not None:
                self.store.append(result.record())
            if progress is not None:
                progress(result, i + 1, len(units))
        return report

    def _run_pooled(
        self,
        units: List[WorkUnit],
        completed: Dict[str, Dict[str, Any]],
        retry_quarantined: bool,
        max_units: Optional[int],
        progress: Optional[Callable[[UnitResult, int, int], None]],
        warmup: Optional[Callable[[], Any]],
    ) -> CampaignReport:
        """Pool-backed execution with serial-identical report semantics.

        The unit scan mirrors :meth:`_run_serial` exactly — resumed
        records in order, the fresh-execution budget (``max_units``)
        cutting the campaign at the first over-budget pending unit — so
        the two backends report the same units in the same order.
        """
        from repro.runtime.pool import run_pooled

        report = CampaignReport()
        kept: List[Any] = []            # unit or its resumed record, in order
        pending: List[WorkUnit] = []
        for unit in units:
            record = completed.get(unit.unit_id)
            if self._resumable(record, retry_quarantined):
                kept.append(UnitResult.from_record(record))
                continue
            if max_units is not None and len(pending) >= max_units:
                report.interrupted = True
                break
            pending.append(unit)
            kept.append(unit)

        results: Dict[str, UnitResult] = {}
        if pending:
            if warmup is not None:
                warmup()
            results = run_pooled(self, pending, progress=progress,
                                 total=len(units))
        leftover = [u for u in pending if u.unit_id not in results]
        for unit in leftover:
            # Pool fell back mid-campaign (fork unavailable, worker
            # crash): finish the remainder serially — graceful
            # degradation of the backend itself.
            result = self._run_unit(unit)
            results[unit.unit_id] = result
            if self.store is not None:
                self.store.append(result.record())
        for entry in kept:
            if isinstance(entry, UnitResult):
                report.results[entry.unit_id] = entry
            else:
                report.results[entry.unit_id] = results[entry.unit_id]
        return report

    # ------------------------------------------------------------------
    def leaked_thread_count(self) -> int:
        """Abandoned timeout threads still running right now."""
        self._leaked_threads = [
            t for t in self._leaked_threads if t.is_alive()
        ]
        return len(self._leaked_threads)

    def _note_timeout(self, unit: WorkUnit, exc: UnitTimeout,
                      unit_threads: List[threading.Thread]) -> None:
        """Track the abandoned thread and let the unit restore state."""
        thread = getattr(exc, "thread", None)
        if thread is not None:
            unit_threads.append(thread)
            self._leaked_threads.append(thread)
        if unit.reset is not None:
            try:
                unit.reset()
            except Exception:  # noqa: BLE001 — isolation is best-effort
                pass

    def _run_unit(self, unit: WorkUnit) -> UnitResult:
        span = obs.span("unit", key=unit.unit_id)
        with span, obs.section("runner.unit"):
            result = self._execute_unit(unit)
            span.set(status=result.status, attempts=result.attempts)
            obs.incr(f"campaign.units.{result.status}")
            obs.observe("campaign.unit_seconds", result.elapsed)
            return result

    def _execute_unit(self, unit: WorkUnit) -> UnitResult:
        started = self.clock()
        timeouts = 0
        last_error: Optional[BaseException] = None
        unit_threads: List[threading.Thread] = []

        # Chaos injection (no-op unless a ChaosMonkey is installed):
        # "kill" raises ChaosKill here — mid-campaign, before this
        # unit's record can be written, exactly like a real SIGKILL —
        # and "hang" makes the first attempt block past unit_timeout.
        fired = chaos.inject("runner.unit", unit_id=unit.unit_id)
        run_fn = unit.run
        if fired == "hang" and self.unit_timeout:
            run_fn = chaos.hanging(unit.run, self.unit_timeout)

        def finish(result: UnitResult) -> UnitResult:
            result.leaked_threads = sum(
                1 for t in unit_threads if t.is_alive()
            )
            self.leaked_thread_count()  # prune the runner-level list
            return result

        for attempt in range(self.max_retries + 1):
            if attempt:
                self.sleep(self.backoff_schedule()[attempt - 1])
            try:
                value = call_with_timeout(run_fn, self.unit_timeout)
                return finish(UnitResult(
                    unit_id=unit.unit_id, status="ok", value=value,
                    attempts=attempt + 1, timeouts=timeouts,
                    elapsed=self.clock() - started,
                ))
            except UnitTimeout as exc:
                timeouts += 1
                last_error = exc
                self._note_timeout(unit, exc, unit_threads)
            except ReproError as exc:
                last_error = exc
            except Exception as exc:  # noqa: BLE001 — quarantine, don't abort
                last_error = exc

        attempts = self.max_retries + 1
        if unit.fallback is not None and timeouts:
            # Repeated timeouts: degrade to the cheaper implementation.
            try:
                # Chaos "backend": the cheaper implementation blows up
                # mid-degradation; the unit must quarantine, not abort.
                chaos.inject("runner.fallback", unit_id=unit.unit_id)
                fallback_budget = self.fallback_timeout
                value = call_with_timeout(unit.fallback, fallback_budget)
                return finish(UnitResult(
                    unit_id=unit.unit_id, status="degraded", value=value,
                    attempts=attempts + 1, timeouts=timeouts,
                    error=_describe(last_error),
                    elapsed=self.clock() - started,
                ))
            except UnitTimeout as exc:
                last_error = exc
                attempts += 1
                self._note_timeout(unit, exc, unit_threads)
            except Exception as exc:  # noqa: BLE001
                last_error = exc
                attempts += 1
        return finish(UnitResult(
            unit_id=unit.unit_id, status="quarantined", value=None,
            attempts=attempts, timeouts=timeouts,
            error=_describe(last_error),
            elapsed=self.clock() - started,
        ))


def _describe(exc: Optional[BaseException]) -> Optional[str]:
    if exc is None:
        return None
    return f"{type(exc).__name__}: {exc}"
