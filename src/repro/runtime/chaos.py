"""Deterministic chaos: seeded fault injection into the runtime stack.

The repo grades a DSP core by injecting faults and checking what
propagates to an observable output.  This module turns that discipline
on the campaign runtime itself: a seed-driven :class:`ChaosMonkey`
injects *infrastructure* failures — simulated SIGKILLs, torn checkpoint
writes, disk-full errors, hung units, corrupted/truncated/duplicated
checkpoint records, lost worker shards, cache eviction storms, backend
explosions during degradation — at named injection points wired into
:mod:`~repro.runtime.runner`, :mod:`~repro.runtime.pool`,
:mod:`~repro.runtime.checkpoint` and :mod:`~repro.runtime.cache`.

Design rules:

* **Inert when off.**  Every injection point calls :func:`inject`,
  which is a single ``is None`` check unless a monkey is installed.
  No chaos config ⇒ byte-for-byte identical runtime behaviour.
* **Deterministic.**  All decisions come from one ``random.Random``
  seeded by the config; a given (seed, workload) replays the same
  failure schedule, so every soak failure is reproducible.
* **Guaranteed and bounded.**  Each enabled failure class fires at
  least once (a planned first occurrence) and at most
  ``max_per_class`` times, so campaigns always terminate.
* **Falsifiable.**  :func:`run_soak` runs K seeded campaigns under
  injection, resumes after every induced crash, and audits each final
  report with :func:`repro.runtime.integrity.verify_campaign` against
  a serial no-chaos golden run.  Any violation fails the soak.

The worker-process rule: a forked pool worker inherits the parent's
monkey, but only worker-targeted classes (``kill_worker``) act there —
everything else silently no-ops outside the installing process, so the
parent's failure schedule stays deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.errors import CampaignError, ConfigError, SimulationError


class ChaosKill(BaseException):
    """A simulated SIGKILL.

    Derives from ``BaseException`` so it rips through the runner's
    quarantine machinery (which absorbs ``Exception``) exactly the way
    a real kill signal would end the process — only the soak harness,
    standing in for the operator restarting the job, catches it.
    """


#: Failure classes → the injection point each one acts at.  File-level
#: classes (applied to the checkpoint between runs, not at a live
#: injection point) map to the pseudo-point ``"file"``.
CLASS_POINTS = {
    "kill": "runner.unit",            # simulated SIGKILL mid-campaign
    "hang": "runner.unit",            # attempt blocks past unit_timeout
    "torn": "checkpoint.append",      # partial line + SIGKILL mid-write
    "io": "checkpoint.append",        # ENOSPC-style append failure
    "backend": "runner.fallback",     # degradation backend explodes
    "cache_storm": "cache.lookup",    # every cache evicted at once
    "cache_poison": "cache.lookup",   # bit flip inside a cached trace
    "kill_worker": "pool.worker.unit",  # real SIGKILL of a pool worker
    "shard_loss": "pool.merge",       # worker shard vanishes pre-merge
    "corrupt": "file",                # bit flip in a checkpoint record
    "truncate": "file",               # checkpoint tail chopped off
    "duplicate": "file",              # trailing record duplicated
    "scheduler_crash": "service.tick",    # SIGKILL of the scheduler loop
    "lease_lost": "service.heartbeat",    # partition: ownership revoked
    "heartbeat_delay": "service.heartbeat",  # renewal outrun by the TTL
    "queue_torn_write": "queue.append",   # torn journal append + SIGKILL
    "net_partition": "transport.send",    # frame lost: link partitioned
    "net_delay": "transport.send",        # frame delivered late
    "net_dup": "transport.send",          # frame delivered twice
    "net_reorder": "transport.send",      # stale frame arrives out of order
    "worker_host_loss": "worker.unit",    # the whole worker host dies
}

FAILURE_CLASSES = tuple(CLASS_POINTS)

#: The classes the ``repro chaos`` soak enables by default: everything
#: that is recoverable in a serial campaign with a golden twin.
DEFAULT_SOAK_CLASSES = (
    "kill", "torn", "io", "hang", "corrupt", "truncate", "duplicate",
)

#: The classes the ``repro serve --soak`` service soak enables by
#: default: scheduler death, worker death mid-unit, partition-shaped
#: lease failures and torn journal writes.
SERVICE_SOAK_CLASSES = (
    "kill", "scheduler_crash", "lease_lost", "heartbeat_delay",
    "queue_torn_write",
)

#: The classes ``repro serve --soak --distributed`` enables by default:
#: scheduler death, whole-worker-host death, every network failure mode
#: (partition, delay, duplication, reordering) and torn journal writes.
DISTRIBUTED_SOAK_CLASSES = (
    "scheduler_crash", "worker_host_loss", "net_partition", "net_delay",
    "net_dup", "net_reorder", "queue_torn_write",
)

#: Classes allowed to act inside a forked pool worker.
WORKER_CLASSES = ("kill_worker",)


def parse_classes(spec: str) -> Tuple[str, ...]:
    """Parse a ``--inject kill,corrupt,...`` list (``all`` = every class)."""
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if names == ["all"]:
        return FAILURE_CLASSES
    unknown = [name for name in names if name not in CLASS_POINTS]
    if unknown:
        raise ConfigError(
            f"unknown chaos class(es) {', '.join(unknown)}: expected "
            f"{', '.join(FAILURE_CLASSES)}"
        )
    if not names:
        raise ConfigError("chaos needs at least one failure class")
    return tuple(dict.fromkeys(names))


@dataclass(frozen=True)
class ChaosConfig:
    """One soak's injection policy (what the lint rule CMP004 audits)."""

    seed: Optional[int]
    classes: Tuple[str, ...] = DEFAULT_SOAK_CLASSES
    #: Chance that a class fires *again* at an eligible occurrence after
    #: its guaranteed first firing.  ≥ 1.0 is flagged by lint: every
    #: occurrence failing until the budget is gone is a misconfiguration
    #: (usually a percentage pasted where a fraction belongs).
    probability: float = 0.25
    #: Hard per-class injection budget per campaign (termination bound).
    max_per_class: int = 2
    #: Scratch directory the soak creates and deletes; checkpoints must
    #: not live inside it (lint CMP004).
    scratch: Optional[str] = None

    def validate(self) -> None:
        if self.seed is None:
            raise ConfigError(
                "chaos requires a seed: an unseeded failure schedule "
                "cannot be replayed"
            )
        if not (0.0 <= self.probability < 1.0):
            raise ConfigError(
                f"chaos probability must be in [0, 1), got "
                f"{self.probability!r} (1.0 would fail every injection "
                "point until the budget is exhausted)"
            )
        if self.max_per_class < 1:
            raise ConfigError("chaos max_per_class must be >= 1")
        parse_classes(",".join(self.classes))

    def lint_doc(self) -> Dict[str, Any]:
        """This config as the ``"chaos"`` block of a campaigns artifact."""
        return {
            "seed": self.seed,
            "classes": list(self.classes),
            "probability": self.probability,
            "max_per_class": self.max_per_class,
            "scratch": self.scratch,
        }


class ChaosMonkey:
    """The installed injector: owns the schedule, counters and actions."""

    def __init__(self, config: ChaosConfig, horizon: int = 8):
        config.validate()
        self.config = config
        self.rng = random.Random(config.seed)
        self.pid = os.getpid()
        self._lock = threading.Lock()
        #: Occurrence counters per injection point.
        self.occurrences: Dict[str, int] = {}
        #: Firings per class so far.
        self.fired: Dict[str, int] = {name: 0 for name in config.classes}
        #: Guaranteed first firing: the first occurrence of the class's
        #: point at/after this index triggers it (``horizon`` should be
        #: ≲ the workload size so the guarantee is reachable).
        self.planned: Dict[str, int] = {
            name: self.rng.randrange(max(1, horizon))
            for name in config.classes
        }
        #: (point, class, occurrence) log for the soak report.
        self.events: List[Tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    def _classes_at(self, point: str) -> List[str]:
        return [name for name in self.config.classes
                if CLASS_POINTS[name] == point]

    def _pick(self, point: str) -> Optional[str]:
        """Decide (under the lock) which class, if any, fires now."""
        with self._lock:
            occurrence = self.occurrences.get(point, 0)
            self.occurrences[point] = occurrence + 1
            for name in self._classes_at(point):
                if self.fired[name] >= self.config.max_per_class:
                    continue
                first_due = self.fired[name] == 0 \
                    and occurrence >= self.planned[name]
                again = self.fired[name] > 0 \
                    and self.rng.random() < self.config.probability
                if first_due or again:
                    self.fired[name] += 1
                    self.events.append((point, name, occurrence))
                    return name
        return None

    def inject(self, point: str, **ctx: Any) -> Optional[str]:
        """One injection point was reached; maybe act.  Returns the
        fired class name (for caller-driven effects like ``hang``)."""
        in_worker = os.getpid() != self.pid
        if in_worker and not any(
            CLASS_POINTS[name] == point for name in self.config.classes
            if name in WORKER_CLASSES
        ):
            return None
        name = self._pick(point)
        if name is None:
            return None
        return self._act(name, ctx)

    # ------------------------------------------------------------------
    def _act(self, name: str, ctx: Dict[str, Any]) -> Optional[str]:
        if name == "kill":
            raise ChaosKill("chaos: simulated SIGKILL mid-campaign")
        if name == "torn":
            self._torn_write(ctx)
            raise ChaosKill("chaos: simulated SIGKILL mid-append")
        if name == "scheduler_crash":
            raise ChaosKill("chaos: scheduler SIGKILLed mid-tick")
        if name == "worker_host_loss":
            raise ChaosKill("chaos: worker host lost mid-campaign")
        if name == "queue_torn_write":
            self._torn_write(ctx)
            raise ChaosKill("chaos: scheduler SIGKILLed mid-journal-append")
        if name == "io":
            raise OSError(28, "chaos: no space left on device",
                          ctx.get("store") and ctx["store"].path)
        if name == "backend":
            raise SimulationError(
                "chaos: degradation backend exploded mid-fallback")
        if name == "kill_worker":
            import signal
            os.kill(os.getpid(), signal.SIGKILL)
        if name == "cache_storm":
            from repro.runtime import cache
            cache.clear_caches()
        if name == "cache_poison":
            self._poison_cache()
        if name == "shard_loss":
            paths = list(ctx.get("paths") or ())
            if paths:
                victim = paths[self.rng.randrange(len(paths))]
                try:
                    os.remove(victim)
                except OSError:
                    pass
        return name  # "hang" (and the handled classes) reach here

    def _torn_write(self, ctx: Dict[str, Any]) -> None:
        """Persist the front half of the record the store was appending,
        simulating a kill between ``write`` and the trailing newline."""
        store, line = ctx.get("store"), ctx.get("line")
        if store is None or not line:
            return
        cut = max(1, len(line) // 2)
        store.close()
        try:
            with open(store.path, "a", encoding="utf-8") as handle:
                handle.write(line[:cut])
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass

    def _poison_cache(self) -> None:
        """Flip one bit inside a cached good-machine trace (in place)."""
        from repro.runtime import cache
        with cache._LOCK:
            keys = list(cache._TRACE)
            if not keys:
                with self._lock:  # nothing to poison: refund the firing
                    self.fired["cache_poison"] -= 1
                    if self.events and self.events[-1][1] == "cache_poison":
                        self.events.pop()
                return
            values = cache._TRACE[keys[self.rng.randrange(len(keys))]]
            if values:
                index = self.rng.randrange(len(values))
                values[index] ^= 1 << self.rng.randrange(16)

    # ------------------------------------------------------------------
    # File-level mutations (applied between runs, at crash boundaries)
    # ------------------------------------------------------------------
    def pending_file_mutations(self) -> List[str]:
        """File classes that still owe their guaranteed first firing."""
        return [name for name in ("corrupt", "truncate", "duplicate")
                if name in self.fired and self.fired[name] == 0]

    def mutate_checkpoint(self, path: str) -> Optional[str]:
        """Apply at most one pending file-level mutation to ``path``.

        Prefers classes that have not fired yet (the ≥1 guarantee);
        afterwards fires extras with ``probability``.  Returns the class
        applied, or ``None`` (no file classes enabled, empty file ...).
        """
        candidates = self.pending_file_mutations()
        if not candidates:
            candidates = [
                name for name in ("corrupt", "truncate", "duplicate")
                if name in self.fired
                and self.fired[name] < self.config.max_per_class
                and self.rng.random() < self.config.probability
            ]
        for name in candidates:
            if self._mutate(path, name):
                with self._lock:
                    self.fired[name] += 1
                    self.events.append(("file", name, -1))
                return name
        return None

    def _mutate(self, path: str, name: str) -> bool:
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return False
        lines = data.split(b"\n")
        # Record lines only: index 0 is the header, a destroyed header is
        # a destroyed campaign identity, not a recoverable corruption.
        records = [i for i in range(1, len(lines)) if lines[i]]
        if not records:
            return False
        if name == "corrupt":
            target = records[self.rng.randrange(len(records))]
            line = bytearray(lines[target])
            line[self.rng.randrange(len(line))] ^= \
                1 << self.rng.randrange(8)
            lines[target] = bytes(line)
            mutated = b"\n".join(lines)
        elif name == "truncate":
            cut = self.rng.randrange(1, min(len(data), 40) + 1)
            mutated = data[:-cut]
        else:  # duplicate
            tail = lines[records[-1]]
            mutated = data + tail + b"\n"
        with open(path, "wb") as handle:
            handle.write(mutated)
        return True

    def injection_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.fired)


# ----------------------------------------------------------------------
# The global injection switchboard
# ----------------------------------------------------------------------
_ACTIVE: Optional[ChaosMonkey] = None


def install(monkey: ChaosMonkey) -> ChaosMonkey:
    global _ACTIVE
    _ACTIVE = monkey
    return monkey


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[ChaosMonkey]:
    return _ACTIVE


def inject(point: str, **ctx: Any) -> Optional[str]:
    """The single call every injection point makes.  One attribute read
    and an ``is None`` test when chaos is off — provably inert."""
    monkey = _ACTIVE
    if monkey is None:
        return None
    return monkey.inject(point, **ctx)


def hanging(fn: Callable[[], Any], timeout: float) -> Callable[[], Any]:
    """Wrap ``fn`` so its *first* call blocks well past ``timeout``
    (the attempt times out and leaks its thread, like any real hang);
    later calls — the retry — run ``fn`` directly."""
    state = {"first": True}

    def hung():
        if state["first"]:
            state["first"] = False
            time.sleep(timeout * 3 + 0.05)
        return fn()

    return hung


# ----------------------------------------------------------------------
# The soak harness
# ----------------------------------------------------------------------
@dataclass
class SoakCampaign:
    """Outcome of one chaos campaign inside a soak."""

    index: int
    seed: int
    n_units: int
    crashes: int
    resumes: int
    injections: Dict[str, int]
    violations: List[Any] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.violations


@dataclass
class SoakReport:
    """Aggregate outcome of one ``repro chaos`` invocation."""

    seed: int
    classes: Tuple[str, ...]
    campaigns: List[SoakCampaign] = field(default_factory=list)

    @property
    def n_crashes(self) -> int:
        return sum(c.crashes for c in self.campaigns)

    @property
    def n_resumes(self) -> int:
        return sum(c.resumes for c in self.campaigns)

    @property
    def n_violations(self) -> int:
        return sum(len(c.violations) for c in self.campaigns)

    def injection_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {name: 0 for name in self.classes}
        for campaign in self.campaigns:
            for name, count in campaign.injections.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def ok(self) -> bool:
        return self.n_violations == 0

    def summary(self) -> str:
        injected = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.injection_totals().items())
            if count
        )
        return (
            f"{len(self.campaigns)} chaos campaigns: "
            f"{self.n_crashes} induced crashes, "
            f"{self.n_resumes} resumes, "
            f"{self.n_violations} invariant violations "
            f"[{injected or 'nothing injected'}]"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "classes": list(self.classes),
            "crashes": self.n_crashes,
            "resumes": self.n_resumes,
            "violations": self.n_violations,
            "injections": self.injection_totals(),
            "campaigns": [
                {
                    "index": c.index, "seed": c.seed, "units": c.n_units,
                    "crashes": c.crashes, "resumes": c.resumes,
                    "injections": {k: v for k, v in c.injections.items()
                                   if v},
                    "violations": [v.to_json() for v in c.violations],
                }
                for c in self.campaigns
            ],
        }


def _soak_value(seed: int, index: int) -> int:
    """The deterministic value of soak unit ``index`` (stable across
    processes and resumes — no RNG state involved)."""
    digest = hashlib.sha256(f"{seed}:{index}".encode()).hexdigest()
    return int(digest[:8], 16)


def _soak_units(seed: int, n_units: int):
    from repro.runtime.runner import WorkUnit
    return [
        WorkUnit(unit_id=f"unit{i:03d}",
                 run=lambda i=i: _soak_value(seed, i))
        for i in range(n_units)
    ]


def run_one_chaos_campaign(
    campaign_seed: int,
    n_units: int,
    config: ChaosConfig,
    checkpoint: str,
    index: int = 0,
    jobs: int = 1,
    unit_timeout: float = 0.25,
) -> SoakCampaign:
    """One golden run, then the same workload under chaos with a
    crash-resume loop, then the invariant audit."""
    from repro.runtime.integrity import verify_campaign
    from repro.runtime.runner import CampaignRunner

    fingerprint = {"kind": "chaos-soak", "campaign": index,
                   "seed": campaign_seed, "n_units": n_units}
    unit_ids = [f"unit{i:03d}" for i in range(n_units)]

    def make_runner() -> CampaignRunner:
        # A fresh runner per attempt — each resume models a new process.
        return CampaignRunner(
            checkpoint=checkpoint, unit_timeout=unit_timeout,
            max_retries=3, backoff_base=0.001, backoff_max=0.01,
            jobs=jobs, pool_stall_timeout=10.0,
        )

    golden = CampaignRunner(unit_timeout=None).run(
        _soak_units(campaign_seed, n_units))

    monkey = install(ChaosMonkey(config, horizon=max(2, n_units)))
    crashes = resumes = 0
    # Generous bound: every planned + probabilistic firing, plus slack.
    budget = 8 + 6 * config.max_per_class * len(config.classes)
    try:
        resume = False
        while True:
            if budget <= 0:
                raise CampaignError(
                    "chaos campaign failed to converge (injection "
                    "budget exhausted without a clean completion)"
                )
            budget -= 1
            if resume:
                resumes += 1
            try:
                report = make_runner().run(
                    _soak_units(campaign_seed, n_units),
                    fingerprint=fingerprint, resume=resume, repair=True,
                )
            except (ChaosKill, OSError):
                crashes += 1
                monkey.mutate_checkpoint(checkpoint)
                resume = True
                continue
            if monkey.pending_file_mutations() \
                    and monkey.mutate_checkpoint(checkpoint):
                # Tamper with the completed checkpoint, then prove the
                # chain detects it and a repairing resume re-heals.
                resume = True
                continue
            break
    finally:
        uninstall()

    violations = verify_campaign(
        report, checkpoint=checkpoint, golden=golden,
        expected_units=unit_ids,
    )
    return SoakCampaign(
        index=index, seed=campaign_seed, n_units=n_units,
        crashes=crashes, resumes=resumes,
        injections=monkey.injection_counts(), violations=violations,
    )


def run_soak(
    seed: int,
    campaigns: int = 50,
    n_units: int = 12,
    classes: Sequence[str] = DEFAULT_SOAK_CLASSES,
    probability: float = 0.25,
    max_per_class: int = 2,
    jobs: int = 1,
    scratch: Optional[str] = None,
    unit_timeout: float = 0.25,
    progress: Optional[Callable[[SoakCampaign], None]] = None,
) -> SoakReport:
    """Run ``campaigns`` seeded chaos campaigns; audit every one.

    Each campaign derives its own seed (so failures localise to one
    campaign index), suffers every enabled failure class at least once,
    resumes after every induced crash, and must end with a report
    identical to its no-chaos golden twin — otherwise the violations
    land in the returned :class:`SoakReport` and the CLI exits nonzero.
    """
    import shutil
    import tempfile

    classes = tuple(classes)
    report = SoakReport(seed=seed, classes=classes)
    own_scratch = scratch is None
    scratch = scratch or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(scratch, exist_ok=True)
    try:
        for index in range(campaigns):
            campaign_seed = seed * 1_000_003 + index
            config = ChaosConfig(
                seed=campaign_seed, classes=classes,
                probability=probability, max_per_class=max_per_class,
                scratch=scratch,
            )
            checkpoint = os.path.join(scratch, f"campaign{index:04d}.jsonl")
            outcome = run_one_chaos_campaign(
                campaign_seed, n_units, config, checkpoint,
                index=index, jobs=jobs, unit_timeout=unit_timeout,
            )
            report.campaigns.append(outcome)
            if progress is not None:
                progress(outcome)
    finally:
        uninstall()
        if own_scratch:
            shutil.rmtree(scratch, ignore_errors=True)
    return report
