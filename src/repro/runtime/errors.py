"""Structured exception hierarchy for the whole reproduction.

Every error the package raises deliberately derives from
:class:`ReproError`, so callers (the CLI, the campaign runner, the
benchmark harness) can distinguish *our* failures from genuine Python
bugs with one ``except`` clause.

The configuration/simulation subclasses also inherit the builtin type
they historically raised (``ValueError`` / ``RuntimeError``), so code
written against the old bare exceptions keeps working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every deliberate error raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration: bad parameter values, malformed inputs,
    unknown names, inconsistent sizes."""


class SimulationError(ReproError, RuntimeError):
    """A simulation engine failed while executing an otherwise valid
    workload (netlist inconsistency discovered mid-run, diverging
    cross-check, unexpected component behaviour)."""


class CampaignError(ReproError, RuntimeError):
    """The campaign runner could not run or resume a campaign (unit id
    collisions, fingerprint mismatch on resume, exhausted budget)."""


class CheckpointCorruptError(CampaignError):
    """A checkpoint file failed validation — truncated mid-write,
    non-JSON garbage, a broken record hash chain, or a header that does
    not match the campaign."""


class FingerprintMismatchError(ConfigError, CampaignError):
    """A resumed checkpoint's header fingerprint does not identify the
    campaign being run (different adapter, netlist hash, seed ...).

    Derives from both :class:`ConfigError` (it is a configuration
    problem: the wrong checkpoint was supplied) and
    :class:`CampaignError` (historical callers catch the latter).
    ``--force`` / ``force=True`` overrides the check deliberately.
    """


class IntegrityError(CampaignError):
    """A campaign invariant was violated (see
    :func:`repro.runtime.integrity.verify_campaign`): a unit graded
    twice or not at all, an illegal status, a report diverging from its
    golden twin, orphaned scratch files, or a broken checkpoint chain."""


class LeaseLostError(CampaignError):
    """A service worker lost ownership of its job mid-run: the lease
    expired or was reclaimed/revoked, and a later operation quoted a
    stale fencing token.  The worker must stop touching the job; its
    checkpointed units survive and the next lease resumes them."""


class DrainRequested(ReproError):
    """Cooperative shutdown: the scheduler was asked to drain (SIGTERM)
    and the in-flight worker should checkpoint, release its lease and
    exit cleanly (internal control-flow signal, never user-facing)."""


class TransportError(ReproError, ConnectionError):
    """A transport RPC could not be delivered: the peer is unreachable,
    the connection died mid-exchange, or the retry/deadline budget was
    exhausted.  Derives from :class:`ConnectionError` so generic socket
    handling treats it like any other connectivity failure.  The sender
    must assume the request may or may not have been applied — which is
    why every mutating RPC carries an idempotency key."""


class FrameError(TransportError):
    """A wire frame violated the codec: an oversized length prefix, a
    non-JSON or non-object payload, or garbage where a frame should
    start.  The receiving end drops the connection; it never crashes."""


class UnitTimeout(ReproError):
    """A work unit exceeded its wall-clock budget (internal signal used
    by the campaign runner; quarantined/degraded units report it as a
    string in their result record)."""
