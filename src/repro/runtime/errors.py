"""Structured exception hierarchy for the whole reproduction.

Every error the package raises deliberately derives from
:class:`ReproError`, so callers (the CLI, the campaign runner, the
benchmark harness) can distinguish *our* failures from genuine Python
bugs with one ``except`` clause.

The configuration/simulation subclasses also inherit the builtin type
they historically raised (``ValueError`` / ``RuntimeError``), so code
written against the old bare exceptions keeps working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every deliberate error raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration: bad parameter values, malformed inputs,
    unknown names, inconsistent sizes."""


class SimulationError(ReproError, RuntimeError):
    """A simulation engine failed while executing an otherwise valid
    workload (netlist inconsistency discovered mid-run, diverging
    cross-check, unexpected component behaviour)."""


class CampaignError(ReproError, RuntimeError):
    """The campaign runner could not run or resume a campaign (unit id
    collisions, fingerprint mismatch on resume, exhausted budget)."""


class CheckpointCorruptError(CampaignError):
    """A checkpoint file failed validation — truncated mid-write,
    non-JSON garbage, or a header that does not match the campaign."""


class UnitTimeout(ReproError):
    """A work unit exceeded its wall-clock budget (internal signal used
    by the campaign runner; quarantined/degraded units report it as a
    string in their result record)."""
