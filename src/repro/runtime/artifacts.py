"""Content-addressed result/artifact store for distributed campaigns.

Remote workers finish a campaign on *their* host; the durable record the
fleet cares about — the per-unit result report, coverage summaries, soak
reports — must survive the worker, the network and the scheduler.  This
module stores those results the same way the runtime stores everything
else it refuses to lose: immutable, verifiable, append-only.

* **Blobs are content-addressed.**  Every artifact is stored under its
  own sha256 (``blobs/<aa>/<sha256>``), written via temp +
  ``os.replace``.  Re-uploading an existing blob verifies the bytes and
  is otherwise a no-op, so the transport's at-least-once delivery is
  safe by construction — there is no "half new version" state.
* **The manifest is hash-chained.**  ``manifest.jsonl`` uses the exact
  checkpoint/journal discipline (:func:`repro.runtime.integrity.chain_digest`):
  an atomically written header, one fsynced record per artifact chained
  to its predecessor, torn tails repaired by truncation on open.
  Recording the same ``(job, name, sha256)`` twice is idempotent — one
  manifest record per logical artifact no matter how many times the
  upload RPC is retried.
* **Everything is auditable.**  :meth:`ArtifactStore.verify` replays
  the manifest and hash-verifies every referenced blob, returning the
  same :class:`~repro.runtime.integrity.Violation` shape the campaign
  and journal auditors use; the distributed soak fails on any of them.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.runtime.errors import CheckpointCorruptError, IntegrityError
from repro.runtime.integrity import Violation, chain_digest

MANIFEST_KIND = "repro-artifact-manifest"
FORMAT_VERSION = 1

#: Hard cap on one artifact blob (matches the transport's frame budget;
#: campaign reports are a few hundred KiB at most).
MAX_BLOB_BYTES = 8 * 1024 * 1024


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def canonical_json(doc: Any) -> bytes:
    """Deterministic JSON bytes (sorted keys, fixed separators) so one
    logical document always maps to one blob address."""
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class ArtifactStore:
    """One content-addressed blob store + hash-chained manifest."""

    def __init__(self, root: str):
        self.root = os.fspath(root)
        self.blob_root = os.path.join(self.root, "blobs")
        self.manifest_path = os.path.join(self.root, "manifest.jsonl")
        self._tail: Optional[str] = None
        self._handle = None
        #: (job, name, sha256) triples already recorded (idempotency).
        self._recorded: Optional[set] = None

    # ------------------------------------------------------------------
    # Blobs
    # ------------------------------------------------------------------
    def blob_path(self, sha: str) -> str:
        return os.path.join(self.blob_root, sha[:2], sha)

    def has_blob(self, sha: str) -> bool:
        return os.path.exists(self.blob_path(sha))

    def put_bytes(self, data: bytes) -> str:
        """Store ``data``; returns its sha256 address.  Idempotent: an
        existing blob is verified against the new bytes instead of being
        rewritten, so concurrent/retried uploads can never tear it."""
        if len(data) > MAX_BLOB_BYTES:
            raise IntegrityError(
                f"artifact blob of {len(data)} bytes exceeds the "
                f"{MAX_BLOB_BYTES}-byte store limit")
        sha = sha256_hex(data)
        path = self.blob_path(sha)
        if os.path.exists(path):
            with open(path, "rb") as handle:
                existing = handle.read()
            if sha256_hex(existing) != sha:
                # The name promises the content; a mismatch means the
                # stored blob rotted.  Heal it with the good bytes.
                self._write_blob(path, data)
            return sha
        self._write_blob(path, data)
        return sha

    def _write_blob(self, path: str, data: bytes) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + f".tmp-{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def put_json(self, doc: Any) -> str:
        return self.put_bytes(canonical_json(doc))

    def get_bytes(self, sha: str) -> bytes:
        """Fetch a blob, verifying its content against its address."""
        try:
            with open(self.blob_path(sha), "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise IntegrityError(
                f"artifact blob {sha} is missing from the store: {exc}"
            ) from exc
        if sha256_hex(data) != sha:
            raise IntegrityError(
                f"artifact blob {sha} fails hash verification "
                "(the stored bytes are not the bytes that were named)")
        return data

    def get_json(self, sha: str) -> Any:
        return json.loads(self.get_bytes(sha).decode("utf-8"))

    # ------------------------------------------------------------------
    # The manifest
    # ------------------------------------------------------------------
    def _create_manifest(self) -> None:
        header = {"kind": MANIFEST_KIND, "version": FORMAT_VERSION}
        header["chain"] = chain_digest("", header)
        os.makedirs(self.root, exist_ok=True)
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)
        self._tail = header["chain"]
        self._recorded = set()

    def _load_manifest(
        self, repair: bool,
    ) -> Tuple[List[Dict[str, Any]], Optional[str]]:
        """Walk the manifest chain: ``(records, defect_reason)``.

        Stops at the first untrustworthy line; ``repair=True`` truncates
        back to the intact prefix (torn tails are normal crash debris).
        """
        try:
            with open(self.manifest_path, "r", encoding="utf-8",
                      errors="replace") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CheckpointCorruptError(
                f"cannot read artifact manifest {self.manifest_path}: "
                f"{exc}") from exc
        lines = raw.split("\n")
        trailing_ok = lines and lines[-1] == ""
        if trailing_ok:
            lines = lines[:-1]
        if not lines:
            raise CheckpointCorruptError(
                f"artifact manifest {self.manifest_path} is empty")
        try:
            header = json.loads(lines[0])
        except ValueError:
            header = None
        if not isinstance(header, dict) \
                or header.get("kind") != MANIFEST_KIND \
                or header.get("chain") != chain_digest(
                    "", {k: v for k, v in header.items() if k != "chain"}):
            raise CheckpointCorruptError(
                f"artifact manifest {self.manifest_path} has no valid "
                "header")
        records: List[Dict[str, Any]] = []
        tail = header["chain"]
        good_bytes = len(lines[0]) + 1
        defect = None
        for i, line in enumerate(lines[1:], start=2):
            truncated = i == len(lines) and not trailing_ok
            record = None
            if not truncated:
                try:
                    record = json.loads(line)
                except ValueError:
                    record = None
            if truncated:
                defect = f"line {i}: truncated mid-write"
            elif not isinstance(record, dict):
                defect = f"line {i}: unparseable manifest record"
            elif record.get("chain") != chain_digest(tail, record):
                defect = f"line {i}: integrity chain broken"
            if defect is not None:
                if repair:
                    self.close()
                    with open(self.manifest_path, "r+",
                              encoding="utf-8") as handle:
                        handle.truncate(good_bytes)
                break
            records.append(record)
            tail = record["chain"]
            good_bytes += len(line) + 1
        self._tail = tail
        self._recorded = {
            (r.get("job"), r.get("name"), r.get("sha256"))
            for r in records
        }
        return records, defect

    def _ensure_open(self) -> None:
        if self._tail is not None:
            return
        if not os.path.exists(self.manifest_path):
            self._create_manifest()
        else:
            self._load_manifest(repair=True)

    def record(self, job: str, name: str, sha: str,
               size: int) -> Dict[str, Any]:
        """Durably bind ``job``/``name`` to blob ``sha`` in the manifest.

        Idempotent by ``(job, name, sha256)`` — the at-least-once upload
        path may call this any number of times and the manifest grows
        exactly one record.  Returns the (possibly pre-existing) record.
        """
        self._ensure_open()
        assert self._recorded is not None
        key = (job, name, sha)
        if key in self._recorded:
            for existing in self.entries():
                if (existing.get("job"), existing.get("name"),
                        existing.get("sha256")) == key:
                    return existing
        record = {"event": "artifact", "job": job, "name": name,
                  "sha256": sha, "size": int(size)}
        record["chain"] = chain_digest(self._tail or "", record)
        line = json.dumps(record) + "\n"
        if self._handle is None:
            self._handle = open(self.manifest_path, "a", encoding="utf-8")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._tail = record["chain"]
        self._recorded.add(key)
        return record

    def put_artifact(self, job: str, name: str, data: bytes) -> str:
        """The one-call upload: store the blob, record the manifest
        entry, return the sha256 address.  Safe to repeat."""
        sha = self.put_bytes(data)
        self.record(job, name, sha, size=len(data))
        return sha

    def entries(self) -> List[Dict[str, Any]]:
        """All intact manifest records (read-only; tolerates a torn
        tail without repairing it)."""
        if not os.path.exists(self.manifest_path):
            return []
        records, _ = self._load_manifest(repair=False)
        return records

    def for_job(self, job: str) -> Iterator[Dict[str, Any]]:
        return (r for r in self.entries() if r.get("job") == job)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # The audit
    # ------------------------------------------------------------------
    def verify(self) -> List[Violation]:
        """Audit the whole store: the manifest chain is intact (at most
        a torn tail), every recorded blob exists and hash-verifies, and
        no blob file sits at an address that disagrees with its bytes."""
        violations: List[Violation] = []
        if not os.path.exists(self.manifest_path):
            return violations
        try:
            records, defect = self._load_manifest(repair=False)
        except CheckpointCorruptError as exc:
            return [Violation("broken-manifest", self.manifest_path,
                              str(exc))]
        if defect is not None:
            violations.append(Violation(
                "manifest-defect", self.manifest_path, defect))
        for record in records:
            sha = str(record.get("sha256") or "")
            subject = f"{record.get('job')}/{record.get('name')}"
            try:
                data = self.get_bytes(sha)
            except IntegrityError as exc:
                violations.append(Violation(
                    "bad-artifact", subject, str(exc)))
                continue
            if record.get("size") is not None \
                    and int(record["size"]) != len(data):
                violations.append(Violation(
                    "bad-artifact", subject,
                    f"manifest records {record['size']} bytes but the "
                    f"blob holds {len(data)}"))
        return violations
