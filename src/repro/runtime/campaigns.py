"""Campaign adapters: the repo's expensive loops as resumable units.

Each adapter decomposes one long-running workload into idempotent
:class:`~repro.runtime.runner.WorkUnit`\\ s, hands them to a
:class:`~repro.runtime.runner.CampaignRunner`, and reassembles the
domain result object from the (possibly checkpoint-resumed) unit
records:

* :class:`HierarchicalCampaign` — per-fault grading of the DSP core
  (wraps :class:`repro.faults.hierarchical.HierarchicalFaultSimulator`);
* :class:`CombSimCampaign` — per-fault pattern-parallel combinational
  grading (wraps :class:`repro.faults.combsim.CombFaultSimulator`);
* :class:`MetricsCampaign` — per-instruction-variant C/O sampling
  (wraps the :mod:`repro.metrics` engines);
* :class:`AtpgBaselineCampaign` — per-fault time-frame PODEM attacks
  (wraps :func:`repro.baselines.atpg_baseline.run_atpg_baseline`).

Degradation policy: a hierarchical comb-fault unit that repeatedly
times out retries without the tier-2 gate-level continuous injection
(pure behavioural propagation); a metrics unit retries at reduced
sample counts; a PODEM unit retries at a slashed backtrack budget.
Degraded units are tagged in the campaign report and counted by the
benchmark harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.runner import CampaignReport, CampaignRunner, WorkUnit


@dataclass
class CampaignOutcome:
    """Domain result + unit accounting of one campaign invocation."""

    result: Any
    report: CampaignReport


def _default_runner(checkpoint, unit_timeout, runner,
                    jobs=None) -> CampaignRunner:
    if runner is not None:
        return runner
    return CampaignRunner(checkpoint=checkpoint, unit_timeout=unit_timeout,
                          jobs=jobs)


class _Lazy:
    """Compute-once holder: expensive setup skipped on full resumes."""

    def __init__(self, build):
        self._build = build
        self._value = None

    def __call__(self):
        if self._value is None:
            self._value = self._build()
        return self._value


# ----------------------------------------------------------------------
# Hierarchical core fault simulation
# ----------------------------------------------------------------------
class HierarchicalCampaign:
    """Resumable hierarchical fault grading of the DSP core.

    One unit per fault; the trace recording (``prepare``) runs lazily,
    so resuming a finished campaign touches the checkpoint file only.
    """

    def __init__(
        self,
        words: Sequence[int],
        simulator=None,
        storage_fault_max_cycles: Optional[int] = None,
        checkpoint: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        runner: Optional[CampaignRunner] = None,
        jobs: Optional[int] = None,
        engine: str = "interpreted",
    ):
        # ``engine`` picks the component fault-propagation engine
        # ("interpreted" or "batched") for the default simulator; the
        # two are bit-for-bit identical, so it is deliberately not part
        # of the campaign fingerprint — checkpoints resume across
        # engines.
        from repro.faults.hierarchical import HierarchicalFaultSimulator
        self.simulator = simulator if simulator is not None \
            else HierarchicalFaultSimulator(engine=engine)
        self.words = list(words)
        self.storage_fault_max_cycles = storage_fault_max_cycles
        self.runner = _default_runner(checkpoint, unit_timeout, runner, jobs)
        # Instance-level so the runner's pool warmup records the trace
        # once in the parent and forked workers inherit it.
        self._ctx = _Lazy(lambda: self.simulator.prepare(self.words))

    def fingerprint(self) -> Dict[str, Any]:
        sim = self.simulator
        fp = {
            "kind": "hierarchical",
            "n_words": len(self.words),
            "n_faults": len(self._fault_map()),
            "block_size": sim.block_size,
            "checkpoint_every": sim.checkpoint_every,
            "propagation_window": sim.propagation_window,
            "storage_fault_max_cycles": self.storage_fault_max_cycles,
        }
        # Family points stamp the core identity; the paper core omits it
        # so checkpoints recorded before core families existed still
        # resume.
        build = getattr(sim, "build", None)
        if build is not None and not build.spec.is_paper:
            fp["core"] = build.spec.label()
        return fp

    def _fault_map(self) -> Dict[str, Any]:
        from repro.faults.hierarchical import fault_unit_id
        return {fault_unit_id(f): f
                for f in self.simulator.universe.all_faults()}

    def _reset_shared_state(self) -> None:
        """Timed-out-unit isolation: drop the trace's good-value cache,
        which is the shared structure an abandoned grading thread may
        still be filling in."""
        ctx = self._ctx._value
        if ctx is not None:
            ctx._good_cache.clear()

    def units(self) -> List[WorkUnit]:
        from repro.faults.hierarchical import ComponentFault
        sim = self.simulator
        ctx = self._ctx
        units: List[WorkUnit] = []
        for unit_id, fault in self._fault_map().items():
            if isinstance(fault, ComponentFault):
                name, local = fault.component, fault.fault

                def grade(name=name, local=local):
                    return sim.grade_comb_fault(ctx(), name, local)

                def grade_behavioural(name=name, local=local):
                    return sim.grade_comb_fault(ctx(), name, local,
                                                continuous=False)

                units.append(WorkUnit(
                    unit_id=unit_id, run=grade,
                    fallback=grade_behavioural,
                    reset=self._reset_shared_state,
                    meta={"component": name},
                ))
            else:
                def grade_storage(fault=fault):
                    return sim.grade_storage_fault(
                        ctx(), fault, self.storage_fault_max_cycles
                    )

                units.append(WorkUnit(unit_id=unit_id, run=grade_storage,
                                      reset=self._reset_shared_state))
        return units

    def run(self, resume: bool = False, repair: bool = False,
            max_units: Optional[int] = None,
            progress=None, force: bool = False) -> CampaignOutcome:
        from repro.faults.hierarchical import HierarchicalResult
        report = self.runner.run(
            self.units(), fingerprint=self.fingerprint(), resume=resume,
            repair=repair, max_units=max_units, progress=progress,
            warmup=self._ctx, force=force,
        )
        fault_map = self._fault_map()
        first_detect = {
            fault_map[unit_id]: result.value
            for unit_id, result in report.results.items()
        }
        result = HierarchicalResult(
            first_detect=first_detect, n_vectors=len(self.words),
            universe=self.simulator.universe,
        )
        return CampaignOutcome(result=result, report=report)


# ----------------------------------------------------------------------
# Combinational pattern-parallel fault simulation
# ----------------------------------------------------------------------
class CombSimCampaign:
    """Per-fault resumable version of ``CombFaultSimulator.run_with_dropping``.

    The propagation engine (interpreted walk vs batched compiled cones)
    rides on the supplied ``sim``; grades are bit-identical either way,
    so checkpoints resume across engine choices.
    """

    def __init__(
        self,
        sim,
        blocks: Sequence[Dict[str, List[int]]],
        faults: Optional[Sequence] = None,
        checkpoint: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        runner: Optional[CampaignRunner] = None,
        jobs: Optional[int] = None,
    ):
        self.sim = sim
        self.blocks = list(blocks)
        self.faults = list(faults if faults is not None
                           else sim.fault_list.faults)
        self.runner = _default_runner(checkpoint, unit_timeout, runner, jobs)
        self._good: Dict[int, Tuple[List[int], int]] = {}
        from repro.lint.netlist_rules import warn_on_netlist
        warn_on_netlist(sim.netlist, context="combsim campaign")

    def fingerprint(self) -> Dict[str, Any]:
        from repro.runtime.integrity import fingerprint_for_netlist
        return {
            "kind": "combsim",
            "netlist": self.sim.netlist.name,
            # The structural hash, not just the name: resuming against a
            # *modified* netlist of the same name must be rejected (the
            # checkpointed grades belong to different hardware).
            "netlist_hash": fingerprint_for_netlist(self.sim.netlist),
            "n_blocks": len(self.blocks),
            "n_faults": len(self.faults),
        }

    def _block_good(self, i: int) -> Tuple[List[int], int]:
        if i not in self._good:
            block = self.blocks[i]
            n_patterns = len(next(iter(block.values())))
            self._good[i] = (self.sim.good_values(block, n_patterns),
                             n_patterns)
        return self._good[i]

    def _grade(self, fault) -> Optional[int]:
        offset = 0
        for i in range(len(self.blocks)):
            good, n_patterns = self._block_good(i)
            mask, _ = self.sim.simulate_fault(fault, good, n_patterns)
            if mask:
                return offset + (mask & -mask).bit_length() - 1
            offset += n_patterns
        return None

    def _warmup(self) -> None:
        """Evaluate every block's good machine in the parent so forked
        workers inherit the results instead of each re-deriving them."""
        for i in range(len(self.blocks)):
            self._block_good(i)

    def units(self) -> List[WorkUnit]:
        return [
            WorkUnit(
                unit_id=f"comb:{fault.net}:sa{fault.stuck_at}",
                run=lambda fault=fault: self._grade(fault),
                reset=self._good.clear,
            )
            for fault in self.faults
        ]

    def run(self, resume: bool = False, repair: bool = False,
            max_units: Optional[int] = None,
            force: bool = False) -> CampaignOutcome:
        report = self.runner.run(
            self.units(), fingerprint=self.fingerprint(), resume=resume,
            repair=repair, max_units=max_units, warmup=self._warmup,
            force=force,
        )
        by_id = {f"comb:{f.net}:sa{f.stuck_at}": f for f in self.faults}
        first_detect = {
            by_id[unit_id]: result.value
            for unit_id, result in report.results.items()
        }
        return CampaignOutcome(result=first_detect, report=report)


# ----------------------------------------------------------------------
# Metrics-table sampling
# ----------------------------------------------------------------------
class MetricsCampaign:
    """Per-instruction-variant resumable metrics-table measurement.

    Each unit samples one variant's C and O columns; the assembled
    result is the same :class:`~repro.metrics.table.MetricsTable` that
    :func:`~repro.metrics.table.build_metrics_table` produces, because
    every variant draws from its own label-derived RNG stream.
    """

    def __init__(
        self,
        variants=None,
        columns=None,
        n_controllability_samples: int = 150,
        n_observability_good: int = 12,
        seed: int = 2004,
        checkpoint: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        runner: Optional[CampaignRunner] = None,
        jobs: Optional[int] = None,
        build=None,
    ):
        from repro.metrics.controllability import default_variants
        from repro.dsp.components import all_columns
        self.build = build
        self.variants = list(variants) if variants is not None \
            else default_variants()
        if columns is not None:
            self.columns = list(columns)
        elif build is None:
            self.columns = all_columns()
        else:
            self.columns = build.all_columns()
        self.n_controllability_samples = n_controllability_samples
        self.n_observability_good = n_observability_good
        self.seed = seed
        self.runner = _default_runner(checkpoint, unit_timeout, runner, jobs)

    def fingerprint(self) -> Dict[str, Any]:
        fp = {
            "kind": "metrics",
            "seed": self.seed,
            "n_controllability_samples": self.n_controllability_samples,
            "n_observability_good": self.n_observability_good,
            "rows": [v.label for v in self.variants],
        }
        # Same convention as HierarchicalCampaign: only non-paper family
        # points stamp the core identity.
        if self.build is not None and not self.build.spec.is_paper:
            fp["core"] = self.build.spec.label()
        return fp

    def _measure(self, variant, n_samples: int, n_good: int) -> Dict:
        from repro.metrics.controllability import ControllabilityEngine
        from repro.metrics.observability import ObservabilityEngine
        from repro.runtime.rng import rng_factory
        # Streams are derived from (seed, variant label), never from
        # process-global RNG state, so a pool worker measuring any
        # subset of variants replays the serial numbers exactly.
        c_values = ControllabilityEngine(
            n_samples=n_samples, seed=self.seed,
            rng_factory=rng_factory(self.seed),
            build=self.build,
        ).measure(variant)
        o_values = ObservabilityEngine(
            n_good=n_good, seed=self.seed + 1,
            rng_factory=rng_factory(self.seed + 1),
            build=self.build,
        ).measure(variant)
        cells = {}
        for column in self.columns:
            if column in c_values or column in o_values:
                key = f"{column[0]}|{column[1]}"
                cells[key] = [c_values.get(column, 0.0),
                              o_values.get(column, 0.0)]
        return {"cells": cells}

    def units(self) -> List[WorkUnit]:
        units = []
        for variant in self.variants:
            def measure(variant=variant):
                return self._measure(variant,
                                     self.n_controllability_samples,
                                     self.n_observability_good)

            def measure_degraded(variant=variant):
                return self._measure(
                    variant,
                    max(2, self.n_controllability_samples // 5), 1,
                )

            units.append(WorkUnit(
                unit_id=f"variant:{variant.label}", run=measure,
                fallback=measure_degraded,
            ))
        return units

    def run(self, resume: bool = False, repair: bool = False,
            max_units: Optional[int] = None,
            force: bool = False) -> CampaignOutcome:
        from repro.dsp.components import COMPONENTS
        from repro.metrics.table import (
            MetricsCell,
            MetricsTable,
            component_fault_count,
        )
        report = self.runner.run(
            self.units(), fingerprint=self.fingerprint(), resume=resume,
            repair=repair, max_units=max_units, force=force,
        )
        components = COMPONENTS if self.build is None \
            else self.build.components
        table = MetricsTable(
            rows=self.variants,
            columns=self.columns,
            fault_counts={
                spec.name: component_fault_count(spec)
                for spec in components
            },
        )
        for variant in self.variants:
            result = report.results.get(f"variant:{variant.label}")
            if result is None or not result.value:
                continue
            for key, (c, o) in result.value["cells"].items():
                name, mode = key.rsplit("|", 1)
                table.set_cell(variant, (name, int(mode)),
                               MetricsCell(c=c, o=o))
        return CampaignOutcome(result=table, report=report)


# ----------------------------------------------------------------------
# Sequential-ATPG baseline
# ----------------------------------------------------------------------
class AtpgBaselineCampaign:
    """Per-fault resumable version of the sequential-ATPG baseline.

    The cheap fault-parallel random phase runs as deterministic setup
    (same seed, same survivors on every invocation); each surviving
    fault's time-frame PODEM attack — the part that can run for minutes
    and abort — is one unit.  A unit that times out degrades to a
    slashed backtrack budget, mirroring how commercial flows cap effort
    per fault.
    """

    def __init__(
        self,
        netlist=None,
        n_frames: int = 6,
        backtrack_limit: int = 400,
        fault_sample: Optional[int] = 300,
        seed: int = 5,
        random_phase_sequences: int = 1,
        random_phase_length: int = 32,
        checkpoint: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        runner: Optional[CampaignRunner] = None,
        jobs: Optional[int] = None,
        guided: bool = False,
    ):
        self.netlist = netlist
        self.n_frames = n_frames
        self.backtrack_limit = backtrack_limit
        self.fault_sample = fault_sample
        self.seed = seed
        self.random_phase_sequences = random_phase_sequences
        self.random_phase_length = random_phase_length
        self.guided = guided
        self.runner = _default_runner(checkpoint, unit_timeout, runner, jobs)
        self._setup = _Lazy(self._build_setup)

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "kind": "atpg-baseline",
            "n_frames": self.n_frames,
            "backtrack_limit": self.backtrack_limit,
            "fault_sample": self.fault_sample,
            "seed": self.seed,
            "random_phase_sequences": self.random_phase_sequences,
            "random_phase_length": self.random_phase_length,
            "guided": self.guided,
        }

    def _build_setup(self) -> Dict[str, Any]:
        from repro.atpg.podem import Podem
        from repro.atpg.unroll import unroll
        from repro.dsp.gatelevel import make_gatelevel_core
        from repro.faults.model import FaultList, collapse_faults

        core = self.netlist if self.netlist is not None \
            else make_gatelevel_core()
        from repro.lint.netlist_rules import warn_on_netlist
        warn_on_netlist(core, context="atpg baseline fault universe")
        unrolled = unroll(core, self.n_frames)
        faults = list(collapse_faults(core).faults)
        if self.fault_sample is not None and \
                self.fault_sample < len(faults):
            rng = random.Random(self.seed)
            faults = rng.sample(faults, self.fault_sample)

        random_detected = 0
        survivors = list(faults)
        if self.random_phase_sequences > 0:
            from repro.faults.seqsim import SeqFaultSimulator
            rng = random.Random(self.seed + 1)
            sim = SeqFaultSimulator(
                core, fault_list=FaultList(netlist=core,
                                           faults=list(faults)),
            )
            for _ in range(self.random_phase_sequences):
                if not survivors:
                    break
                stimulus = {"instr": [
                    rng.randrange(1 << 17)
                    for _ in range(self.random_phase_length)
                ]}
                outcome = sim.run_sequence(stimulus, faults=survivors)
                survivors = outcome.undetected
            random_detected = len(faults) - len(survivors)
        return {
            "core": core,
            "unrolled": unrolled,
            "engine": Podem(unrolled.netlist,
                            backtrack_limit=self.backtrack_limit,
                            guided=self.guided),
            "survivors": survivors,
            "random_detected": random_detected,
            "instr_nets": [unrolled.frame_bus(frame, "instr")
                           for frame in range(self.n_frames)],
        }

    def _attack(self, fault, backtrack_limit: Optional[int] = None) -> Dict:
        from repro.atpg.podem import Podem
        setup = self._setup()
        engine = setup["engine"]
        if backtrack_limit is not None:
            engine = Podem(setup["unrolled"].netlist,
                           backtrack_limit=backtrack_limit,
                           guided=self.guided)
        result = engine.generate_multi(
            setup["unrolled"].fault_sites(fault)
        )
        record: Dict[str, Any] = {"status": result.status,
                                  "backtracks": result.backtracks,
                                  "decisions": result.decisions}
        if result.detected:
            frames = []
            for nets in setup["instr_nets"]:
                word = 0
                for i, net in enumerate(nets):
                    if result.pattern.get(net):
                        word |= 1 << i
                frames.append(word)
            record["status"] = "detected"
            record["frames"] = frames
        return record

    def units(self) -> List[WorkUnit]:
        units = []
        for fault in self._setup()["survivors"]:
            unit_id = f"podem:{fault.net}:sa{fault.stuck_at}"

            def attack(fault=fault):
                return self._attack(fault)

            def attack_degraded(fault=fault):
                return self._attack(
                    fault, backtrack_limit=max(10, self.backtrack_limit // 8)
                )

            units.append(WorkUnit(unit_id=unit_id, run=attack,
                                  fallback=attack_degraded))
        return units

    def run(self, resume: bool = False, repair: bool = False,
            max_units: Optional[int] = None) -> CampaignOutcome:
        from repro.baselines.atpg_baseline import AtpgBaselineResult
        report = self.runner.run(
            self.units(), fingerprint=self.fingerprint(), resume=resume,
            repair=repair, max_units=max_units, warmup=self._setup,
        )
        setup = self._setup()
        detected = untestable = aborted = 0
        total_backtracks = total_decisions = 0
        patterns: List[List[int]] = []
        for result in report.results.values():
            record = result.value or {}
            status = record.get("status")
            total_backtracks += record.get("backtracks", 0)
            total_decisions += record.get("decisions", 0)
            if status == "detected":
                detected += 1
                patterns.append(record.get("frames", []))
            elif status == "untestable":
                untestable += 1
            else:
                aborted += 1
        result = AtpgBaselineResult(
            n_faults=len(setup["survivors"]) + setup["random_detected"],
            n_detected=detected + setup["random_detected"],
            n_untestable_within_frames=untestable,
            n_aborted=aborted,
            n_frames=self.n_frames,
            n_detected_random_phase=setup["random_detected"],
            patterns=patterns,
            total_backtracks=total_backtracks,
            total_decisions=total_decisions,
            guided=self.guided,
        )
        return CampaignOutcome(result=result, report=report)
