"""Deterministic RNG derivation for resumable campaigns.

Every randomised stage of the pipeline draws from a ``random.Random``
derived from ``(root seed, stable label)`` rather than from module-global
``random`` state.  Two properties matter for the campaign runner:

* **Replay** — re-running a unit (after a crash, a retry, or a resume)
  with the same seed and label reproduces its stream exactly, regardless
  of how many other units ran in between.
* **Independence** — units draw from disjoint streams, so executing them
  in any order (or skipping completed ones on resume) cannot perturb the
  results of the rest.

``derive_rng(seed, *parts)`` joins the parts with ``":"`` — the same key
format the metrics engines have always used (``f"{seed}:{label}"``), so
default streams are unchanged.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

#: Signature of an injectable RNG factory: label -> independent stream.
RngFactory = Callable[[str], random.Random]


def derive_rng(seed, *parts) -> random.Random:
    """An independent ``random.Random`` for ``(seed, *parts)``.

    String seeding is deterministic across processes and platforms
    (CPython hashes str seeds with SHA-512), which is what makes
    checkpoint/resume replay exact.
    """
    key = ":".join(str(p) for p in (seed, *parts))
    return random.Random(key)


def rng_factory(seed) -> RngFactory:
    """A factory closing over ``seed``: ``factory(label) -> Random``."""
    def factory(label: str) -> random.Random:
        return derive_rng(seed, label)
    return factory


def resolve_factory(seed, factory: Optional[RngFactory]) -> RngFactory:
    """``factory`` if injected, else the default seed-derived one."""
    return factory if factory is not None else rng_factory(seed)
