"""Checkpoint hash chaining and campaign invariant checking.

The paper's discipline is that a fault is only *known* to be detected
when it propagates to an observable output.  This module applies the
same discipline to the campaign runtime itself: every recovery path
(crash-resume, corruption repair, shard merge, pooled execution) is
made observable through two mechanisms.

**Hash chaining.**  Every record in the JSONL checkpoint carries a
``chain`` digest over its own payload *and* its predecessor's digest
(the header anchors the chain).  A single flipped bit, a duplicated
line, a reordered record or a silently edited value breaks the chain at
that record, so :meth:`CheckpointStore.load` can tell *exactly* where a
checkpoint stops being trustworthy — and ``repair=True`` discards from
there instead of resurrecting corrupted results.

**Invariant checking.**  :func:`verify_campaign` turns "the campaign
recovered correctly" into a machine-checked list of
:class:`Violation`\\ s: every unit graded exactly once, statuses drawn
from the legal set, the report identical to a golden (serial, no-chaos)
twin, no orphaned ``.tmp``/``.shard-`` scratch files, and the on-disk
chain intact.  The chaos soak (:mod:`repro.runtime.chaos`) fails a run
on any violation, which is what makes the runtime stack falsifiable.

The campaign *service* (:mod:`repro.runtime.service`) reuses both
mechanisms one level up: its job journal chains scheduler events with
the same :func:`chain_digest`, and its scheduler invariants (one live
lease per job, monotonic fencing tokens, no terminal job ever re-run)
are audited into the same :class:`Violation` shape by
:func:`repro.runtime.service.verify_journal` / :func:`check_journal`
here, so one report format covers a single campaign and a whole fleet.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.errors import IntegrityError

#: Hex digits of SHA-256 kept per record; 64 bits of collision margin is
#: plenty for corruption *detection* (the adversary is a cosmic ray, not
#: a cryptographer) and keeps checkpoint lines short.
CHAIN_DIGEST_HEX = 16

#: Legal terminal unit statuses (mirrors ``runner.STATUSES``; kept here
#: so the checker does not import the runner it is auditing).
LEGAL_STATUSES = ("ok", "degraded", "quarantined")


def canonical_payload(record: Dict[str, Any]) -> bytes:
    """The byte string a record's chain digest covers.

    The ``chain`` field itself is excluded (it cannot cover itself);
    everything else is serialised with sorted keys and fixed separators
    so the digest is independent of ``dict`` insertion order.
    """
    body = {k: v for k, v in record.items() if k != "chain"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def chain_digest(previous: str, record: Dict[str, Any]) -> str:
    """Digest of ``record`` chained onto ``previous`` (hex string)."""
    digest = hashlib.sha256()
    digest.update(previous.encode())
    digest.update(canonical_payload(record))
    return digest.hexdigest()[:CHAIN_DIGEST_HEX]


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One broken campaign invariant."""

    kind: str        # "duplicate-unit" | "missing-unit" | ... (see below)
    subject: str     # unit id, file path, or campaign-level marker
    message: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.message}"

    def to_json(self) -> Dict[str, str]:
        return {"kind": self.kind, "subject": self.subject,
                "message": self.message}


def _report_rows(report) -> List[tuple]:
    """The (id, status, value) triples of a report, in report order."""
    return [(r.unit_id, r.status, r.value)
            for r in report.results.values()]


def verify_campaign(
    report,
    checkpoint: Optional[str] = None,
    golden=None,
    expected_units: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Audit one finished campaign; returns every violated invariant.

    ``report`` is the :class:`~repro.runtime.runner.CampaignReport`
    under test.  Optionally also supply:

    * ``expected_units`` — the unit ids the campaign was asked to grade,
      in order.  Checks every unit is reported exactly once, in order,
      with nothing extra.
    * ``golden`` — a trusted report of the same workload (serial,
      no chaos).  Checks ids, statuses and values match *exactly*, in
      order — the cross-backend / cross-recovery equivalence contract.
    * ``checkpoint`` — the campaign's checkpoint path.  Checks the file
      loads with an intact hash chain, covers every reported unit, and
      left no orphaned ``.tmp`` / ``.shard-*`` scratch files behind.
    """
    violations: List[Violation] = []

    # -- statuses ------------------------------------------------------
    for unit_id, result in report.results.items():
        if result.status not in LEGAL_STATUSES:
            violations.append(Violation(
                "illegal-status", unit_id,
                f"status {result.status!r} not in {LEGAL_STATUSES}",
            ))
        if unit_id != result.unit_id:
            violations.append(Violation(
                "key-mismatch", unit_id,
                f"report key disagrees with result id {result.unit_id!r}",
            ))

    # -- exactly-once grading ------------------------------------------
    if expected_units is not None:
        expected = list(expected_units)
        got = list(report.results)
        missing = [u for u in expected if u not in report.results]
        extra = [u for u in got if u not in set(expected)]
        for unit_id in missing:
            violations.append(Violation(
                "missing-unit", unit_id, "expected unit never reported"))
        for unit_id in extra:
            violations.append(Violation(
                "extra-unit", unit_id, "reported unit was never requested"))
        if not missing and not extra and got != expected:
            violations.append(Violation(
                "order-mismatch", "<report>",
                "units reported in a different order than requested"))

    # -- golden equivalence --------------------------------------------
    if golden is not None:
        mine, theirs = _report_rows(report), _report_rows(golden)
        if mine != theirs:
            diverging = [
                f"{a[0]}: got {a[1:]}, golden {b[1:]}"
                for a, b in zip(mine, theirs) if a != b
            ][:3]
            if len(mine) != len(theirs):
                diverging.append(
                    f"{len(mine)} units reported vs {len(theirs)} golden")
            violations.append(Violation(
                "golden-mismatch", "<report>",
                "; ".join(diverging) or "reports differ",
            ))

    # -- durable, chain-intact checkpoint ------------------------------
    if checkpoint is not None:
        violations.extend(_verify_checkpoint(report, checkpoint))
    return violations


def _verify_checkpoint(report, checkpoint: str) -> List[Violation]:
    from repro.runtime.checkpoint import CheckpointStore
    from repro.runtime.errors import CheckpointCorruptError

    violations: List[Violation] = []
    # Glob for scratch orphans *before* loading: load() itself sweeps a
    # stale ``.tmp`` away, which would hide the violation it evidences.
    for orphan in sorted(
        glob.glob(glob.escape(checkpoint) + ".shard-*")
        + glob.glob(glob.escape(checkpoint) + ".tmp")
    ):
        violations.append(Violation(
            "orphan-scratch", orphan,
            "scratch file left behind after the campaign finished"))
    try:
        _, records = CheckpointStore(checkpoint).load()
    except CheckpointCorruptError as exc:
        violations.append(Violation(
            "broken-chain", checkpoint, str(exc)))
    else:
        unpersisted = [u for u in report.results if u not in records]
        for unit_id in unpersisted:
            violations.append(Violation(
                "unpersisted-unit", unit_id,
                "reported unit has no durable checkpoint record"))
    return violations


def check_campaign(report, checkpoint: Optional[str] = None, golden=None,
                   expected_units: Optional[Sequence[str]] = None) -> None:
    """Like :func:`verify_campaign` but raises :class:`IntegrityError`."""
    violations = verify_campaign(report, checkpoint=checkpoint,
                                 golden=golden,
                                 expected_units=expected_units)
    if violations:
        detail = "; ".join(v.describe() for v in violations[:5])
        more = len(violations) - 5
        if more > 0:
            detail += f" (+{more} more)"
        raise IntegrityError(
            f"{len(violations)} campaign invariant violation(s): {detail}"
        )


def check_journal(journal_path: str,
                  require_terminal: bool = False) -> None:
    """Audit a service job journal; raises :class:`IntegrityError` on
    any violated scheduler invariant (the raising counterpart of
    :func:`repro.runtime.service.verify_journal`, mirroring
    :func:`check_campaign`)."""
    from repro.runtime.service import verify_journal
    violations = verify_journal(journal_path,
                                require_terminal=require_terminal)
    if violations:
        detail = "; ".join(v.describe() for v in violations[:5])
        more = len(violations) - 5
        if more > 0:
            detail += f" (+{more} more)"
        raise IntegrityError(
            f"{len(violations)} service invariant violation(s): {detail}"
        )


def fingerprint_for_netlist(netlist) -> str:
    """The structural netlist hash campaigns embed in their fingerprint
    (resume against a *different* netlist is a config error, caught by
    the enforced header check)."""
    from repro.runtime.cache import netlist_hash
    return netlist_hash(netlist)
