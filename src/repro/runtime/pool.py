"""Process-pool execution backend for the campaign runner.

Campaign work units are closures over live simulator state, which rules
out pickling them through a task queue.  The backend instead relies on
``fork`` start-method semantics: the pending units (and any state the
campaign warmed up — recorded traces, compiled evaluators, PODEM
setups) are published in a module-level context *before* the pool is
created, every forked worker inherits them copy-on-write, and the only
things that cross process boundaries are unit **indices** (parent →
worker) and JSON-serialisable result **records** (worker → parent).

Durability matches the serial backend's kill-anytime contract:

* the parent appends each completed record to the canonical checkpoint
  as it arrives (completion order — resume keys records by unit id, so
  order never matters for recovery);
* each worker *also* appends every record it produces to its own JSONL
  **shard** (``<checkpoint>.shard-<pid>``, fsync per record), so a
  parent killed between a worker finishing a unit and the parent
  persisting it loses nothing — the next ``resume=True`` run merges
  leftover shards back into the canonical file before planning
  (:func:`merge_shards`);
* shards are deleted once their records are safely in the canonical
  checkpoint (end of a successful run, or after a merge).

Work is dispatched in work-stealing chunks (``imap_unordered`` with a
chunk size that keeps every worker busy) and each worker grades its
units with the same retry/backoff/timeout/degradation state machine as
the serial runner (``CampaignRunner._run_unit``).  A unit that times
out in a worker leaks a daemon thread *in that worker* — the thread
dies with the worker process at pool shutdown, which is exactly the
isolation the in-process backend cannot provide.

If the pool cannot be used at all (no ``fork`` support) or dies
mid-campaign (a worker hard-crashes), :func:`run_pooled` returns the
results it has; the runner finishes the remainder serially.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Callable, Dict, List, Optional

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import ConfigError

#: Module-level context published by the parent immediately before the
#: pool forks; inherited copy-on-write by every worker.
_POOL_CONTEXT: Optional[Dict[str, Any]] = None
#: Per-worker state built by the pool initializer (after the fork).
_WORKER_STATE: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Optional[object]) -> int:
    """Normalise a ``--jobs`` / ``REPRO_JOBS`` value to a worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (absent
    → 1, the serial backend); ``"auto"`` means the machine's CPU count.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS") or 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(jobs)
        except ValueError:
            raise ConfigError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            ) from None
    if not isinstance(jobs, int) or jobs < 1:
        raise ConfigError(
            f"jobs must be a positive integer or 'auto', got {jobs!r}"
        )
    return jobs


def fork_available() -> bool:
    import multiprocessing
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Checkpoint shards
# ----------------------------------------------------------------------
def shard_paths(checkpoint_path: str) -> List[str]:
    """Shard files belonging to ``checkpoint_path``, sorted for determinism."""
    return sorted(glob.glob(glob.escape(checkpoint_path) + ".shard-*"))


def shard_path_for(checkpoint_path: str, pid: int) -> str:
    return f"{checkpoint_path}.shard-{pid}"


def merge_shards(store: CheckpointStore,
                 completed: Dict[str, Dict[str, Any]]) -> int:
    """Fold leftover worker shards into the canonical checkpoint.

    Every intact record not already in ``completed`` is appended to the
    canonical file and added to ``completed``; unparseable tails (a
    worker killed mid-write) are skipped silently, mirroring
    ``load(repair=True)``.  Consumed shards are deleted.  Returns the
    number of records merged.
    """
    merged = 0
    for path in shard_paths(store.path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except OSError:
            continue
        for line in lines:
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # killed mid-write: drop the partial tail
            if not isinstance(record, dict) or "unit" not in record:
                continue  # the shard header, or garbage
            if record["unit"] in completed:
                continue
            completed[record["unit"]] = record
            store.append(record)
            merged += 1
        os.remove(path)
    return merged


def remove_shards(checkpoint_path: str) -> None:
    for path in shard_paths(checkpoint_path):
        try:
            os.remove(path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_init() -> None:
    """Build this worker's runner and open its checkpoint shard.

    Runs after the fork, so ``_POOL_CONTEXT`` (units, runner settings,
    warmed-up campaign state reachable from the unit closures) is
    already in this process's memory.
    """
    global _WORKER_STATE
    from repro.runtime.runner import CampaignRunner

    context = _POOL_CONTEXT
    assert context is not None, "worker forked without a pool context"
    config = context["config"]
    shard = None
    if context["checkpoint"]:
        shard = CheckpointStore(
            shard_path_for(context["checkpoint"], os.getpid())
        )
        shard.create(context["fingerprint"])
    _WORKER_STATE = {
        "runner": CampaignRunner(
            unit_timeout=config["unit_timeout"],
            max_retries=config["max_retries"],
            backoff_base=config["backoff_base"],
            backoff_factor=config["backoff_factor"],
            backoff_max=config["backoff_max"],
            fallback_timeout=config["fallback_timeout"],
        ),
        "shard": shard,
    }


def _worker_run(index: int) -> Dict[str, Any]:
    """Grade one pending unit (by index) and return its result record."""
    state = _WORKER_STATE
    unit = _POOL_CONTEXT["units"][index]
    result = state["runner"]._run_unit(unit)
    record = result.record()
    if state["shard"] is not None:
        state["shard"].append(record)
    return record


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_pooled(
    runner,
    pending: List[Any],
    progress: Optional[Callable[[Any, int, int], None]] = None,
    total: Optional[int] = None,
) -> Dict[str, Any]:
    """Execute ``pending`` units on a forked pool of ``runner.jobs`` workers.

    Returns ``{unit_id: UnitResult}`` for every unit that completed;
    the caller treats missing units as "finish serially".  Completed
    records are appended to the runner's canonical checkpoint as they
    arrive; worker shards are cleaned up on success and left in place
    (for :func:`merge_shards`) if the parent dies first.
    """
    global _POOL_CONTEXT
    from repro.runtime.runner import UnitResult

    if not fork_available():
        return {}
    import multiprocessing

    checkpoint = runner.store.path if runner.store is not None else None
    fingerprint: Optional[Dict[str, Any]] = None
    _POOL_CONTEXT = {
        "units": pending,
        "checkpoint": checkpoint,
        "fingerprint": fingerprint,
        "config": {
            "unit_timeout": runner.unit_timeout,
            "max_retries": runner.max_retries,
            "backoff_base": runner.backoff_base,
            "backoff_factor": runner.backoff_factor,
            "backoff_max": runner.backoff_max,
            "fallback_timeout": runner.fallback_timeout,
        },
    }
    jobs = min(runner.jobs, len(pending))
    # Work-stealing granularity: several chunks per worker, so a slow
    # chunk cannot straggle the campaign.
    chunksize = max(1, len(pending) // (jobs * 4))
    results: Dict[str, Any] = {}
    total = total if total is not None else len(pending)
    context = multiprocessing.get_context("fork")
    try:
        with context.Pool(jobs, initializer=_worker_init) as pool:
            stream = pool.imap_unordered(
                _worker_run, range(len(pending)), chunksize=chunksize
            )
            for done, record in enumerate(stream, start=1):
                result = UnitResult.from_record(record, resumed=False)
                results[result.unit_id] = result
                if runner.store is not None:
                    runner.store.append(record)
                if progress is not None:
                    progress(result, done, total)
            pool.close()
            pool.join()
    except KeyboardInterrupt:
        raise
    except Exception:
        # A worker hard-crashed or the pool machinery failed: return
        # what completed and let the runner finish serially.
        return results
    finally:
        _POOL_CONTEXT = None
        if checkpoint and len(results) == len(pending):
            # Every shard record is in the canonical checkpoint now.
            remove_shards(checkpoint)
    return results
