"""Process-pool execution backend for the campaign runner.

Campaign work units are closures over live simulator state, which rules
out pickling them through a task queue.  The backend instead relies on
``fork`` start-method semantics: the pending units (and any state the
campaign warmed up — recorded traces, compiled evaluators, PODEM
setups) are published in a module-level context *before* the pool is
created, every forked worker inherits them copy-on-write, and the only
things that cross process boundaries are unit **indices** (parent →
worker) and JSON-serialisable result **envelopes** (worker → parent).
An envelope carries the unit's checkpoint record plus two bookkeeping
payloads: the worker's cache hit/miss counter delta for the unit
(always — the parent folds it into its own counters, so
``cache_stats()`` aggregates truthfully under ``jobs > 1``) and, when
an observability session is armed (:mod:`repro.obs`), the worker's
drained span buffer, metric snapshot and profiler timings.

Durability matches the serial backend's kill-anytime contract:

* the parent appends each completed record to the canonical checkpoint
  as it arrives (completion order — resume keys records by unit id, so
  order never matters for recovery);
* each worker *also* appends every record it produces to its own JSONL
  **shard** (``<checkpoint>.shard-<pid>``, fsync per record), so a
  parent killed between a worker finishing a unit and the parent
  persisting it loses nothing — the next ``resume=True`` run merges
  leftover shards back into the canonical file before planning
  (:func:`merge_shards`);
* shards are deleted once their records are safely in the canonical
  checkpoint (end of a successful run, or after a merge).

Work is dispatched in work-stealing chunks (``imap_unordered`` with a
chunk size that keeps every worker busy) and each worker grades its
units with the same retry/backoff/timeout/degradation state machine as
the serial runner (``CampaignRunner._run_unit``).  A unit that times
out in a worker leaks a daemon thread *in that worker* — the thread
dies with the worker process at pool shutdown, which is exactly the
isolation the in-process backend cannot provide.

If the pool cannot be used at all (no ``fork`` support) or dies
mid-campaign (a worker hard-crashes), :func:`run_pooled` returns the
results it has; the runner finishes the remainder serially.
"""

from __future__ import annotations

import glob
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.runtime import cache, chaos
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import ConfigError
from repro.runtime.integrity import chain_digest

#: Module-level context published by the parent immediately before the
#: pool forks; inherited copy-on-write by every worker.
_POOL_CONTEXT: Optional[Dict[str, Any]] = None
#: Per-worker state built by the pool initializer (after the fork).
_WORKER_STATE: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Optional[object]) -> int:
    """Normalise a ``--jobs`` / ``REPRO_JOBS`` value to a worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable (absent
    → 1, the serial backend); ``"auto"`` means the machine's CPU count.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS") or 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(jobs)
        except ValueError:
            raise ConfigError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            ) from None
    if not isinstance(jobs, int) or jobs < 1:
        raise ConfigError(
            f"jobs must be a positive integer or 'auto', got {jobs!r}"
        )
    return jobs


def fork_available() -> bool:
    import multiprocessing
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Checkpoint shards
# ----------------------------------------------------------------------
def shard_paths(checkpoint_path: str) -> List[str]:
    """Shard files belonging to ``checkpoint_path``, sorted for determinism."""
    return sorted(glob.glob(glob.escape(checkpoint_path) + ".shard-*"))


def shard_path_for(checkpoint_path: str, pid: int) -> str:
    return f"{checkpoint_path}.shard-{pid}"


def iter_shard_records(path: str):
    """Yield the trustworthy records of one worker shard, in order.

    Shards carry the same per-record integrity chain as the canonical
    checkpoint; when the shard's header chain is intact, the walk stops
    at the first record that breaks it (corrupted, edited or torn —
    everything after it is untrusted).  A shard without a verifiable
    header (legacy or hand-built) degrades to the permissive walk:
    parseable records in, garbage and partial tails silently out.
    """
    from repro.runtime.checkpoint import HEADER_KIND

    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            lines = handle.read().split("\n")
    except OSError:
        return
    tail = None
    if lines:
        try:
            header = json.loads(lines[0])
        except ValueError:
            header = None
        if isinstance(header, dict) and header.get("kind") == HEADER_KIND \
                and header.get("chain") == chain_digest("", header):
            tail = header["chain"]
    for line in lines:
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # killed mid-write: drop the partial tail
        if not isinstance(record, dict) or "unit" not in record:
            continue  # the shard header, or garbage
        if tail is not None:
            if record.get("chain") != chain_digest(tail, record):
                return  # chain broken: nothing after this is trusted
            tail = record["chain"]
        yield record


def merge_shards(store: CheckpointStore,
                 completed: Dict[str, Dict[str, Any]]) -> int:
    """Fold leftover worker shards into the canonical checkpoint.

    Every intact record not already in ``completed`` is appended to the
    canonical file and added to ``completed``; unparseable tails (a
    worker killed mid-write) and chain-breaking records are skipped,
    mirroring ``load(repair=True)``.  Consumed shards are deleted.
    Returns the number of records merged.
    """
    paths = shard_paths(store.path)
    # Chaos "shard_loss": a shard vanishes before its records are
    # merged — the campaign must simply re-run the lost units.
    chaos.inject("pool.merge", paths=paths)
    merged = 0
    for path in paths:
        for record in iter_shard_records(path):
            if record["unit"] in completed:
                continue
            completed[record["unit"]] = record
            store.append(record)
            merged += 1
        try:
            os.remove(path)
        except OSError:
            pass  # e.g. already removed by an injected shard loss
    return merged


def remove_shards(checkpoint_path: str) -> None:
    for path in shard_paths(checkpoint_path):
        try:
            os.remove(path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_init() -> None:
    """Build this worker's runner and open its checkpoint shard.

    Runs after the fork, so ``_POOL_CONTEXT`` (units, runner settings,
    warmed-up campaign state reachable from the unit closures) is
    already in this process's memory.
    """
    global _WORKER_STATE
    from repro.runtime.runner import CampaignRunner

    context = _POOL_CONTEXT
    assert context is not None, "worker forked without a pool context"
    config = context["config"]
    shard = None
    if context["checkpoint"]:
        shard = CheckpointStore(
            shard_path_for(context["checkpoint"], os.getpid())
        )
        shard.create(context["fingerprint"])
    _WORKER_STATE = {
        "runner": CampaignRunner(
            unit_timeout=config["unit_timeout"],
            max_retries=config["max_retries"],
            backoff_base=config["backoff_base"],
            backoff_factor=config["backoff_factor"],
            backoff_max=config["backoff_max"],
            fallback_timeout=config["fallback_timeout"],
        ),
        "shard": shard,
    }
    # Observability state was inherited copy-on-write from the parent;
    # drop it so this worker's payloads only ever carry its own work.
    obs.reset_after_fork()


def _counter_delta(before: Dict[str, int],
                   after: Dict[str, int]) -> Dict[str, int]:
    """The (non-negative, sparse) difference between two counter maps."""
    return {key: after[key] - before.get(key, 0)
            for key in after if after[key] != before.get(key, 0)}


def _worker_run(index: int) -> Dict[str, Any]:
    """Grade one pending unit (by index) and return its result envelope.

    The envelope is ``{"record", "cache", "obs"}``: the checkpoint
    record (exactly what the serial backend would have written — the
    shard stores *only* this, so checkpoint bytes are
    backend-independent), the worker's cache-counter delta for this
    unit, and the drained observability payload (``None`` unless a
    session is armed).
    """
    state = _WORKER_STATE
    unit = _POOL_CONTEXT["units"][index]
    # Chaos "kill_worker": a real SIGKILL of this worker process,
    # mid-unit — the parent's stall detection must notice the death,
    # salvage what completed, and finish the remainder serially.
    chaos.inject("pool.worker.unit", unit_id=unit.unit_id)
    cache_before = cache.counter_snapshot()
    result = state["runner"]._run_unit(unit)
    record = result.record()
    if state["shard"] is not None:
        state["shard"].append(record)
    return {
        "record": record,
        "cache": _counter_delta(cache_before, cache.counter_snapshot()),
        "obs": obs.export_worker_payload(),
    }


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_pooled(
    runner,
    pending: List[Any],
    progress: Optional[Callable[[Any, int, int], None]] = None,
    total: Optional[int] = None,
) -> Dict[str, Any]:
    """Execute ``pending`` units on a forked pool of ``runner.jobs`` workers.

    Returns ``{unit_id: UnitResult}`` for every unit that completed;
    the caller treats missing units as "finish serially".  Completed
    records are appended to the runner's canonical checkpoint as they
    arrive; worker shards are cleaned up on success and left in place
    (for :func:`merge_shards`) if the parent dies first.
    """
    global _POOL_CONTEXT
    from repro.runtime.runner import UnitResult

    if not fork_available():
        return {}
    import multiprocessing

    checkpoint = runner.store.path if runner.store is not None else None
    fingerprint: Optional[Dict[str, Any]] = None
    _POOL_CONTEXT = {
        "units": pending,
        "checkpoint": checkpoint,
        "fingerprint": fingerprint,
        "config": {
            "unit_timeout": runner.unit_timeout,
            "max_retries": runner.max_retries,
            "backoff_base": runner.backoff_base,
            "backoff_factor": runner.backoff_factor,
            "backoff_max": runner.backoff_max,
            "fallback_timeout": runner.fallback_timeout,
        },
    }
    jobs = min(runner.jobs, len(pending))
    results: Dict[str, Any] = {}
    total = total if total is not None else len(pending)
    stall_budget = _stall_budget(runner)
    context = multiprocessing.get_context("fork")
    try:
        with context.Pool(jobs, initializer=_worker_init) as pool:
            # chunksize must stay 1: with a larger chunk the pool returns
            # a flattening *generator* instead of the IMapUnorderedIterator
            # whose ``next(timeout)`` the dead-worker poll below needs.
            # (It is also the finest work-stealing granularity — a slow
            # unit cannot straggle a whole chunk.)
            stream = pool.imap_unordered(
                _worker_run, range(len(pending)), chunksize=1
            )
            done = 0
            last_progress = time.monotonic()
            while done < len(pending):
                # `multiprocessing.Pool` silently respawns a SIGKILLed
                # worker but never redelivers the task it was holding —
                # a plain `for record in stream` would block forever.
                # Poll with a timeout and bail once a worker has died
                # and no result has arrived within the stall budget;
                # the runner re-runs the lost units serially.
                try:
                    envelope = stream.next(timeout=_POOL_POLL_SECONDS)
                except StopIteration:
                    break
                except multiprocessing.TimeoutError:
                    stalled = time.monotonic() - last_progress
                    if _pool_has_dead_worker(pool) \
                            and stalled >= stall_budget:
                        raise BrokenPipeError(
                            "pool worker died; abandoning the pool"
                        )
                    continue
                done += 1
                last_progress = time.monotonic()
                record = envelope["record"]
                cache.merge_counts(envelope.get("cache") or {})
                obs.merge_worker_payload(envelope.get("obs"))
                result = UnitResult.from_record(record, resumed=False)
                results[result.unit_id] = result
                if runner.store is not None:
                    runner.store.append(record)
                if progress is not None:
                    progress(result, done, total)
            pool.close()
            pool.join()
    except KeyboardInterrupt:
        raise
    except Exception:
        # A worker hard-crashed or the pool machinery failed: return
        # what completed and let the runner finish serially.
        return results
    finally:
        _POOL_CONTEXT = None
        if checkpoint and len(results) == len(pending):
            # Every shard record is in the canonical checkpoint now.
            remove_shards(checkpoint)
    return results


#: How often the parent polls the result stream for worker death.
_POOL_POLL_SECONDS = 0.25


def _stall_budget(runner) -> float:
    """Seconds without progress (while a worker is dead) before the
    pool is abandoned.  Derived from the per-unit retry/backoff budget
    when the runner does not pin ``pool_stall_timeout`` explicitly."""
    if runner.pool_stall_timeout is not None:
        return runner.pool_stall_timeout
    if runner.unit_timeout is not None:
        per_attempt = runner.unit_timeout * (runner.max_retries + 2)
        return max(5.0, (per_attempt + sum(runner.backoff_schedule())) * 4)
    return 60.0


def _pool_has_dead_worker(pool) -> bool:
    """Whether any pool process has exited (SIGKILL, hard crash).

    Reads the pool's private process list — there is no public API for
    this short of ``concurrent.futures`` (whose ``BrokenProcessPool``
    machinery cannot run closures over forked state).  Defensive:
    treats an unreadable pool as healthy.
    """
    try:
        return any(p.exitcode is not None for p in pool._pool)
    except Exception:  # noqa: BLE001 — private API, best effort
        return False
