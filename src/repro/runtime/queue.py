"""The campaign service's persistent job journal.

The scheduler's entire durable state is one append-only JSONL file
using the same discipline as the campaign checkpoint
(:mod:`repro.runtime.checkpoint`): line 1 is an atomically written
header, every later line is one scheduler *event* (submit, lease,
renew, reclaim, complete ...), each flushed + fsynced before the
scheduler acts on it and chained to its predecessor with a sha256
digest (:func:`repro.runtime.integrity.chain_digest`).  A scheduler
killed at any instant loses at most the event in flight; a restarted
scheduler replays the journal to recover every job, lease and retry
counter exactly as they were.

Torn tails are a *normal* crash artefact, not corruption: a SIGKILL
mid-append leaves a partial last line, which :meth:`JobJournal.load`
reports as a tail defect (and ``repair=True`` truncates away).  A
chain break *before* the last line, by contrast, means the journal was
bit-flipped or edited — the service invariant checker flags it.

The journal has exactly one writer (the scheduler process).  Other
processes submit work through the **spool**: a sibling directory of
one-file-per-request JSON documents written atomically (temp file +
``os.replace``) that the scheduler ingests into the journal on its
next tick.  That keeps multi-process submission safe without any
cross-process locking on the chained file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.chaos import inject as _chaos
from repro.runtime.errors import CheckpointCorruptError
from repro.runtime.integrity import chain_digest

HEADER_KIND = "repro-job-journal"
FORMAT_VERSION = 1

#: Every event type the scheduler appends (see :mod:`.service` for the
#: state machine that produces them).
EVENT_TYPES = (
    "start",      # a scheduler incarnation began (epoch fencing)
    "submit",     # a job entered the queue
    "lease",      # a worker was granted time-bounded ownership
    "renew",      # heartbeat: the lease's expiry was pushed out
    "release",    # the worker gave the job back (graceful drain)
    "reclaim",    # the scheduler revoked an expired/orphaned lease
    "complete",   # the job finished; summary recorded
    "fail",       # an attempt failed (final=True quarantines)
    "cancel",     # the job was withdrawn before finishing
    "fenced",     # a stale-token write was rejected (observability)
    "drain",      # graceful shutdown was requested
    "worker",     # a remote worker registered over the transport
)


@dataclass(frozen=True)
class JournalDefect:
    """Where (and why) a journal stopped being trustworthy."""

    line: int          # 1-based line number of the first bad record
    reason: str
    is_tail: bool      # True: normal crash debris (torn final line)

    def describe(self) -> str:
        kind = "torn tail" if self.is_tail else "interior corruption"
        return f"line {self.line}: {self.reason} ({kind})"


class JobJournal:
    """One service's append-only, hash-chained event log."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._handle = None
        self._tail: Optional[str] = None

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    @property
    def spool_dir(self) -> str:
        return self.path + ".spool"

    def create(self, meta: Optional[Dict[str, Any]] = None) -> Dict:
        """Atomically write a fresh journal containing only the header."""
        header = {
            "kind": HEADER_KIND,
            "version": FORMAT_VERSION,
            "meta": meta or {},
        }
        header["chain"] = chain_digest("", header)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._tail = header["chain"]
        return header

    # ------------------------------------------------------------------
    def load(
        self, repair: bool = False,
    ) -> Tuple[Dict, List[Dict], Optional[JournalDefect]]:
        """Parse the journal: ``(header, events, defect)``.

        The walk stops at the first untrustworthy line and reports it
        as the ``defect`` (``None`` for a fully intact journal); every
        event before it is returned.  ``repair=True`` also truncates
        the file back to the intact prefix — the restarting scheduler
        does this; read-only consumers (``repro status``, the
        invariant checker) must not.

        A missing or invalid *header* is unrecoverable either way and
        raises :class:`CheckpointCorruptError` — there is no campaign
        identity left to resume.
        """
        try:
            with open(self.path, "r", encoding="utf-8",
                      errors="replace") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CheckpointCorruptError(
                f"cannot read job journal {self.path}: {exc}"
            ) from exc

        lines = raw.split("\n")
        trailing_ok = lines and lines[-1] == ""
        if trailing_ok:
            lines = lines[:-1]
        if not lines:
            raise CheckpointCorruptError(
                f"job journal {self.path} is empty")

        header = self._parse_header(lines[0])
        events: List[Dict] = []
        good_bytes = len(lines[0]) + 1
        tail = header["chain"]
        defect: Optional[JournalDefect] = None
        for i, line in enumerate(lines[1:], start=2):
            is_last = i == len(lines)
            truncated = is_last and not trailing_ok
            record = None
            if not truncated:
                try:
                    record = json.loads(line)
                except ValueError:
                    record = None
            reason = None
            if truncated:
                reason = "truncated mid-write"
            elif record is None or not isinstance(record, dict) \
                    or "event" not in record:
                reason = "unparseable event record"
            elif record.get("chain") != chain_digest(tail, record):
                reason = "integrity chain broken (corrupted, edited, " \
                    "duplicated or reordered event)"
            if reason is not None:
                defect = JournalDefect(line=i, reason=reason,
                                       is_tail=is_last)
                if repair:
                    self._truncate(good_bytes)
                break
            events.append(record)
            tail = record["chain"]
            good_bytes += len(line) + 1
        self._tail = tail
        return header, events, defect

    def _parse_header(self, line: str) -> Dict:
        try:
            header = json.loads(line)
        except ValueError:
            header = None
        if not isinstance(header, dict) or \
                header.get("kind") != HEADER_KIND:
            raise CheckpointCorruptError(
                f"job journal {self.path} has no valid header"
            )
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"job journal {self.path} is format version "
                f"{header.get('version')!r}, expected {FORMAT_VERSION}"
            )
        if header.get("chain") != chain_digest("", header):
            raise CheckpointCorruptError(
                f"job journal {self.path} header fails its own chain "
                "digest (corrupted or hand-edited header)"
            )
        return header

    def _truncate(self, n_bytes: int) -> None:
        self.close()
        with open(self.path, "r+", encoding="utf-8") as handle:
            handle.truncate(n_bytes)

    # ------------------------------------------------------------------
    def _ensure_tail(self) -> str:
        if self._tail is None:
            _, _, defect = self.load(repair=False)
            if defect is not None:
                raise CheckpointCorruptError(
                    f"job journal {self.path} has an unrepaired defect "
                    f"({defect.describe()}); load(repair=True) first"
                )
        assert self._tail is not None
        return self._tail

    def append(self, event: Dict[str, Any]) -> Dict[str, Any]:
        """Durably append one event (flush + fsync before returning).

        The event is chained onto the journal's current tail; the
        chained record (with its digest) is returned so callers can
        reuse it.  The ``queue.append`` chaos point lives here — the
        ``queue_torn_write`` class persists half the line and kills
        the scheduler mid-append, exactly like ENOSPC + SIGKILL.
        """
        if event.get("event") not in EVENT_TYPES:
            raise CheckpointCorruptError(
                f"unknown journal event type {event.get('event')!r}")
        tail = self._ensure_tail()
        chained = {k: v for k, v in event.items() if k != "chain"}
        chained["chain"] = chain_digest(tail, chained)
        line = json.dumps(chained) + "\n"
        _chaos("queue.append", store=self, line=line)
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._tail = chained["chain"]
        return chained

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The multi-process submission spool
    # ------------------------------------------------------------------
    def spool_request(self, doc: Dict[str, Any], name: str) -> str:
        """Atomically drop one request document into the spool.

        ``name`` must be filesystem-safe and unique per request (the
        job id).  Used by ``repro submit`` / ``repro cancel`` running
        in a different process than the scheduler: the spool file is
        written next to the journal via temp + ``os.replace``, so the
        scheduler either sees a complete request or none at all.
        """
        os.makedirs(self.spool_dir, exist_ok=True)
        path = os.path.join(self.spool_dir, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def spooled_requests(self) -> List[Tuple[str, Dict[str, Any]]]:
        """The pending spool documents, in arrival order.

        Ordered by mtime (ties broken by name): a ``submit`` followed
        by a ``cancel`` of the same job must ingest in that order, and
        their spool names do not sort chronologically.
        """
        try:
            names = os.listdir(self.spool_dir)
        except OSError:
            return []
        stamped = []
        for name in names:
            if name.endswith(".tmp"):
                continue  # a submitter mid-write (or its crash debris)
            full = os.path.join(self.spool_dir, name)
            try:
                stamp = os.stat(full).st_mtime_ns
            except OSError:
                continue  # consumed by a racing scheduler
            stamped.append((stamp, name))
        requests = []
        for _, name in sorted(stamped):
            path = os.path.join(self.spool_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
            except (OSError, ValueError):
                continue  # unreadable request: leave it for inspection
            if isinstance(doc, dict):
                requests.append((path, doc))
        return requests

    @staticmethod
    def consume_request(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass  # already consumed by a prior (crashed) ingest
