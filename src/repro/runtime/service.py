"""Crash-safe multi-campaign scheduler service.

PRs 1/2/4 made a *single* campaign kill-anytime durable.  This module
makes a *population* of campaigns robust to the process that drives
them dying: a :class:`SchedulerService` owns a persistent, hash-chained
job journal (:mod:`repro.runtime.queue`), grants time-bounded fenced
**leases** over submitted jobs to workers (:mod:`repro.runtime.lease`),
renews them via heartbeats, and reclaims expired or orphaned leases so
a SIGKILLed worker's campaign is re-leased and resumed from its own
hash-chained checkpoint — exactly-once per unit, enforced by the
resume fingerprint check.

Robustness machinery:

* **Crash recovery by replay.**  The journal is the only durable
  scheduler state.  A restarting scheduler repairs a torn tail,
  replays every event, bumps the *epoch*, and immediately reclaims
  leases granted by the dead incarnation (their in-process workers
  died with it).
* **Fencing.**  Every lease carries a per-job monotonic token; a
  zombie worker whose lease was reclaimed gets its ``complete`` /
  ``fail`` / heartbeat rejected (recorded as a ``fenced`` event)
  instead of double-finishing the job.
* **Retry + quarantine.**  A job whose attempt *fails* (raises) is
  retried with exponential backoff; one that exhausts its budget is
  quarantined as a poison job.  Lease reclamation is infrastructure
  failure and never consumes the retry budget.
* **Graceful drain.**  SIGTERM (``repro serve``) stops new grants; the
  in-flight worker checkpoints, releases its lease and the scheduler
  exits cleanly — the next ``serve`` resumes mid-campaign.
* **Falsifiability.**  :func:`verify_journal` replays the event log
  and flags any broken service invariant (two live leases, a terminal
  job resurrected, a stale-token write that was not fenced ...), and
  :func:`run_service_soak` drives a whole population of campaigns
  through scheduler crashes, worker kills, torn journal writes and
  partition-shaped lease failures, then audits every campaign against
  its no-chaos golden twin.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.runtime import chaos
from repro.runtime.errors import (
    CampaignError,
    ConfigError,
    DrainRequested,
    LeaseLostError,
    ReproError,
)
from repro.runtime.integrity import Violation
from repro.runtime.lease import Lease, LeaseTable
from repro.runtime.queue import JobJournal, JournalDefect

#: Job statuses.  ``pending`` and ``leased`` are live; the rest are
#: terminal — a terminal job is never leased (hence never run) again.
JOB_STATUSES = ("pending", "leased", "done", "quarantined", "cancelled")
TERMINAL_STATUSES = ("done", "quarantined", "cancelled")


# ----------------------------------------------------------------------
# Job specs and state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One submitted campaign, as recorded in the journal."""

    job_id: str
    kind: str = "soak"
    seed: int = 0
    n_units: int = 8
    checkpoint: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id, "kind": self.kind, "seed": self.seed,
            "n_units": self.n_units, "checkpoint": self.checkpoint,
            "params": dict(self.params),
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "JobSpec":
        if not doc.get("job_id"):
            raise ConfigError("job spec needs a non-empty job_id")
        return cls(
            job_id=str(doc["job_id"]),
            kind=str(doc.get("kind", "soak")),
            seed=int(doc.get("seed", 0)),
            n_units=int(doc.get("n_units", 8)),
            checkpoint=doc.get("checkpoint"),
            params=dict(doc.get("params") or {}),
        )


@dataclass
class JobState:
    """The scheduler's live view of one job (rebuilt by replay)."""

    spec: JobSpec
    status: str = "pending"
    attempts: int = 0        # leases granted (includes crash re-leases)
    failures: int = 0        # fail events (what the retry budget gates)
    reclaims: int = 0        # leases revoked after expiry / crash
    fenced: int = 0          # stale-token writes rejected for this job
    retry_at: float = 0.0    # backoff gate for the next grant
    summary: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def row(self) -> Dict[str, Any]:
        """The ``repro status`` accounting row: job health plus the
        campaign-level diagnosis counters (degraded / quarantined /
        retried units, leaked threads) from the completion summary."""
        units = (self.summary or {}).get("units") or {}
        return {
            "job": self.spec.job_id, "kind": self.spec.kind,
            "status": self.status, "attempts": self.attempts,
            "failures": self.failures, "reclaims": self.reclaims,
            "fenced": self.fenced,
            "units_ok": units.get("ok", 0),
            "units_degraded": units.get("degraded", 0),
            "units_quarantined": units.get("quarantined", 0),
            "units_retried": units.get("retried", 0),
            "leaked_threads": units.get("leaked", 0),
            "error": self.error,
        }


@dataclass(frozen=True)
class ServiceConfig:
    """One scheduler's lease/retry policy (what lint CMP005 audits)."""

    lease_ttl: float = 30.0
    heartbeat_interval: float = 5.0
    max_job_retries: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0

    def validate(self) -> None:
        if self.lease_ttl <= 0:
            raise ConfigError("lease_ttl must be positive")
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be positive")
        if self.max_job_retries < 0:
            raise ConfigError("max_job_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff bounds must be >= 0")

    def backoff(self, failures: int) -> float:
        exponent = max(0, failures - 1)
        return min(self.backoff_base * self.backoff_factor ** exponent,
                   self.backoff_max)

    def lint_doc(self, journal: Optional[str] = None) -> Dict[str, Any]:
        """This config as the ``"service"`` block of a campaigns artifact."""
        return {
            "journal": journal,
            "lease_ttl": self.lease_ttl,
            "heartbeat_interval": self.heartbeat_interval,
            "max_job_retries": self.max_job_retries,
        }


# ----------------------------------------------------------------------
# Job kinds (what a leased worker actually runs)
# ----------------------------------------------------------------------
#: ``runner(spec, heartbeat) -> summary``.  ``heartbeat()`` must be
#: called at least once per unit; a ``False`` return means the lease
#: was lost and the runner must raise :class:`LeaseLostError`.
JobRunner = Callable[[JobSpec, Callable[[], bool]], Dict[str, Any]]

JOB_KINDS: Dict[str, JobRunner] = {}


def job_kind(name: str) -> Callable[[JobRunner], JobRunner]:
    def register(fn: JobRunner) -> JobRunner:
        JOB_KINDS[name] = fn
        return fn
    return register


def report_digest(report) -> str:
    """Order-sensitive digest of a campaign report's (id, status, value)
    rows — the compact equivalence check against a golden twin."""
    rows = sorted([r.unit_id, r.status, r.value]
                  for r in report.results.values())
    payload = json.dumps(rows, sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _campaign_summary(report) -> Dict[str, Any]:
    return {
        "units": report.counts(),
        "digest": report_digest(report),
        "interrupted": report.interrupted,
    }


def _guarded_progress(heartbeat: Callable[[], bool]):
    def progress(result, done, total) -> None:
        if not heartbeat():
            raise LeaseLostError(
                "lease lost mid-campaign; stopping with the checkpoint "
                "intact for the next lease to resume")
    return progress


@job_kind("soak")
def _run_soak_job(spec: JobSpec,
                  heartbeat: Callable[[], bool]) -> Dict[str, Any]:
    """The deterministic service workload: ``n_units`` hash-valued
    units (identical to the chaos soak's), optionally slowed by
    ``params["unit_seconds"]`` so CI can kill the scheduler mid-run."""
    from repro.runtime.runner import CampaignRunner

    runner = CampaignRunner(checkpoint=spec.checkpoint)
    resume = runner.store is not None and runner.store.exists()
    report = runner.run(
        service_job_units(spec),
        fingerprint=service_job_fingerprint(spec),
        resume=resume, repair=True,
        progress=_guarded_progress(heartbeat),
    )
    return _campaign_summary(report)


@job_kind("grade")
def _run_grade_job(spec: JobSpec,
                   heartbeat: Callable[[], bool]) -> Dict[str, Any]:
    """A real fault-grading campaign: generate the self-test program
    and grade it hierarchically, checkpointed per fault."""
    from repro.runtime.campaigns import HierarchicalCampaign
    from repro.selftest.generator import SelfTestGenerator
    from repro.selftest.vectors import expand_program

    params = spec.params
    selftest = SelfTestGenerator().generate(
        n_controllability_samples=int(params.get("samples", 100)),
        n_observability_good=int(params.get("good", 6)),
    )
    words = expand_program(selftest.program,
                           int(params.get("iterations", 100)))
    campaign = HierarchicalCampaign(words, checkpoint=spec.checkpoint)
    resume = campaign.runner.store is not None \
        and campaign.runner.store.exists()
    outcome = campaign.run(resume=resume, repair=True,
                           progress=_guarded_progress(heartbeat))
    summary = _campaign_summary(outcome.report)
    coverage = outcome.result.coverage()
    summary["coverage"] = round(coverage.coverage_percent, 3)
    return summary


def service_job_units(spec: JobSpec):
    """The work units of a ``soak``-kind job (deterministic values)."""
    from repro.runtime.chaos import _soak_value
    from repro.runtime.runner import WorkUnit

    delay = float(spec.params.get("unit_seconds", 0.0))

    def run(i: int):
        if delay:
            time.sleep(delay)
        return _soak_value(spec.seed, i)

    return [WorkUnit(unit_id=f"unit{i:03d}", run=lambda i=i: run(i))
            for i in range(spec.n_units)]


def service_job_fingerprint(spec: JobSpec) -> Dict[str, Any]:
    return {"kind": "service-soak", "job": spec.job_id,
            "seed": spec.seed, "n_units": spec.n_units}


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
def _locked(method):
    """Serialize a scheduler method on the service's RLock.

    The transport endpoint dispatches worker RPCs from per-connection
    threads while the serve loop ticks and runs local jobs; every state
    transition (and its journal append) must be atomic between them.
    Re-entrant so locked methods can call each other (``tick`` →
    ``ingest_spool`` → ``submit``)."""
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self.lock:
            return method(self, *args, **kwargs)
    return wrapper


class SchedulerService:
    """Crash-safe scheduler over one persistent job journal.

    Every state transition is journaled *before* the in-memory state
    changes, so a kill at any instant is recovered by replay.  The
    journal has exactly one writer — this object — which is why
    cross-process submission goes through the spool
    (:meth:`ingest_spool`) instead of appending directly.
    """

    def __init__(
        self,
        journal_path: str,
        config: ServiceConfig = ServiceConfig(),
        clock: Callable[[], float] = time.time,
        meta: Optional[Dict[str, Any]] = None,
    ):
        config.validate()
        self.config = config
        self.clock = clock
        #: One re-entrant lock covers every state transition; the
        #: transport endpoint shares it so remote RPCs, the serve loop
        #: and the local worker serialize against each other.
        self.lock = threading.RLock()
        self.journal = JobJournal(journal_path)
        self.jobs: Dict[str, JobState] = {}
        self.leases = LeaseTable(clock=clock)
        self.draining = False
        #: Volatile drain flag — safe to set from a signal handler (a
        #: plain attribute write, no journal append); the serve loop
        #: and the in-flight worker's next heartbeat both honour it.
        self.drain_requested = False
        self.epoch = 1
        #: Soak hook: lets the ``heartbeat_delay`` chaos class outrun
        #: the TTL on a virtual clock.  ``None`` outside soaks.
        self.chaos_clock_advance: Optional[Callable[[float], None]] = None

        if self.journal.exists():
            _, events, _ = self.journal.load(repair=True)
            self._replay(events)
            self.epoch += 1
        else:
            self.journal.create(meta)
        self.draining = False  # a past incarnation's drain is spent
        self._append({"event": "start", "epoch": self.epoch,
                      "pid": os.getpid()})

    # ------------------------------------------------------------------
    def _append(self, event: Dict[str, Any]) -> Dict[str, Any]:
        event.setdefault("time", round(self.clock(), 6))
        return self.journal.append(event)

    def _replay(self, events: Sequence[Dict[str, Any]]) -> None:
        """Rebuild jobs + leases from the journal (strict: an illegal
        transition means a scheduler bug or a forged journal, and
        running on top of it risks double-grading — fail loudly)."""
        violations: List[Violation] = []
        replay_events(events, self.jobs, self.leases,
                      violations, epoch_box=self)
        if violations:
            detail = "; ".join(v.describe() for v in violations[:5])
            raise CampaignError(
                f"job journal {self.journal.path} replays with "
                f"{len(violations)} invariant violation(s): {detail}"
            )

    # ------------------------------------------------------------------
    # Submission / cancellation
    # ------------------------------------------------------------------
    @_locked
    def submit(self, spec: JobSpec) -> JobState:
        """Queue one job.  Idempotent by job id (at-least-once
        submission — spool replays after a crash — lands exactly one
        journal event)."""
        existing = self.jobs.get(spec.job_id)
        if existing is not None:
            return existing
        if spec.kind not in JOB_KINDS:
            raise ConfigError(
                f"unknown job kind {spec.kind!r}: expected one of "
                f"{', '.join(sorted(JOB_KINDS))}")
        self._append({"event": "submit", "job": spec.job_id,
                      "spec": spec.to_json()})
        state = JobState(spec=spec)
        self.jobs[spec.job_id] = state
        obs.incr("service.jobs.submitted")
        return state

    @_locked
    def cancel(self, job_id: str) -> bool:
        """Withdraw a job.  A leased job is cancelled too — its worker's
        next heartbeat or completion is fenced off."""
        state = self.jobs.get(job_id)
        if state is None or state.terminal:
            return False
        self._append({"event": "cancel", "job": job_id})
        state.status = "cancelled"
        self.leases.mark_terminal(job_id)
        obs.incr("service.jobs.cancelled")
        return True

    @_locked
    def ingest_spool(self) -> int:
        """Fold spooled submit/cancel requests into the journal."""
        ingested = 0
        for path, doc in self.journal.spooled_requests():
            op = doc.get("op")
            try:
                if op == "submit":
                    self.submit(JobSpec.from_json(doc.get("spec") or {}))
                    ingested += 1
                elif op == "cancel":
                    self.cancel(str(doc.get("job", "")))
                    ingested += 1
            except ConfigError:
                pass  # malformed request: drop it rather than wedge
            self.journal.consume_request(path)
        return ingested

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    @_locked
    def lease_next(self, worker: str) -> Optional[Tuple[JobState, Lease]]:
        """Grant the oldest ready job to ``worker`` (FIFO over
        submission order, gated by each job's retry backoff)."""
        if self.draining:
            return None
        now = self.clock()
        for state in self.jobs.values():
            if state.status != "pending" or state.retry_at > now:
                continue
            lease = self.leases.grant(
                state.spec.job_id, worker,
                ttl=self.config.lease_ttl, epoch=self.epoch, now=now)
            state.attempts += 1
            self._append({
                "event": "lease", "job": state.spec.job_id,
                "worker": worker, "token": lease.token,
                "epoch": lease.epoch, "attempt": state.attempts,
                "granted": round(lease.granted_at, 6),
                "expires": round(lease.expires_at, 6),
            })
            state.status = "leased"
            obs.incr("service.leases.granted")
            return state, lease
        return None

    def _fence(self, job_id: str, token: int) -> Optional[Lease]:
        """The uniform ownership check for every worker operation:
        the token must be the job's current lease *and* the lease must
        not have expired.  Past the deadline the holder must assume it
        lost ownership — the scheduler may already have re-leased."""
        lease = self.leases.get(job_id)
        if lease is None or lease.token != token:
            return None
        if lease.expired(self.clock()):
            return None
        return lease

    def _fenced(self, job_id: str, token: int, op: str) -> bool:
        self._append({"event": "fenced", "job": job_id,
                      "token": token, "op": op})
        obs.incr("service.fenced_writes")
        return False

    @_locked
    def heartbeat(self, job_id: str, token: int) -> bool:
        """Renew the lease; ``False`` means ownership is gone and the
        worker must stop touching the job."""
        fired = chaos.inject("service.heartbeat", job_id=job_id,
                             token=token)
        if fired == "lease_lost":
            # Partition: the scheduler side already gave up on us.
            lease = self.leases.get(job_id)
            if lease is not None and lease.token == token:
                self._reclaim(lease, reason="lease-lost")
            return False
        if fired == "heartbeat_delay":
            # The renewal never arrives and the clock outruns the TTL;
            # the worker does not know yet and keeps running.
            if self.chaos_clock_advance is not None:
                self.chaos_clock_advance(self.config.lease_ttl + 1.0)
            return True
        lease = self._fence(job_id, token)
        if lease is None:
            return False
        now = self.clock()
        renewed = self.leases.renew(job_id, token,
                                    self.config.lease_ttl, now=now)
        if renewed is None:
            return False
        self._append({"event": "renew", "job": job_id, "token": token,
                      "expires": round(renewed.expires_at, 6)})
        obs.incr("service.leases.renewed")
        obs.observe("service.lease_age_seconds", lease.age(now))
        return True

    def _reclaim(self, lease: Lease, reason: str) -> None:
        self._append({"event": "reclaim", "job": lease.job_id,
                      "token": lease.token, "reason": reason})
        self.leases.drop(lease.job_id, lease.token)
        state = self.jobs[lease.job_id]
        state.status = "pending"
        state.reclaims += 1
        state.retry_at = self.clock()  # infrastructure loss: no backoff
        obs.incr("service.leases.reclaimed")
        obs.observe("service.lease_age_seconds", lease.age(self.clock()))

    @_locked
    def reclaim_expired(self) -> List[str]:
        """Revoke every reclaimable lease: past its deadline, or granted
        by a dead incarnation (whose in-process workers died with it)."""
        reclaimed = []
        for lease in self.leases.expired(self.epoch, now=self.clock()):
            reason = "stale-epoch" if lease.epoch < self.epoch \
                else "expired"
            self._reclaim(lease, reason=reason)
            reclaimed.append(lease.job_id)
        return reclaimed

    # ------------------------------------------------------------------
    # Completion / failure / release
    # ------------------------------------------------------------------
    @_locked
    def complete(self, job_id: str, token: int,
                 summary: Dict[str, Any]) -> bool:
        if self._fence(job_id, token) is None:
            return self._fenced(job_id, token, "complete")
        self._append({"event": "complete", "job": job_id,
                      "token": token, "summary": summary})
        state = self.jobs[job_id]
        state.status = "done"
        state.summary = summary
        self.leases.mark_terminal(job_id)
        obs.incr("service.jobs.done")
        return True

    @_locked
    def fail(self, job_id: str, token: int, error: str) -> bool:
        """One attempt failed: retry with backoff, or quarantine the
        poison job once the budget is spent."""
        if self._fence(job_id, token) is None:
            return self._fenced(job_id, token, "fail")
        state = self.jobs[job_id]
        failures = state.failures + 1
        final = failures > self.config.max_job_retries
        retry_at = None if final \
            else round(self.clock() + self.config.backoff(failures), 6)
        self._append({"event": "fail", "job": job_id, "token": token,
                      "error": error, "final": final,
                      "retry_at": retry_at})
        state.failures = failures
        state.error = error
        if final:
            state.status = "quarantined"
            self.leases.mark_terminal(job_id)
            obs.incr("service.jobs.quarantined")
        else:
            state.status = "pending"
            state.retry_at = retry_at or 0.0
            self.leases.drop(job_id, token)
            obs.incr("service.jobs.retried")
        return True

    @_locked
    def release(self, job_id: str, token: int) -> bool:
        """Voluntary give-back (graceful drain): the job returns to the
        queue with its checkpointed progress, no backoff, no penalty."""
        if self._fence(job_id, token) is None:
            return self._fenced(job_id, token, "release")
        self._append({"event": "release", "job": job_id, "token": token})
        state = self.jobs[job_id]
        state.status = "pending"
        state.retry_at = 0.0
        self.leases.drop(job_id, token)
        obs.incr("service.leases.released")
        return True

    # ------------------------------------------------------------------
    # The scheduler loop surface
    # ------------------------------------------------------------------
    @_locked
    def tick(self) -> List[str]:
        """One supervision step: ingest spooled requests, reclaim dead
        leases, export queue-health metrics.  The ``scheduler_crash``
        chaos class fires here — mid-supervision, like a real SIGKILL."""
        chaos.inject("service.tick")
        self.ingest_spool()
        reclaimed = self.reclaim_expired()
        obs.gauge_max("service.queue.depth", self.queue_depth())
        return reclaimed

    def request_drain(self) -> None:
        """Signal-handler-safe drain request (no journal I/O here)."""
        self.drain_requested = True

    @_locked
    def journal_worker(self, worker: str, host: str, pid: int) -> None:
        """Durably record a remote worker registration — the journal
        trail ``repro status --workers`` replays for per-worker health
        (a re-registration after reconnect appends another event)."""
        self._append({"event": "worker", "worker": worker,
                      "host": host, "pid": pid, "epoch": self.epoch})
        obs.incr("service.workers.registered")

    @_locked
    def drain(self) -> None:
        if not self.draining:
            self.draining = True
            self.drain_requested = True
            self._append({"event": "drain"})

    @_locked
    def queue_depth(self) -> int:
        return sum(1 for s in self.jobs.values()
                   if s.status in ("pending", "leased"))

    @_locked
    def all_terminal(self) -> bool:
        return all(s.terminal for s in self.jobs.values())

    @_locked
    def status_rows(self) -> List[Dict[str, Any]]:
        return [state.row() for state in self.jobs.values()]

    def close(self) -> None:
        self.journal.close()


# ----------------------------------------------------------------------
# The worker
# ----------------------------------------------------------------------
class ServiceWorker:
    """Leases jobs from a scheduler and runs their campaigns."""

    def __init__(self, service: SchedulerService, worker_id: str):
        self.service = service
        self.worker_id = worker_id

    def run_next(self) -> Optional[str]:
        """Lease and run one job.  Returns ``None`` (nothing ready) or
        the outcome: ``done``, ``failed``, ``lost``, ``fenced``,
        ``released``."""
        leased = self.service.lease_next(self.worker_id)
        if leased is None:
            return None
        state, lease = leased
        spec = state.spec

        def heartbeat() -> bool:
            if self.service.draining or self.service.drain_requested:
                raise DrainRequested("scheduler drain requested")
            return self.service.heartbeat(spec.job_id, lease.token)

        span = obs.span("service.job", key=spec.job_id,
                        worker=self.worker_id, attempt=state.attempts)
        with span:
            try:
                runner = JOB_KINDS[spec.kind]
                summary = runner(spec, heartbeat)
            except LeaseLostError:
                span.set(outcome="lost")
                return "lost"
            except DrainRequested:
                self.service.release(spec.job_id, lease.token)
                span.set(outcome="released")
                return "released"
            except ReproError as exc:
                self.service.fail(spec.job_id, lease.token,
                                  f"{type(exc).__name__}: {exc}")
                span.set(outcome="failed")
                return "failed"
            except Exception as exc:  # noqa: BLE001 — poison-job net
                self.service.fail(spec.job_id, lease.token,
                                  f"{type(exc).__name__}: {exc}")
                span.set(outcome="failed")
                return "failed"
            ok = self.service.complete(spec.job_id, lease.token, summary)
            span.set(outcome="done" if ok else "fenced")
            return "done" if ok else "fenced"


def serve_until_drained(
    service: SchedulerService,
    poll_seconds: float = 0.2,
    idle_exit: bool = True,
    sleep: Callable[[float], None] = time.sleep,
    should_drain: Optional[Callable[[], bool]] = None,
    server: Optional[Any] = None,
    local_worker: bool = True,
) -> str:
    """The ``repro serve`` loop: tick, run one job, repeat.  Returns
    ``"drained"`` (SIGTERM honoured) or ``"idle"`` (every submitted
    job terminal and nothing spooled).

    ``should_drain`` is polled at each round; the CLI's SIGTERM handler
    only flips a flag (journal writes from inside a signal handler
    could interleave with an append already in flight), and the loop
    turns the flag into :meth:`SchedulerService.drain` here.

    With a ``server`` (a listening
    :class:`~repro.runtime.transport.TransportServer`), the moment the
    drain is journaled every connected remote worker is pushed a drain
    frame — it checkpoints and releases instead of discovering the
    shutdown from a dead socket.  ``local_worker=False``
    (``repro serve --remote-only``) turns this process into a pure
    scheduler: remote workers do all the running.
    """
    worker = ServiceWorker(service, worker_id=f"w{os.getpid()}") \
        if local_worker else None
    while True:
        if service.drain_requested or \
                (should_drain is not None and should_drain()):
            was_draining = service.draining
            service.drain()
            if not was_draining and server is not None:
                server.broadcast_drain()
        service.tick()
        if service.draining:
            if not service.leases.live_jobs():
                return "drained"
            # Remote holders are checkpointing and releasing (or their
            # TTLs are running out); wait instead of spinning.
            sleep(poll_seconds)
            continue
        outcome = worker.run_next() if worker is not None else None
        if outcome is None:
            if idle_exit and service.all_terminal() \
                    and not service.journal.spooled_requests():
                if server is not None:
                    # Tell connected remote workers this scheduler is
                    # going away *before* the listener closes, so they
                    # exit "drained" instead of burning their whole
                    # reconnect budget against a dead address.
                    server.broadcast_drain()
                return "idle"
            sleep(poll_seconds)


# ----------------------------------------------------------------------
# Journal replay and the invariant checker
# ----------------------------------------------------------------------
def replay_events(
    events: Sequence[Dict[str, Any]],
    jobs: Dict[str, JobState],
    leases: LeaseTable,
    violations: List[Violation],
    epoch_box: Optional[Any] = None,
) -> None:
    """Replay ``events`` into ``jobs``/``leases``, appending a
    :class:`Violation` for every illegal transition.

    Used in two modes: the restarting scheduler replays strictly (any
    violation aborts recovery — see :meth:`SchedulerService._replay`),
    and :func:`verify_journal` replays tolerantly to *report* what a
    buggy or forged scheduler did.  ``epoch_box.epoch`` is updated
    with the journal's last ``start`` epoch when given.
    """
    epoch = 1
    open_lease: Dict[str, Tuple[int, float]] = {}  # job -> (token, expires)
    last_token: Dict[str, int] = {}

    def bad(kind: str, subject: str, message: str) -> None:
        violations.append(Violation(kind, subject, message))

    for i, event in enumerate(events):
        kind = event.get("event")
        job_id = event.get("job")
        state = jobs.get(job_id) if job_id is not None else None

        if kind == "start":
            epoch = int(event.get("epoch", epoch))
            continue
        if kind in ("drain", "worker"):
            # ``worker`` is pure observability (remote registration
            # trail); neither carries a job id.
            continue
        if kind == "submit":
            if state is not None:
                bad("double-submit", str(job_id),
                    f"event {i}: job submitted twice")
                continue
            try:
                spec = JobSpec.from_json(event.get("spec") or {})
            except ConfigError as exc:
                bad("bad-spec", str(job_id), f"event {i}: {exc}")
                continue
            jobs[spec.job_id] = JobState(spec=spec)
            continue

        if state is None:
            bad("unknown-job", str(job_id),
                f"event {i}: {kind!r} for a job never submitted")
            continue
        if state.terminal and kind != "fenced":
            bad("resurrected-terminal", str(job_id),
                f"event {i}: {kind!r} after the job reached "
                f"terminal status {state.status!r}")
            continue

        token = event.get("token")
        if kind == "lease":
            if job_id in open_lease:
                bad("double-lease", str(job_id),
                    f"event {i}: lease granted while lease token "
                    f"{open_lease[job_id][0]} is still open")
                continue
            expected = last_token.get(job_id, 0) + 1
            if token != expected:
                bad("token-reuse", str(job_id),
                    f"event {i}: lease token {token!r}, expected "
                    f"{expected} (tokens must be per-job monotonic)")
                continue
            lease = Lease(
                job_id=job_id, worker=str(event.get("worker", "?")),
                token=int(token), epoch=int(event.get("epoch", epoch)),
                granted_at=float(event.get("granted", 0.0)),
                expires_at=float(event.get("expires", 0.0)),
            )
            leases._tokens[job_id] = lease.token
            leases._live[job_id] = lease
            open_lease[job_id] = (lease.token, lease.expires_at)
            last_token[job_id] = lease.token
            state.status = "leased"
            state.attempts += 1
            continue

        if kind == "fenced":
            state.fenced += 1
            open_ = open_lease.get(job_id)
            if open_ is not None and open_[0] == token:
                # Fencing the *current* token is legal exactly when the
                # lease had already expired (a zombie worker outrunning
                # its TTL before the scheduler reclaims); fencing a
                # live, unexpired lease means the fence itself lied.
                when = event.get("time")
                expired = isinstance(when, (int, float)) \
                    and when >= open_[1]
                if not expired:
                    bad("fenced-current", str(job_id),
                        f"event {i}: current unexpired lease token "
                        f"{token} was fenced (only stale or expired "
                        "writes may be)")
            continue
        if kind == "cancel":
            # Scheduler-originated: quotes no fencing token, and is
            # legal whether or not the job is currently leased.
            open_lease.pop(job_id, None)
            state.status = "cancelled"
            leases.mark_terminal(job_id)
            continue

        open_ = open_lease.get(job_id)
        if open_ is None or open_[0] != token:
            bad("stale-write", str(job_id),
                f"event {i}: {kind!r} quotes token {token!r} but the "
                f"open lease is {open_ and open_[0]!r} — the write "
                "should have been fenced")
            continue

        if kind == "renew":
            expires = float(event.get("expires", open_[1]))
            open_lease[job_id] = (open_[0], expires)
            renewed = leases.renew(job_id, int(token),
                                   ttl=0.0, now=expires)
            if renewed is None:  # table drifted (verify-only path)
                leases._live[job_id] = Lease(
                    job_id=job_id, worker="?", token=int(token),
                    epoch=epoch, granted_at=0.0, expires_at=expires)
            continue
        if kind == "reclaim":
            del open_lease[job_id]
            leases.drop(job_id, int(token))
            state.status = "pending"
            state.reclaims += 1
            continue
        if kind == "release":
            del open_lease[job_id]
            leases.drop(job_id, int(token))
            state.status = "pending"
            continue
        if kind == "complete":
            del open_lease[job_id]
            state.status = "done"
            state.summary = event.get("summary")
            leases.mark_terminal(job_id)
            continue
        if kind == "fail":
            del open_lease[job_id]
            state.failures += 1
            state.error = event.get("error")
            if event.get("final"):
                state.status = "quarantined"
                leases.mark_terminal(job_id)
            else:
                state.status = "pending"
                state.retry_at = float(event.get("retry_at") or 0.0)
                leases.drop(job_id, int(token))
            continue
        bad("unknown-event", str(job_id),
            f"event {i}: unrecognised event type {kind!r}")

    if epoch_box is not None:
        epoch_box.epoch = epoch


def verify_journal(
    journal_path: str,
    require_terminal: bool = False,
) -> List[Violation]:
    """Audit one service journal; returns every violated invariant.

    Invariants: the chain is intact up to at most a torn *tail* (a
    normal crash artefact — interior corruption is a violation); no
    job ever holds two live leases; lease tokens are per-job
    monotonic; every ``complete``/``fail``/``release``/``renew``
    quotes the open lease's token (stale writes must appear as
    ``fenced`` events instead); no event ever follows a terminal
    status — a terminal job is never re-run; and, when
    ``require_terminal`` is set (a finished soak / drained queue),
    every submitted job reached exactly one terminal status.
    """
    from repro.runtime.errors import CheckpointCorruptError

    violations: List[Violation] = []
    journal = JobJournal(journal_path)
    try:
        _, events, defect = journal.load(repair=False)
    except CheckpointCorruptError as exc:
        return [Violation("broken-journal", journal_path, str(exc))]
    if defect is not None and not defect.is_tail:
        violations.append(Violation(
            "journal-interior-defect", journal_path, defect.describe()))

    jobs: Dict[str, JobState] = {}
    replay_events(events, jobs, LeaseTable(), violations)

    if require_terminal:
        for job_id, state in jobs.items():
            if not state.terminal:
                violations.append(Violation(
                    "non-terminal", job_id,
                    f"job ended the run in status {state.status!r}"))
    return violations


def journal_status(journal_path: str) -> List[Dict[str, Any]]:
    """The ``repro status`` rows, read-only (tolerates a live writer
    and a torn tail; never mutates the journal)."""
    journal = JobJournal(journal_path)
    _, events, _ = journal.load(repair=False)
    jobs: Dict[str, JobState] = {}
    replay_events(events, jobs, LeaseTable(), violations=[])
    rows = [state.row() for state in jobs.values()]
    spooled = {doc.get("spec", {}).get("job_id")
               for _, doc in journal.spooled_requests()
               if doc.get("op") == "submit"}
    spooled.discard(None)
    for job_id in sorted(spooled - set(jobs)):
        rows.append({"job": job_id, "kind": "?", "status": "spooled",
                     "attempts": 0, "failures": 0, "reclaims": 0,
                     "fenced": 0, "units_ok": 0, "units_degraded": 0,
                     "units_quarantined": 0, "units_retried": 0,
                     "leaked_threads": 0, "error": None})
    return rows


# ----------------------------------------------------------------------
# The service soak (``repro serve --soak``)
# ----------------------------------------------------------------------
class _VirtualClock:
    """Deterministic, manually advanced wall clock for the soak."""

    def __init__(self, start: float = 1_000_000.0):
        self._now = start

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds


@dataclass
class ServiceSoakReport:
    """Aggregate outcome of one ``repro serve --soak`` invocation."""

    seed: int
    classes: Tuple[str, ...]
    n_jobs: int
    scheduler_crashes: int = 0
    worker_crashes: int = 0
    reclaims: int = 0
    fenced: int = 0
    releases: int = 0
    leases: int = 0
    injections: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def n_crashes(self) -> int:
        return self.scheduler_crashes + self.worker_crashes

    @property
    def n_disruptions(self) -> int:
        """Crash + reclaim events — the soak's headline number."""
        return self.n_crashes + self.reclaims

    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        injected = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.injections.items()) if count)
        return (
            f"{self.n_jobs} service campaigns: "
            f"{self.scheduler_crashes} scheduler crashes, "
            f"{self.worker_crashes} worker crashes, "
            f"{self.reclaims} lease reclaims, {self.fenced} fenced "
            f"writes, {len(self.violations)} invariant violations "
            f"[{injected or 'nothing injected'}]"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "classes": list(self.classes),
            "jobs": self.n_jobs,
            "scheduler_crashes": self.scheduler_crashes,
            "worker_crashes": self.worker_crashes,
            "reclaims": self.reclaims,
            "fenced": self.fenced,
            "releases": self.releases,
            "leases": self.leases,
            "disruptions": self.n_disruptions,
            "injections": {k: v for k, v in
                           sorted(self.injections.items()) if v},
            "violations": [v.to_json() for v in self.violations],
        }


def run_service_soak(
    seed: int,
    campaigns: int = 25,
    n_units: int = 8,
    classes: Sequence[str] = chaos.SERVICE_SOAK_CLASSES,
    probability: float = 0.4,
    max_per_class: Optional[int] = None,
    scratch: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ServiceSoakReport:
    """Soak the scheduler: submit ``campaigns`` jobs, then keep killing
    the scheduler, killing workers mid-unit, tearing journal writes and
    dropping/starving leases until every job still lands terminal
    exactly once with a report identical to its no-chaos golden twin.

    The whole run is single-process and deterministic: workers live in
    the scheduler's process (a crash kills both, exactly like the real
    single-process ``repro serve``), time is a virtual clock, and every
    failure comes from the seeded :class:`~repro.runtime.chaos.ChaosMonkey`.
    """
    import shutil
    import tempfile

    from repro.runtime.chaos import ChaosConfig, ChaosKill, ChaosMonkey
    from repro.runtime.checkpoint import CheckpointStore
    from repro.runtime.integrity import verify_campaign
    from repro.runtime.runner import CampaignReport, CampaignRunner, \
        UnitResult

    classes = tuple(classes)
    if max_per_class is None:
        # Scale the chaos budget with the population so a full-size
        # soak (25 campaigns) suffers well over 50 crash/reclaim events.
        max_per_class = max(2, campaigns // 2)
    own_scratch = scratch is None
    scratch = scratch or tempfile.mkdtemp(prefix="repro-serve-")
    os.makedirs(scratch, exist_ok=True)
    journal_path = os.path.join(scratch, "service.jsonl")

    def say(text: str) -> None:
        if progress is not None:
            progress(text)

    report = ServiceSoakReport(seed=seed, classes=classes,
                               n_jobs=campaigns)
    specs = []
    goldens: Dict[str, CampaignReport] = {}
    for i in range(campaigns):
        job_seed = seed * 1_000_003 + i
        spec = JobSpec(
            job_id=f"job{i:03d}", kind="soak", seed=job_seed,
            n_units=n_units,
            checkpoint=os.path.join(scratch, f"job{i:03d}.jsonl"),
        )
        specs.append(spec)
        goldens[spec.job_id] = CampaignRunner().run(
            service_job_units(spec))

    config = ChaosConfig(seed=seed, classes=classes,
                         probability=probability,
                         max_per_class=max_per_class, scratch=scratch)
    monkey = chaos.install(ChaosMonkey(
        config, horizon=max(4, campaigns * n_units // 4)))
    clock = _VirtualClock()
    svc_config = ServiceConfig(
        lease_ttl=30.0, heartbeat_interval=5.0, max_job_retries=4,
        backoff_base=1.0, backoff_max=8.0,
    )
    # Generous convergence bound: every injection forces at most a few
    # extra scheduler rounds, and each job needs only one clean pass.
    budget = 50 + campaigns * 8 + 12 * max_per_class * len(classes)
    service: Optional[SchedulerService] = None
    worker: Optional[ServiceWorker] = None
    try:
        while True:
            if budget <= 0:
                raise CampaignError(
                    "service soak failed to converge (round budget "
                    "exhausted without all jobs terminal)")
            budget -= 1
            try:
                if service is None:
                    service = SchedulerService(
                        journal_path, config=svc_config, clock=clock.now)
                    service.chaos_clock_advance = clock.advance
                    worker = ServiceWorker(service, worker_id="w1")
                for spec in specs:
                    service.submit(spec)  # idempotent re-submission
                service.tick()
                if service.all_terminal():
                    break
                outcome = worker.run_next()
                if outcome is None:
                    # Everything ready is leased or backing off: let
                    # TTLs and retry gates expire.
                    clock.advance(svc_config.heartbeat_interval)
            except ChaosKill as kill:
                # Single process: any simulated SIGKILL takes down the
                # scheduler and its in-process workers together.
                if "mid-campaign" in str(kill):
                    report.worker_crashes += 1
                    say(f"worker killed mid-unit ({kill})")
                else:
                    report.scheduler_crashes += 1
                    say(f"scheduler killed ({kill})")
                if service is not None:
                    service.close()
                service = None
                continue
    finally:
        chaos.uninstall()

    report.injections = monkey.injection_counts()

    # ---- the audit --------------------------------------------------
    report.violations.extend(
        verify_journal(journal_path, require_terminal=True))
    _, events, _ = JobJournal(journal_path).load(repair=False)
    report.reclaims = sum(1 for e in events if e["event"] == "reclaim")
    report.fenced = sum(1 for e in events if e["event"] == "fenced")
    report.releases = sum(1 for e in events if e["event"] == "release")
    report.leases = sum(1 for e in events if e["event"] == "lease")
    completes = {e["job"]: e for e in events
                 if e["event"] == "complete"}

    for spec in specs:
        golden = goldens[spec.job_id]
        expected = [u.unit_id for u in service_job_units(spec)]
        try:
            _, records = CheckpointStore(spec.checkpoint).load()
        except Exception as exc:  # noqa: BLE001 — audited below
            report.violations.append(Violation(
                "broken-chain", spec.checkpoint or spec.job_id,
                str(exc)))
            continue
        rebuilt = CampaignReport()
        for unit_id in expected:
            if unit_id in records:
                rebuilt.results[unit_id] = \
                    UnitResult.from_record(records[unit_id])
        report.violations.extend(verify_campaign(
            rebuilt, checkpoint=spec.checkpoint, golden=golden,
            expected_units=expected))
        complete = completes.get(spec.job_id)
        if complete is not None:
            recorded = (complete.get("summary") or {}).get("digest")
            if recorded != report_digest(golden):
                report.violations.append(Violation(
                    "summary-digest-mismatch", spec.job_id,
                    f"completion summary digest {recorded!r} differs "
                    "from the golden twin's"))
        say(f"{spec.job_id}: audited")

    if own_scratch:
        shutil.rmtree(scratch, ignore_errors=True)
    return report
