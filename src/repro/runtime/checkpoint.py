"""JSON-lines campaign checkpoints with atomic writes and hash chaining.

Layout: line 1 is a header identifying the campaign (kind, format
version, a caller-supplied *fingerprint* of the workload), every later
line is one completed work unit's result record.  The format supports
the operations a resilient runner needs:

* **Append-only progress.**  Each completed unit is appended as one
  ``json.dumps`` line and flushed + fsynced before the runner moves on,
  so a kill at any instant loses at most the unit in flight.
* **Corruption detection.**  A partial final line (the classic
  kill-mid-write artefact) or non-JSON garbage raises
  :class:`CheckpointCorruptError` on load; ``load(repair=True)``
  instead truncates back to the last intact record and carries on.
* **Integrity chaining.**  Every record carries a ``chain`` digest over
  its payload and its predecessor's digest, anchored at the header
  (:mod:`repro.runtime.integrity`).  A flipped bit, an edited value, a
  duplicated or reordered line breaks the chain *at that record*, so
  silent corruption that still parses as JSON is detected — and repair
  discards from the first untrusted record instead of resurrecting it.

The header itself is written atomically (temp file + ``os.replace``), so
a checkpoint either exists with a valid header or not at all.  A crash
between writing ``path + ".tmp"`` and the ``os.replace`` can strand the
temp file; both :meth:`create` and :meth:`load` sweep it away.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional, Tuple

from repro.runtime.chaos import inject as _chaos
from repro.runtime.errors import CheckpointCorruptError
from repro.runtime.integrity import chain_digest

HEADER_KIND = "repro-campaign-checkpoint"
#: Version 2 added the per-record integrity chain (PR 4).
FORMAT_VERSION = 2

#: A ``.tmp`` younger than this many seconds is left alone by the sweep:
#: it may belong to a *live* writer mid-``create`` in another process
#: (several leased service workers can share a checkpoint directory).
#: A crash orphan, by contrast, only gets older.
TMP_SWEEP_GRACE_SECONDS = 30.0


class CheckpointStore:
    """One campaign's JSONL checkpoint file."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._handle = None
        #: Chain digest of the last durable line (header or record);
        #: ``None`` until :meth:`create` / :meth:`load` establishes it.
        self._tail: Optional[str] = None

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def _sweep_stale_tmp(self, grace: float = TMP_SWEEP_GRACE_SECONDS) -> None:
        """Remove a ``.tmp`` stranded by a crash mid-:meth:`create`.

        The atomic-replace protocol guarantees the canonical file is
        never half-written, but a kill between writing the temp file and
        ``os.replace`` leaves the orphan behind; it is dead weight (and
        an invariant violation) until someone sweeps it.

        Two processes may share a checkpoint directory (leased service
        workers running side by side), so the sweep must not race a
        live writer: only files older than ``grace`` seconds are swept
        — a writer completes its ``create`` in milliseconds, while a
        crash orphan only ages — and a concurrent sweeper winning the
        unlink (ENOENT) is silently tolerated.
        """
        tmp = self.path + ".tmp"
        try:
            age = time.time() - os.stat(tmp).st_mtime
        except OSError:
            return  # no orphan (or unreadable: nothing useful to do)
        if age < grace:
            return  # possibly a live writer mid-create, not an orphan
        try:
            os.remove(tmp)
        except FileNotFoundError:
            pass  # another sweeper won the race
        except OSError:
            pass  # best effort: an unremovable orphan is not fatal here

    def create(self, fingerprint: Optional[Dict] = None) -> Dict:
        """Atomically write a fresh checkpoint containing only the header."""
        self._sweep_stale_tmp()
        header = {
            "kind": HEADER_KIND,
            "version": FORMAT_VERSION,
            "fingerprint": fingerprint or {},
        }
        header["chain"] = chain_digest("", header)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._tail = header["chain"]
        return header

    # ------------------------------------------------------------------
    def load(self, repair: bool = False) -> Tuple[Dict, Dict[str, Dict]]:
        """Parse the checkpoint; returns ``(header, {unit_id: record})``.

        Raises :class:`CheckpointCorruptError` on a missing/invalid
        header, a non-JSON record line, a truncated final line, or a
        record whose ``chain`` digest does not extend its predecessor —
        unless ``repair`` is set, in which case the untrusted tail is
        cut off (on disk too) and every intact record is returned.
        """
        self._sweep_stale_tmp()
        try:
            # errors="replace": a bit flip can produce invalid UTF-8; the
            # mangled line must fail the chain check, not blow up decode.
            with open(self.path, "r", encoding="utf-8",
                      errors="replace") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CheckpointCorruptError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc

        lines = raw.split("\n")
        trailing_ok = lines and lines[-1] == ""
        if trailing_ok:
            lines = lines[:-1]
        if not lines:
            raise CheckpointCorruptError(f"checkpoint {self.path} is empty")

        header = self._parse_header(lines[0])
        records: Dict[str, Dict] = {}
        good_bytes = len(lines[0]) + 1
        tail = header["chain"]
        for i, line in enumerate(lines[1:], start=2):
            is_last = i == len(lines)
            truncated = is_last and not trailing_ok
            record = None
            if not truncated:
                try:
                    record = json.loads(line)
                except ValueError:
                    record = None
            reason = None
            if truncated:
                reason = "truncated mid-write"
            elif record is None or not isinstance(record, dict) \
                    or "unit" not in record:
                reason = "unparseable record"
            elif record.get("chain") != chain_digest(tail, record):
                reason = "integrity chain broken (corrupted, edited, " \
                    "duplicated or reordered record)"
            if reason is not None:
                if repair:
                    self._truncate(good_bytes)
                    break
                raise CheckpointCorruptError(
                    f"checkpoint {self.path} line {i}: {reason}"
                )
            records[record["unit"]] = record
            tail = record["chain"]
            good_bytes += len(line) + 1
        self._tail = tail
        return header, records

    def _parse_header(self, line: str) -> Dict:
        try:
            header = json.loads(line)
        except ValueError:
            header = None
        if not isinstance(header, dict) or \
                header.get("kind") != HEADER_KIND:
            raise CheckpointCorruptError(
                f"checkpoint {self.path} has no valid header"
            )
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint {self.path} is format version "
                f"{header.get('version')!r}, expected {FORMAT_VERSION}"
            )
        if header.get("chain") != chain_digest("", header):
            raise CheckpointCorruptError(
                f"checkpoint {self.path} header fails its own chain "
                "digest (corrupted or hand-edited header)"
            )
        return header

    def _truncate(self, n_bytes: int) -> None:
        self.close()
        with open(self.path, "r+", encoding="utf-8") as handle:
            handle.truncate(n_bytes)

    # ------------------------------------------------------------------
    def _ensure_tail(self) -> str:
        """The chain digest appends must extend; derived from the file
        when this store instance has not created/loaded it yet."""
        if self._tail is None:
            self.load(repair=False)
        assert self._tail is not None
        return self._tail

    def append(self, record: Dict) -> None:
        """Durably append one unit record (flush + fsync per record).

        The record is chained onto the file's current tail; any stale
        ``chain`` field (e.g. a record replayed from a worker shard,
        whose digest belongs to the *shard's* chain) is recomputed.
        """
        tail = self._ensure_tail()
        chained = {k: v for k, v in record.items() if k != "chain"}
        chained["chain"] = chain_digest(tail, chained)
        line = json.dumps(chained) + "\n"
        _chaos("checkpoint.append", store=self, line=line)
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._tail = chained["chain"]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
