"""JSON-lines campaign checkpoints with atomic writes.

Layout: line 1 is a header identifying the campaign (kind, format
version, a caller-supplied *fingerprint* of the workload), every later
line is one completed work unit's result record.  The format supports
the two operations a resilient runner needs:

* **Append-only progress.**  Each completed unit is appended as one
  ``json.dumps`` line and flushed + fsynced before the runner moves on,
  so a kill at any instant loses at most the unit in flight.
* **Corruption detection.**  A partial final line (the classic
  kill-mid-write artefact) or non-JSON garbage raises
  :class:`CheckpointCorruptError` on load; ``load(repair=True)``
  instead truncates back to the last intact record and carries on.

The header itself is written atomically (temp file + ``os.replace``), so
a checkpoint either exists with a valid header or not at all.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro.runtime.errors import CheckpointCorruptError

HEADER_KIND = "repro-campaign-checkpoint"
FORMAT_VERSION = 1


class CheckpointStore:
    """One campaign's JSONL checkpoint file."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._handle = None

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def create(self, fingerprint: Optional[Dict] = None) -> Dict:
        """Atomically write a fresh checkpoint containing only the header."""
        header = {
            "kind": HEADER_KIND,
            "version": FORMAT_VERSION,
            "fingerprint": fingerprint or {},
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return header

    # ------------------------------------------------------------------
    def load(self, repair: bool = False) -> Tuple[Dict, Dict[str, Dict]]:
        """Parse the checkpoint; returns ``(header, {unit_id: record})``.

        Raises :class:`CheckpointCorruptError` on a missing/invalid
        header, a non-JSON record line, or a truncated final line —
        unless ``repair`` is set, in which case the bad tail is cut off
        (on disk too) and every intact record is returned.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CheckpointCorruptError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc

        lines = raw.split("\n")
        trailing_ok = lines and lines[-1] == ""
        if trailing_ok:
            lines = lines[:-1]
        if not lines:
            raise CheckpointCorruptError(f"checkpoint {self.path} is empty")

        header = self._parse_header(lines[0])
        records: Dict[str, Dict] = {}
        good_bytes = len(lines[0]) + 1
        for i, line in enumerate(lines[1:], start=2):
            is_last = i == len(lines)
            truncated = is_last and not trailing_ok
            record = None
            if not truncated:
                try:
                    record = json.loads(line)
                except ValueError:
                    record = None
            if record is None or "unit" not in record:
                if repair:
                    self._truncate(good_bytes)
                    break
                reason = "truncated mid-write" if truncated \
                    else "unparseable record"
                raise CheckpointCorruptError(
                    f"checkpoint {self.path} line {i}: {reason}"
                )
            records[record["unit"]] = record
            good_bytes += len(line) + 1
        return header, records

    def _parse_header(self, line: str) -> Dict:
        try:
            header = json.loads(line)
        except ValueError:
            header = None
        if not isinstance(header, dict) or \
                header.get("kind") != HEADER_KIND:
            raise CheckpointCorruptError(
                f"checkpoint {self.path} has no valid header"
            )
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"checkpoint {self.path} is format version "
                f"{header.get('version')!r}, expected {FORMAT_VERSION}"
            )
        return header

    def _truncate(self, n_bytes: int) -> None:
        self.close()
        with open(self.path, "r+", encoding="utf-8") as handle:
            handle.truncate(n_bytes)

    # ------------------------------------------------------------------
    def append(self, record: Dict) -> None:
        """Durably append one unit record (flush + fsync per record)."""
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
