"""Bit-parallel batched fault grading over compiled fanout cones.

This is the word-level PPSFP-style engine behind
``CombFaultSimulator(engine="batched")``.  The interpreted engine
already packs one pattern per integer bit but re-walks every fault's
fanout cone gate-by-gate through :func:`repro.logic.gates.eval_gate` —
a dict lookup per operand and a Python call per gate, once per fault
per block.  The batched engine removes that per-gate dispatch cost:

* **Compiled cone kernels.**  Each fault site's fanout cone is
  code-generated once into a straight-line function
  (:class:`~repro.logic.compiled.CompiledConeEvaluator`), shared by
  both stuck-at polarities and content-addressed by
  ``(netlist hash, net id)`` in :func:`repro.runtime.cache.compiled_cone`
  — the same seam the good machine's :class:`CompiledEvaluator` uses.
  Compilation is *adaptive*: a cone costs roughly as much to compile
  as a few interpreted walks of it, so each site is walked interpreted
  until it has been excited more than
  :data:`DEFAULT_COMPILE_THRESHOLD` times (faults detected and
  dropped early never pay compile time), unless the shared cache
  already holds its kernel.

* **Wide pattern blocks.**  :func:`widen_blocks` re-chunks a stream of
  pattern blocks to a fixed width (64–256 patterns per Python-int
  word), so the per-fault fixed costs amortise over more patterns.
  Global pattern indices are preserved — only block boundaries move —
  which keeps first-detect indices bit-identical to the interpreted
  engine.

* **Fault dropping.**  ``run_with_dropping`` evaluates the good
  machine once per block (through the shared trace cache), propagates
  every still-live fault with the mask-only kernel, and drops detected
  faults before the next block.

Results are bit-for-bit identical to the interpreted engine —
detection masks, first-detect indices and
:class:`~repro.faults.combsim.LocalDetection.faulty_words` — which the
differential sweep in ``tests/test_faults_batched.py`` enforces over
seeded random netlists and the paper core's components.
"""

from __future__ import annotations

from typing import (
    Dict, Iterable, Iterator, List, Mapping, Optional, Sequence,
)

from repro import obs
from repro.runtime.errors import ConfigError
from repro.logic.netlist import Netlist

#: Default patterns-per-word for re-chunked blocks.  Python ints carry
#: arbitrary precision, so the width trades per-block fixed costs
#: against excitation-check selectivity; 64–256 is the sweet spot.
DEFAULT_BLOCK_WIDTH = 128

#: Excited cone walks a fault site tolerates interpreted before its
#: kernel is compiled.  Compiling a cone costs roughly as much as a few
#: interpreted walks of it, so sites that drop out of the live set
#: early should never pay it; sites walked repeatedly (multi-block
#: grading, continuous injection) amortise it within a couple of
#: blocks.  Both stuck-at polarities share one site counter.
DEFAULT_COMPILE_THRESHOLD = 2

#: Accepted ``CombFaultSimulator`` engine names.
ENGINES = ("interpreted", "batched")


def validate_block_width(width: int) -> int:
    if not isinstance(width, int) or width < 1:
        raise ConfigError(f"block_width must be a positive int, got {width!r}")
    return width


class BatchedConeEngine:
    """Compiled-cone fault propagation state for one combinational netlist.

    Holds the block-width knob and the adaptive compile decision the
    :class:`~repro.faults.combsim.CombFaultSimulator` consults when
    constructed with ``engine="batched"``: :meth:`kernel_or_none`
    returns the site's compiled kernel once the site has earned it (or
    another instance already compiled it), ``None`` while the
    interpreted walk is still the cheaper choice.
    """

    def __init__(self, netlist: Netlist, block_width: Optional[int] = None,
                 compile_threshold: Optional[int] = None):
        self.netlist = netlist
        self.block_width = validate_block_width(
            DEFAULT_BLOCK_WIDTH if block_width is None else block_width
        )
        self.compile_threshold = DEFAULT_COMPILE_THRESHOLD \
            if compile_threshold is None else compile_threshold
        if self.compile_threshold < 0:
            raise ConfigError(
                f"compile_threshold must be >= 0, "
                f"got {self.compile_threshold!r}"
            )
        self._kernels: Dict[int, object] = {}
        self._walks: Dict[int, int] = {}

    def kernel(self, net: int):
        """The (shared-cache) compiled cone kernel for site ``net``,
        compiling it if needed — bypasses the warm-up threshold."""
        from repro.runtime.cache import compiled_cone
        kern = self._kernels.get(net)
        if kern is None:
            kern = self._kernels[net] = compiled_cone(self.netlist, net)
        return kern

    def kernel_or_none(self, net: int):
        """The compiled kernel for ``net``, or ``None`` during warm-up.

        Counts one excited walk per call; once the count exceeds
        ``compile_threshold`` the kernel is compiled (and memoised
        locally).  A kernel already in the shared cache — compiled by a
        sibling simulator or inherited across a pool fork — is adopted
        immediately, warm-up notwithstanding.
        """
        kern = self._kernels.get(net)
        if kern is not None:
            return kern
        from repro.runtime.cache import cone_if_cached
        kern = cone_if_cached(self.netlist, net)
        if kern is None:
            walks = self._walks.get(net, 0) + 1
            self._walks[net] = walks
            if walks <= self.compile_threshold:
                return None
            kern = self.kernel(net)
        else:
            self._kernels[net] = kern
        return kern


def widen_blocks(blocks: Iterable[Mapping[str, Sequence[int]]],
                 width: int) -> Iterator[Dict[str, List[int]]]:
    """Re-chunk a stream of pattern blocks to ``width`` patterns each.

    Adjacent blocks with the same bus set are concatenated and re-split
    so every emitted block (except possibly the last) carries exactly
    ``width`` patterns.  Pattern order is preserved, so global pattern
    indices — and therefore first-detect indices under fault dropping —
    are invariant.  A change in the stimulated bus set flushes the
    pending patterns first (blocks are never merged across layouts).
    """
    validate_block_width(width)
    pending: Dict[str, List[int]] = {}
    count = 0

    def flush_full() -> Iterator[Dict[str, List[int]]]:
        nonlocal pending, count
        while count >= width:
            yield {name: words[:width] for name, words in pending.items()}
            pending = {name: words[width:] for name, words in pending.items()}
            count -= width

    def flush_rest() -> Iterator[Dict[str, List[int]]]:
        nonlocal pending, count
        if count:
            yield {name: list(words) for name, words in pending.items()}
            pending, count = {}, 0

    for block in blocks:
        if not block:
            raise ConfigError("no pattern buses given")
        lengths = {len(words) for words in block.values()}
        if len(lengths) != 1:
            raise ConfigError("all pattern buses must have equal length")
        if pending and set(block) != set(pending):
            yield from flush_rest()
        if not pending:
            pending = {name: [] for name in block}
        for name, words in block.items():
            pending[name].extend(words)
        count += lengths.pop()
        yield from flush_full()
    yield from flush_rest()


def drop_faults(sim, blocks: Iterable[Mapping[str, Sequence[int]]],
                faults: Sequence) -> Dict[object, object]:
    """Batched fault dropping: fault → global first-detect index.

    ``sim`` supplies the cached good machine
    (:meth:`CombFaultSimulator.good_values`) and the per-fault mask
    dispatch (interpreted during a site's warm-up, the mask-only cone
    kernel after).  Incoming blocks are re-chunked to the engine's
    block width; detected faults leave the live set before the next
    block is graded.
    """
    engine: BatchedConeEngine = sim.batched_engine
    remaining = list(faults)
    first_detect: Dict[object, object] = {f: None for f in remaining}
    offset = 0
    for block in widen_blocks(blocks, engine.block_width):
        if not remaining:
            break
        n_patterns = len(next(iter(block.values())))
        obs.observe("sim.batched.block_width", n_patterns)
        good = sim.good_values(block, n_patterns)
        still: List = []
        for fault in remaining:
            mask = sim.detect_mask(fault, good, n_patterns)
            if mask:
                first_detect[fault] = \
                    offset + (mask & -mask).bit_length() - 1
            else:
                still.append(fault)
        obs.incr("sim.batched.faults_dropped", len(remaining) - len(still))
        obs.incr("sim.batched.blocks")
        remaining = still
        offset += n_patterns
    return first_detect
