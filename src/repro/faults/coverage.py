"""Fault-coverage bookkeeping and reporting.

The paper quotes both *fault coverage* (detected / all faults) and *test
coverage* (detected / detectable faults, i.e. excluding faults proven
untestable).  :class:`CoverageReport` carries both, plus optional
per-component breakdowns for the DSP-core experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from repro.runtime.errors import ConfigError


@dataclass
class CoverageReport:
    """Summary of a fault-grading run."""

    name: str
    n_faults: int
    n_detected: int
    n_untestable: int = 0
    n_vectors: int = 0
    by_component: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: by_component maps component → (detected, total)

    @property
    def fault_coverage(self) -> float:
        """Detected / all faults, as a fraction in [0, 1]."""
        if self.n_faults == 0:
            return 1.0
        return self.n_detected / self.n_faults

    @property
    def test_coverage(self) -> float:
        """Detected / detectable faults (untestable ones excluded)."""
        detectable = self.n_faults - self.n_untestable
        if detectable <= 0:
            return 1.0
        return self.n_detected / detectable

    def test_time_seconds(self, clock_hz: float = 500e6) -> float:
        """Test application time at the paper's assumed 500 MHz clock."""
        if clock_hz <= 0:
            raise ConfigError("clock frequency must be positive")
        return self.n_vectors / clock_hz

    def merged_with(self, other: "CoverageReport",
                    name: Optional[str] = None) -> "CoverageReport":
        """Combine two disjoint fault populations into one report."""
        combined: Dict[str, Tuple[int, int]] = dict(self.by_component)
        for comp, (det, tot) in other.by_component.items():
            prev = combined.get(comp, (0, 0))
            combined[comp] = (prev[0] + det, prev[1] + tot)
        return CoverageReport(
            name=name or f"{self.name}+{other.name}",
            n_faults=self.n_faults + other.n_faults,
            n_detected=self.n_detected + other.n_detected,
            n_untestable=self.n_untestable + other.n_untestable,
            n_vectors=max(self.n_vectors, other.n_vectors),
            by_component=combined,
        )

    def __str__(self) -> str:
        lines = [
            f"{self.name}: {self.n_detected}/{self.n_faults} faults detected "
            f"(FC {self.fault_coverage:.2%}, TC {self.test_coverage:.2%}, "
            f"{self.n_vectors} vectors)"
        ]
        for comp in sorted(self.by_component):
            det, tot = self.by_component[comp]
            pct = det / tot if tot else 1.0
            lines.append(f"  {comp:<18} {det:>5}/{tot:<5} ({pct:.2%})")
        return "\n".join(lines)


def coverage_curve(first_detect: Dict, n_vectors: int,
                   step: int = 1) -> List[Tuple[int, float]]:
    """Build (vectors applied, fault coverage) points from detection times.

    ``first_detect`` maps fault → first detecting vector index or ``None``.
    """
    total = len(first_detect)
    if total == 0:
        return [(n_vectors, 1.0)]
    times = sorted(t for t in first_detect.values() if t is not None)
    points: List[Tuple[int, float]] = []
    idx = 0
    for v in range(0, n_vectors + 1, max(step, 1)):
        while idx < len(times) and times[idx] < v:
            idx += 1
        points.append((v, idx / total))
    return points
