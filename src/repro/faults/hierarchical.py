"""Hierarchical fault simulation of the full DSP core.

This is the project's substitute for Tetramax fault-grading the synthesised
core (see DESIGN.md).  It exploits the same decomposition the paper's
metrics do:

1. **Local detection (gate level).**  The behavioural core is simulated
   once over the instruction stream, recording every combinational
   component's input words per cycle.  Each component's gate-level netlist
   is then fault-simulated pattern-parallel against that recorded stream,
   yielding, per fault, the first cycles at which the component's output
   is corrupted.

2. **Exact propagation (mixed level).**  For a fault first excited at
   cycle *t*, the core state at *t* is still fault-free, so the simulator
   forks the behavioural core from the nearest checkpoint, replays to *t*,
   and runs forward with the fault *continuously* injected — the
   component's output is overridden each cycle with its gate-level faulty
   evaluation.  The fault is detected when the output-port stream diverges
   from the fault-free run within the propagation window.

3. **Storage faults (word level).**  Register/accumulator/register-file
   faults use exact word-level models: stuck storage bits are persistent
   ``stuck_bits`` on the forked core; stuck data/enable input bits are
   per-cycle callable overrides.

The only approximation is the bounded propagation window per injection
start (a fault not observed within ``propagation_window`` cycles of an
excitation retries at a later excitation with clean state); this slightly
*under*-estimates coverage and is validated against exact flat sequential
fault simulation on the simple datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro._util import mask
from repro.runtime.errors import ConfigError
from repro.dsp.components import COMPONENTS, ComponentSpec
from repro.dsp.core import CoreState, DspCore
from repro.dsp.isa import N_REGISTERS
from repro.faults.combsim import CombFaultSimulator
from repro.faults.coverage import CoverageReport
from repro.faults.model import Fault, collapse_faults


# ----------------------------------------------------------------------
# Fault identities
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class ComponentFault:
    """A stuck-at fault inside a combinational component's netlist."""

    component: str
    fault: Fault

    def describe(self) -> str:
        spec = _spec(self.component)
        return f"{self.component}/{self.fault.describe(spec.netlist())}"


@dataclass(frozen=True, order=True)
class StorageFault:
    """A word-level fault on a storage element.

    ``kind`` is ``"q"`` (stuck storage bit), ``"d"`` (stuck data-input
    bit) or ``"en"`` (stuck enable).  ``target`` is the component name for
    datapath registers or ``("reg", i)`` for register-file cells.
    """

    target: Tuple
    kind: str
    bit: int
    stuck_at: int

    def describe(self) -> str:
        name = "/".join(str(p) for p in self.target)
        return f"{name}.{self.kind}[{self.bit}] sa{self.stuck_at}"


AnyFault = object  # ComponentFault | StorageFault


def fault_unit_id(fault) -> str:
    """A stable string key for a fault, usable as a campaign unit id.

    Stable across processes (no object identity, no hash randomisation),
    which is what lets a resumed campaign match checkpoint records back
    to fault objects.
    """
    if isinstance(fault, ComponentFault):
        return (f"comb:{fault.component}:{fault.fault.net}"
                f":sa{fault.fault.stuck_at}")
    target = "/".join(str(p) for p in fault.target)
    return f"storage:{target}:{fault.kind}:{fault.bit}:sa{fault.stuck_at}"


def _spec(name: str) -> ComponentSpec:
    from repro.dsp.components import component_by_name
    return component_by_name(name)


# ----------------------------------------------------------------------
# The fault universe
# ----------------------------------------------------------------------
class DspFaultUniverse:
    """The complete stuck-at fault population of the DSP core.

    ``build`` selects a non-paper family point: its component registry
    (per-spec widths, optional truncater/limiter), register-file shape
    and core factory replace the paper singletons.
    """

    def __init__(self, components: Optional[Iterable[str]] = None,
                 include_regfile: bool = True,
                 engine: str = "interpreted",
                 block_width: Optional[int] = None,
                 build=None):
        self.build = build
        registry = COMPONENTS if build is None else build.components
        names = list(components) if components is not None else \
            [spec.name for spec in registry]
        self.engine = engine
        self.comb_faults: Dict[str, List[Fault]] = {}
        self.comb_simulators: Dict[str, CombFaultSimulator] = {}
        self.storage_faults: List[StorageFault] = []
        from repro.lint.netlist_rules import warn_on_netlist
        for name in names:
            spec = self.spec(name)
            if spec.kind == "comb":
                netlist = spec.netlist()
                # Warn-only structural screening (lint NET* error rules):
                # a multi-driven or floating-bus netlist silently corrupts
                # fault grading, so surface it at universe construction.
                warn_on_netlist(netlist, context=f"fault universe: {name}")
                fault_list = collapse_faults(netlist)
                # Component-input faults model the interconnect, which is
                # already covered by the driving component's output faults
                # (or by storage faults) — keeping them would double count.
                pi_nets = set(netlist.inputs)
                internal = [f for f in fault_list.faults
                            if f.net not in pi_nets]
                self.comb_faults[name] = internal
                self.comb_simulators[name] = CombFaultSimulator(
                    netlist, fault_list, engine=engine,
                    block_width=block_width,
                )
            else:
                self.storage_faults.extend(_register_faults(spec))
        if include_regfile:
            n_regs = N_REGISTERS if build is None else build.spec.n_registers
            reg_width = 8 if build is None else build.spec.operand_width
            for reg in range(n_regs):
                for bit in range(reg_width):
                    for polarity in (0, 1):
                        self.storage_faults.append(
                            StorageFault(("reg", reg), "q", bit, polarity)
                        )

    def spec(self, name: str) -> ComponentSpec:
        """The component spec for ``name`` in this universe's registry."""
        if self.build is None:
            return _spec(name)
        return self.build.component_by_name(name)

    def all_faults(self) -> List:
        faults: List = [
            ComponentFault(name, f)
            for name, flist in sorted(self.comb_faults.items())
            for f in flist
        ]
        faults.extend(self.storage_faults)
        return faults

    def component_of(self, fault) -> str:
        if isinstance(fault, ComponentFault):
            return fault.component
        if fault.target[0] == "reg":
            return "regfile"
        return str(fault.target[0])

    def counts_by_component(self) -> Dict[str, int]:
        counts: Dict[str, int] = {
            name: len(flist) for name, flist in self.comb_faults.items()
        }
        for fault in self.storage_faults:
            counts[self.component_of(fault)] = \
                counts.get(self.component_of(fault), 0) + 1
        return counts


def _register_faults(spec: ComponentSpec) -> List[StorageFault]:
    faults: List[StorageFault] = []
    width = spec.output_width
    has_enable = any(name == "en" for name, _ in spec.input_ports)
    for bit in range(width):
        for polarity in (0, 1):
            faults.append(StorageFault((spec.name,), "q", bit, polarity))
            faults.append(StorageFault((spec.name,), "d", bit, polarity))
    if has_enable:
        faults.append(StorageFault((spec.name,), "en", 0, 0))
        faults.append(StorageFault((spec.name,), "en", 0, 1))
    return faults


# ----------------------------------------------------------------------
# Storage-fault execution helpers
# ----------------------------------------------------------------------
_STATE_KEY_BY_NAME = {
    "acca": ("acc_a",), "accb": ("acc_b",), "macreg": ("macreg",),
    "buffer": ("buffer",), "temp": ("temp",),
}


def storage_fault_core(fault: StorageFault,
                       state: Optional[CoreState] = None,
                       build=None) -> DspCore:
    """A core whose behaviour includes ``fault`` permanently."""

    def make_core(**kwargs) -> DspCore:
        if build is None:
            return DspCore(**kwargs)
        return build.make_core(**kwargs)

    if fault.kind == "q":
        if fault.target[0] == "reg":
            key: Tuple = fault.target
            width = 8 if build is None else build.spec.operand_width
        else:
            key = _STATE_KEY_BY_NAME[fault.target[0]]
            if build is None:
                width = 18 if fault.target[0] in ("acca", "accb") else 8
            elif fault.target[0] in ("acca", "accb"):
                width = build.spec.acc_width
            else:
                width = build.spec.operand_width
        if fault.stuck_at:
            and_mask, or_mask = mask(width), 1 << fault.bit
        else:
            and_mask, or_mask = mask(width) & ~(1 << fault.bit), 0
        return make_core(state=state, stuck_bits={key: (and_mask, or_mask)})
    # d / en faults: per-cycle callable override on the traced component.
    name = fault.target[0]

    def override(inputs: Dict[str, int]) -> int:
        d = inputs["d"]
        if fault.kind == "d":
            if fault.stuck_at:
                d |= 1 << fault.bit
            else:
                d &= ~(1 << fault.bit)
            en = inputs.get("en", 1)
        else:  # en fault
            en = fault.stuck_at
        return d if en else inputs.get("q", 0)

    core = make_core(state=state)
    core_overrides = {name: override}
    # Wrap step to always apply the override.
    original_step = core.step

    def step(word, overrides=None, trace=None):
        merged = dict(core_overrides)
        if overrides:
            merged.update(overrides)
        return original_step(word, overrides=merged, trace=trace)

    core.step = step  # type: ignore[method-assign]
    return core


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class HierarchicalResult:
    """Outcome of a hierarchical fault-grading run."""

    first_detect: Dict[object, Optional[int]]
    n_vectors: int
    universe: DspFaultUniverse = field(repr=False, default=None)

    @property
    def detected(self) -> List:
        return [f for f, c in self.first_detect.items() if c is not None]

    @property
    def undetected(self) -> List:
        return [f for f, c in self.first_detect.items() if c is None]

    def coverage_report(self, name: str = "hierarchical") -> CoverageReport:
        by_component: Dict[str, Tuple[int, int]] = {}
        for fault, cycle in self.first_detect.items():
            comp = self.universe.component_of(fault) if self.universe \
                else "core"
            det, tot = by_component.get(comp, (0, 0))
            by_component[comp] = (det + (cycle is not None), tot + 1)
        return CoverageReport(
            name=name,
            n_faults=len(self.first_detect),
            n_detected=len(self.detected),
            n_vectors=self.n_vectors,
            by_component=by_component,
        )


def _set_bit_positions(mask_bits: int) -> List[int]:
    """Positions of the set bits of ``mask_bits``, ascending."""
    positions = []
    while mask_bits:
        low = mask_bits & -mask_bits
        positions.append(low.bit_length() - 1)
        mask_bits ^= low
    return positions


def _spread(items: List[int], k: int) -> List[int]:
    """Up to ``k`` items sampled evenly across ``items`` (first included)."""
    if k <= 0:
        return []
    if len(items) <= k:
        return items
    step = (len(items) - 1) / (k - 1)
    picked = []
    for i in range(k):
        idx = round(i * step)
        if not picked or items[idx] != picked[-1]:
            picked.append(items[idx])
    return picked


# ----------------------------------------------------------------------
# The recorded fault-free trace
# ----------------------------------------------------------------------
@dataclass
class TraceContext:
    """The fault-free execution trace, recorded once and shared by every
    grading unit.

    Holds the clean output-port stream, the periodic core-state
    checkpoints, and each combinational component's recorded input
    stream per block.  Grading any single fault against this context is
    an independent, idempotent operation — the decomposition the
    resilient campaign runner builds on.
    """

    words: List[int]
    clean_ports: List[int]
    checkpoints: Dict[int, CoreState] = field(repr=False, default_factory=dict)
    block_records: Dict[int, Dict[str, Dict]] = field(repr=False,
                                                      default_factory=dict)
    block_size: int = 256
    _good_cache: Dict[Tuple[str, int], List[int]] = field(
        repr=False, default_factory=dict)

    @property
    def block_starts(self) -> List[int]:
        return sorted(self.block_records)

    def block_end(self, block_start: int) -> int:
        return min(block_start + self.block_size, len(self.words))

    def good_values(self, sim: CombFaultSimulator, name: str,
                    block_start: int) -> List[int]:
        """The good-machine net values for one (component, block), cached
        so grading many faults of the same component shares the work."""
        key = (name, block_start)
        if key not in self._good_cache:
            rec = self.block_records[block_start][name]
            self._good_cache[key] = sim.good_values(
                rec["inputs"], len(rec["cycles"])
            )
        return self._good_cache[key]


# ----------------------------------------------------------------------
# The simulator
# ----------------------------------------------------------------------
class HierarchicalFaultSimulator:
    """Grades the DSP core's fault universe against an instruction stream.

    The work decomposes into :meth:`prepare` (one fault-free recording
    pass) plus one independent grading call per fault
    (:meth:`grade_comb_fault` / :meth:`grade_storage_fault`);
    :meth:`run` simply executes every unit in order.  The campaign layer
    (:mod:`repro.runtime.campaigns`) executes the same units with
    checkpointing, timeouts and resume.
    """

    def __init__(
        self,
        universe: Optional[DspFaultUniverse] = None,
        block_size: int = 256,
        checkpoint_every: int = 32,
        propagation_window: int = 48,
        max_starts_per_block: int = 8,
        max_continuous_starts: int = 2,
        engine: str = "interpreted",
    ):
        # ``engine`` selects the component-level fault-propagation
        # engine when the default universe is built here; an explicit
        # universe carries its own engine choice (and family build).
        self.universe = universe if universe is not None \
            else DspFaultUniverse(engine=engine)
        self.build = self.universe.build
        if block_size % checkpoint_every:
            raise ConfigError(
                "block_size must be a multiple of checkpoint_every"
            )
        self.block_size = block_size
        self.checkpoint_every = checkpoint_every
        self.propagation_window = propagation_window
        self.max_starts_per_block = max_starts_per_block
        self.max_continuous_starts = max_continuous_starts

    # ------------------------------------------------------------------
    def run(self, words: List[int],
            storage_fault_max_cycles: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> HierarchicalResult:
        """Grade every fault in the universe against ``words``.

        ``storage_fault_max_cycles`` caps the differential run length for
        word-level storage faults (default: the full stream).
        ``progress`` is called as ``progress(faults_done, faults_total)``
        as grading advances.
        """
        ctx = self.prepare(words)
        first_detect: Dict[object, Optional[int]] = {}
        total = sum(len(f) for f in self.universe.comb_faults.values()) \
            + len(self.universe.storage_faults)
        done = 0
        for name, faults in self.universe.comb_faults.items():
            for fault in faults:
                first_detect[ComponentFault(name, fault)] = \
                    self.grade_comb_fault(ctx, name, fault)
            done += len(faults)
            if progress is not None and faults:
                progress(done, total)
        for fault in self.universe.storage_faults:
            first_detect[fault] = self.grade_storage_fault(
                ctx, fault, storage_fault_max_cycles
            )
        if progress is not None and self.universe.storage_faults:
            progress(total, total)
        return HierarchicalResult(
            first_detect=first_detect, n_vectors=len(words),
            universe=self.universe,
        )

    # ------------------------------------------------------------------
    def prepare(self, words: List[int]) -> TraceContext:
        """One fault-free pass: record ports, checkpoints and per-block
        component input streams."""
        with obs.span("hier.prepare", words=len(words)), \
                obs.section("sim.hier.prepare"):
            return self._prepare(words)

    def _make_core(self, **kwargs) -> DspCore:
        if self.build is None:
            return DspCore(**kwargs)
        return self.build.make_core(**kwargs)

    def _prepare(self, words: List[int]) -> TraceContext:
        names = list(self.universe.comb_faults)
        core = self._make_core()
        clean_ports: List[int] = []
        checkpoints: Dict[int, CoreState] = {}
        block_records: Dict[int, Dict[str, Dict]] = {}
        n = len(words)
        for block_start in range(0, n, self.block_size):
            block_words = words[block_start:block_start + self.block_size]
            records: Dict[str, Dict] = {
                name: {"cycles": [], "inputs": {}} for name in names
            }
            for offset, word in enumerate(block_words):
                t = block_start + offset
                if offset % self.checkpoint_every == 0:
                    checkpoints[t] = core.state.copy()
                trace: Dict = {}
                clean_ports.append(core.step(word, trace=trace).port)
                for name in names:
                    activity = trace.get(name)
                    if activity is None:
                        continue
                    rec = records[name]
                    rec["cycles"].append(t)
                    for port, value in activity.inputs.items():
                        rec["inputs"].setdefault(port, []).append(value)
            block_records[block_start] = records
        return TraceContext(
            words=words, clean_ports=clean_ports, checkpoints=checkpoints,
            block_records=block_records, block_size=self.block_size,
        )

    # ------------------------------------------------------------------
    def grade_comb_fault(self, ctx: TraceContext, name: str, fault: Fault,
                         continuous: bool = True) -> Optional[int]:
        """First cycle at which ``fault`` is detected, or ``None``.

        ``continuous=False`` skips the tier-2 gate-level continuous
        injection — the purely behavioural mode the campaign runner
        degrades to when the exact check repeatedly times out.
        """
        with obs.section("sim.hier.grade_comb"):
            return self._grade_comb_fault(ctx, name, fault, continuous)

    def _grade_comb_fault(self, ctx: TraceContext, name: str, fault: Fault,
                          continuous: bool) -> Optional[int]:
        from repro.logic.simulator import unpack_output

        sim = self.universe.comb_simulators[name]
        spec = self.universe.spec(name)
        output_nets = sim.netlist.buses[spec.output_bus]
        for block_start in ctx.block_starts:
            rec = ctx.block_records[block_start].get(name)
            if rec is None or not rec["cycles"]:
                continue
            cycles: List[int] = rec["cycles"]
            n_patterns = len(cycles)
            good = ctx.good_values(sim, name, block_start)
            detected_mask, changed = sim.simulate_fault(fault, good,
                                                        n_patterns)
            if not detected_mask:
                continue
            # Propagation stays within the excitation's block, matching
            # the original block-at-a-time grading exactly.
            limit = ctx.block_end(block_start)
            output_bits = [changed.get(n, good[n]) for n in output_nets]
            # Tier 1 — cheap single-cycle injections.  Spread the start
            # attempts across the block: consecutive excitations usually
            # sit in the same loop context, so retrying the immediate
            # neighbour rarely helps.
            indices = _set_bit_positions(detected_mask)
            for idx in _spread(indices, self.max_starts_per_block):
                faulty_word = unpack_output(output_bits, idx)
                t = cycles[idx]
                if self._propagates(name, faulty_word, t, ctx, limit):
                    return t
            # Tier 2 — exact continuous injection (mixed-level): needed
            # when single-cycle errors are masked, e.g. absorbed by
            # limiter saturation until they accumulate in an accumulator.
            if continuous:
                for idx in _spread(indices, self.max_continuous_starts):
                    t = cycles[idx]
                    if self._propagates_continuous(name, spec, sim, fault,
                                                   t, ctx, limit):
                        return t
        return None

    def _fork_at(self, ctx: TraceContext, t: int) -> DspCore:
        """A clean core replayed up to (not including) cycle ``t``."""
        start = t - t % self.checkpoint_every
        fork = self._make_core(state=ctx.checkpoints[start].copy())
        for cycle in range(start, t):
            fork.step(ctx.words[cycle])
        return fork

    def _propagates(self, name, faulty_word, t, ctx: TraceContext,
                    limit: int) -> bool:
        """Does the recorded faulty output at cycle ``t`` reach the port?

        The erroneous word — taken from the pattern-parallel local fault
        simulation — is injected for cycle ``t`` only; the forked core then
        runs fault-free over the propagation window.  (Single-cycle
        injection slightly under-approximates a persistent fault; multiple
        start cycles per block compensate.  See the module docstring.)
        """
        fork = self._fork_at(ctx, t)
        end = min(limit, t + self.propagation_window)
        fork_port = fork.step(ctx.words[t],
                              overrides={name: faulty_word}).port
        if fork_port != ctx.clean_ports[t]:
            return True
        for cycle in range(t + 1, end):
            if fork.step(ctx.words[cycle]).port != ctx.clean_ports[cycle]:
                return True
        return False

    def _propagates_continuous(self, name, spec, sim, fault, t,
                               ctx: TraceContext, limit: int) -> bool:
        """Exact mixed-level check: the component's output is overridden
        *every* cycle of the window with its gate-level faulty evaluation
        under the fork's live inputs."""
        obs.incr("sim.hier.tier2_checks")
        fork = self._fork_at(ctx, t)

        def faulty_output(inputs: Dict[str, int]) -> int:
            return sim.faulty_output_word(fault, inputs, spec.output_bus)

        overrides = {name: faulty_output}
        end = min(limit, t + self.propagation_window)
        for cycle in range(t, end):
            if fork.step(ctx.words[cycle], overrides=overrides).port \
                    != ctx.clean_ports[cycle]:
                return True
        return False

    # ------------------------------------------------------------------
    def grade_storage_fault(self, ctx: TraceContext, fault: StorageFault,
                            max_cycles: Optional[int] = None
                            ) -> Optional[int]:
        """Differential word-level run for one storage fault."""
        with obs.section("sim.hier.grade_storage"):
            limit = len(ctx.words) if max_cycles is None \
                else min(max_cycles, len(ctx.words))
            faulty = storage_fault_core(fault, build=self.build)
            for t in range(limit):
                if faulty.step(ctx.words[t]).port != ctx.clean_ports[t]:
                    return t
            return None
