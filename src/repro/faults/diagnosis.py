"""Fault diagnosis from a failing self-test response.

A production self-test normally compares one MISR signature; when a part
fails, diagnosis asks *which* defect explains the observed behaviour.
This module implements classic effect-cause diagnosis over the project's
fault universe:

1. run the self-test stream fault-free and index every fault by the first
   cycle at which it is detected (one hierarchical fault-simulation pass —
   the *fault dictionary*);
2. given an observed (failing) output stream, shortlist the faults whose
   first-detection cycle matches the first observed mismatch;
3. re-simulate each shortlisted fault exactly (storage faults by word-level
   models, combinational faults by continuous mixed-level injection) and
   rank candidates by how precisely their predicted response matches the
   observation.

A stuck-at defect that is in the modelled universe diagnoses to its
equivalence class with score 1.0; out-of-model defects rank by closeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsp.core import DspCore
from repro.faults.hierarchical import (
    ComponentFault,
    DspFaultUniverse,
    HierarchicalFaultSimulator,
    HierarchicalResult,
    StorageFault,
    storage_fault_core,
)
from repro.runtime.errors import ConfigError


@dataclass(frozen=True)
class DiagnosisCandidate:
    """One ranked explanation of the observed failure."""

    fault: object               # ComponentFault | StorageFault
    score: float                # fraction of cycles predicted exactly
    first_mismatch: Optional[int]

    def describe(self) -> str:
        return f"{self.fault.describe()} (match {self.score:.1%})"


class FaultDiagnoser:
    """Effect-cause diagnosis against a fixed self-test vector stream."""

    def __init__(self, words: Sequence[int],
                 universe: Optional[DspFaultUniverse] = None,
                 simulator: Optional[HierarchicalFaultSimulator] = None,
                 cycle_window: int = 6):
        self.words = list(words)
        sim = simulator if simulator is not None else \
            HierarchicalFaultSimulator(universe=universe)
        self.universe = sim.universe
        self.dictionary: HierarchicalResult = sim.run(self.words)
        self.cycle_window = cycle_window
        self.golden = self._clean_response()
        self._by_cycle: Dict[int, List[object]] = {}
        for fault, cycle in self.dictionary.first_detect.items():
            if cycle is not None:
                self._by_cycle.setdefault(cycle, []).append(fault)

    # ------------------------------------------------------------------
    def _clean_response(self) -> List[int]:
        core = DspCore()
        return [core.step(word).port for word in self.words]

    def faulty_response(self, fault) -> List[int]:
        """The exact output stream of the core carrying ``fault``."""
        if isinstance(fault, StorageFault):
            core = storage_fault_core(fault)
            return [core.step(word).port for word in self.words]
        if not isinstance(fault, ComponentFault):
            raise TypeError(f"cannot simulate {fault!r}")
        sim = self.universe.comb_simulators[fault.component]
        from repro.dsp.components import component_by_name
        spec = component_by_name(fault.component)

        def faulty_output(inputs: Dict[str, int]) -> int:
            return sim.faulty_output_word(fault.fault, inputs,
                                          spec.output_bus)

        core = DspCore()
        overrides = {fault.component: faulty_output}
        return [core.step(word, overrides=overrides).port
                for word in self.words]

    # ------------------------------------------------------------------
    def candidates_for(self, observed: Sequence[int]) -> List[object]:
        """Shortlist: faults first detected near the first mismatch."""
        first = next(
            (t for t, (got, want) in enumerate(zip(observed, self.golden))
             if got != want),
            None,
        )
        if first is None:
            return []
        shortlist: List[object] = []
        for cycle in range(max(0, first - self.cycle_window),
                           first + self.cycle_window + 1):
            shortlist.extend(self._by_cycle.get(cycle, []))
        return shortlist

    def diagnose(self, observed: Sequence[int],
                 top_k: int = 5) -> List[DiagnosisCandidate]:
        """Rank the faults best explaining ``observed``.

        ``observed`` must have the same length as the diagnosis stream.
        An empty result means the response is clean or no modelled fault
        is detected near the first mismatch (an out-of-model defect).
        """
        if len(observed) != len(self.words):
            raise ConfigError(
                f"observed response has {len(observed)} cycles, "
                f"the diagnosis stream has {len(self.words)}"
            )
        ranked: List[DiagnosisCandidate] = []
        for fault in self.candidates_for(observed):
            predicted = self.faulty_response(fault)
            matches = sum(p == o for p, o in zip(predicted, observed))
            first = next(
                (t for t, (p, g) in enumerate(zip(predicted, self.golden))
                 if p != g),
                None,
            )
            ranked.append(DiagnosisCandidate(
                fault=fault,
                score=matches / len(observed),
                first_mismatch=first,
            ))
        ranked.sort(key=lambda c: -c.score)
        return ranked[:top_k]

    # ------------------------------------------------------------------
    def diagnose_from_signatures(self, observed_signatures,
                                 top_k: int = 10) -> List[DiagnosisCandidate]:
        """Diagnosis when only interval signatures were captured.

        Without the raw stream only the *first failing interval* is known
        (see :mod:`repro.bist.signatures`); candidates are the faults first
        detected inside that cycle window, ranked by how early they fire.
        """
        from repro.bist.signatures import (
            diagnose_interval,
            interval_signatures,
        )
        golden = interval_signatures(
            self.golden, observed_signatures.interval,
            width=observed_signatures.width,
        )
        window = diagnose_interval(golden, observed_signatures)
        if window is None:
            return []
        start, end = window
        candidates: List[DiagnosisCandidate] = []
        for cycle in range(start, min(end, len(self.words))):
            for fault in self._by_cycle.get(cycle, []):
                candidates.append(DiagnosisCandidate(
                    fault=fault,
                    score=1.0 - (cycle - start) / max(1, end - start),
                    first_mismatch=cycle,
                ))
        candidates.sort(key=lambda c: -c.score)
        return candidates[:top_k]
