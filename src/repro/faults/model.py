"""Single stuck-at fault universe and equivalence collapsing.

Faults live on *nets* (every primary input, gate output and flip-flop
output), in both polarities.  Classic structural equivalence collapsing is
applied: a fault on the single-fanout input of a BUF/NOT merges with the
corresponding output fault, and the controlling-value input faults of
AND/OR/NAND/NOR gates merge with the gate's output fault.  Collapsing only
changes which fault *represents* an equivalence class; coverage is always
reported over the collapsed universe, like commercial tools do by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault: ``net`` stuck at ``stuck_at`` (0 or 1)."""

    net: int
    stuck_at: int

    def describe(self, netlist: Netlist) -> str:
        return f"{netlist.net_names[self.net]} sa{self.stuck_at}"


@dataclass
class FaultList:
    """A collapsed fault universe.

    ``faults`` holds one representative per equivalence class;
    ``class_sizes`` maps each representative to the size of its class, so
    reports can also quote uncollapsed totals.
    """

    netlist: Netlist
    faults: List[Fault]
    class_sizes: Dict[Fault, int] = field(default_factory=dict)

    @property
    def n_collapsed(self) -> int:
        return len(self.faults)

    @property
    def n_uncollapsed(self) -> int:
        return sum(self.class_sizes.get(f, 1) for f in self.faults)

    def describe(self, fault: Fault) -> str:
        return fault.describe(self.netlist)


def _fault_sites(netlist: Netlist) -> List[int]:
    """Nets that carry faults: PIs, gate outputs and DFF Qs."""
    sites = list(netlist.inputs)
    sites.extend(g.output for g in netlist.gates)
    sites.extend(d.q for d in netlist.dffs)
    return sites


def full_fault_list(netlist: Netlist) -> List[Fault]:
    """Both polarities on every fault site, uncollapsed."""
    faults: List[Fault] = []
    for net in _fault_sites(netlist):
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    return faults


#: For each collapsible gate type: (input fault polarity, output fault
#: polarity) pairs that are structurally equivalent.
_EQUIVALENCES = {
    GateType.BUF: ((0, 0), (1, 1)),
    GateType.NOT: ((0, 1), (1, 0)),
    GateType.AND: ((0, 0),),
    GateType.NAND: ((0, 1),),
    GateType.OR: ((1, 1),),
    GateType.NOR: ((1, 0),),
}


def collapse_faults(netlist: Netlist,
                    faults: Optional[Sequence[Fault]] = None) -> FaultList:
    """Equivalence-collapse a fault universe.

    Uses union-find over the equivalence pairs of :data:`_EQUIVALENCES`,
    restricted to gate inputs with fanout 1 (a fanout stem fault is not
    equivalent to any single branch fault).  Constant-generator outputs
    stuck at their own value are dropped as untestable-by-construction.
    """
    universe = list(faults) if faults is not None else full_fault_list(netlist)
    fanout_counts: Dict[int, int] = {}
    for gate in netlist.gates:
        for n in gate.inputs:
            fanout_counts[n] = fanout_counts.get(n, 0) + 1
    for dff in netlist.dffs:
        fanout_counts[dff.d] = fanout_counts.get(dff.d, 0) + 1

    parent: Dict[Fault, Fault] = {}

    def find(f: Fault) -> Fault:
        root = f
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(f, f) != f:
            parent[f], f = root, parent[f]
        return root

    def union(a: Fault, b: Fault) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # Keep the fault closer to the outputs as representative: the
            # gate output fault (b-side) wins.
            parent[ra] = rb

    in_universe: Set[Fault] = set(universe)
    for gate in netlist.gates:
        pairs = _EQUIVALENCES.get(gate.kind)
        if not pairs:
            continue
        for in_pol, out_pol in pairs:
            out_fault = Fault(gate.output, out_pol)
            if out_fault not in in_universe:
                continue
            for in_net in gate.inputs:
                if fanout_counts.get(in_net, 0) != 1:
                    continue
                in_fault = Fault(in_net, in_pol)
                if in_fault in in_universe:
                    union(in_fault, out_fault)

    untestable: Set[Fault] = set()
    for gate in netlist.gates:
        if gate.kind is GateType.CONST0:
            untestable.add(Fault(gate.output, 0))
        elif gate.kind is GateType.CONST1:
            untestable.add(Fault(gate.output, 1))

    class_sizes: Dict[Fault, int] = {}
    for f in universe:
        root = find(f)
        if root in untestable or f in untestable:
            continue
        class_sizes[root] = class_sizes.get(root, 0) + 1
    reps = sorted(class_sizes)
    return FaultList(netlist=netlist, faults=reps, class_sizes=class_sizes)
