"""Fault-parallel sequential fault simulation.

Packs one *fault machine* per pattern bit (bit 0 is the fault-free
machine) and steps all machines through the input sequence together; a
stuck net is pinned via per-bit forcing masks, so faulty state evolves
naturally through the flip-flops.  A fault is detected the first cycle any
primary output bit differs from the good machine's bit.

This is the reference-quality (exact) simulator used for small netlists —
the simple Fig. 1 datapath, individual components, and cross-validation of
the hierarchical core simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.logic.netlist import Netlist
from repro.logic.sequential import SequentialSimulator
from repro.faults.model import Fault, FaultList, collapse_faults
from repro.runtime.errors import ConfigError


@dataclass
class SeqFaultResult:
    """Outcome of a sequential fault-simulation run."""

    first_detect_cycle: Dict[Fault, Optional[int]]
    n_cycles: int

    @property
    def detected(self) -> List[Fault]:
        return [f for f, c in self.first_detect_cycle.items() if c is not None]

    @property
    def undetected(self) -> List[Fault]:
        return [f for f, c in self.first_detect_cycle.items() if c is None]


class SeqFaultSimulator:
    """Grades stuck-at faults of a sequential netlist against a stimulus."""

    def __init__(self, netlist: Netlist,
                 fault_list: Optional[FaultList] = None,
                 machines_per_pass: int = 63):
        self.netlist = netlist
        self.fault_list = fault_list or collapse_faults(netlist)
        if machines_per_pass < 1:
            raise ConfigError("machines_per_pass must be >= 1")
        self.machines_per_pass = machines_per_pass

    def _force_masks(self, chunk: Sequence[Fault],
                     n_patterns: int) -> Dict[int, Tuple[int, int]]:
        """Build per-net (and_mask, or_mask) pinning fault *k* to bit *k+1*."""
        full = (1 << n_patterns) - 1
        masks: Dict[int, Tuple[int, int]] = {}
        for k, fault in enumerate(chunk):
            bit = 1 << (k + 1)  # bit 0 is the good machine
            and_mask, or_mask = masks.get(fault.net, (full, 0))
            if fault.stuck_at:
                or_mask |= bit
            else:
                and_mask &= ~bit
            masks[fault.net] = (and_mask, or_mask)
        return masks

    def run_sequence(
        self,
        bus_sequences: Mapping[str, Sequence[int]],
        faults: Optional[Sequence[Fault]] = None,
        stop_when_all_detected: bool = True,
    ) -> SeqFaultResult:
        """Apply per-cycle word stimulus and grade ``faults`` against it."""
        targets = list(faults if faults is not None else self.fault_list.faults)
        lengths = {len(seq) for seq in bus_sequences.values()}
        if len(lengths) != 1:
            raise ConfigError("all input sequences must have equal length")
        n_cycles = lengths.pop()
        first_detect: Dict[Fault, Optional[int]] = {f: None for f in targets}

        for start in range(0, len(targets), self.machines_per_pass):
            chunk = targets[start:start + self.machines_per_pass]
            n_patterns = len(chunk) + 1
            full = (1 << n_patterns) - 1
            masks = self._force_masks(chunk, n_patterns)
            sim = SequentialSimulator(self.netlist, n_patterns=n_patterns)
            detected_bits = 0
            all_bits = full & ~1
            for t in range(n_cycles):
                packed_inputs: Dict[int, int] = {}
                for name, seq in bus_sequences.items():
                    word = seq[t]
                    for i, net in enumerate(self.netlist.buses[name]):
                        packed_inputs[net] = full if (word >> i) & 1 else 0
                values = sim.step(packed_inputs, force_masks=masks)
                diff = 0
                for out in self.netlist.outputs:
                    v = values[out]
                    good_broadcast = full if (v & 1) else 0
                    diff |= v ^ good_broadcast
                new = diff & all_bits & ~detected_bits
                if new:
                    for k, fault in enumerate(chunk):
                        if new & (1 << (k + 1)):
                            first_detect[fault] = t
                    detected_bits |= new
                    if stop_when_all_detected and detected_bits == all_bits:
                        break
        return SeqFaultResult(first_detect_cycle=first_detect, n_cycles=n_cycles)
