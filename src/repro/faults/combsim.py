"""Pattern-parallel single-fault combinational fault simulation.

The good machine is evaluated once per pattern block with every pattern
packed into integer bits.  Each still-undetected fault is then re-evaluated
only over its fanout cone (copy-on-write on top of the good values), and a
fault is detected on every pattern where any primary output differs.

Besides plain detection this module exposes :class:`LocalDetection` — the
per-pattern *faulty output words* — which is what the hierarchical core
fault simulator needs to know which erroneous value appears at a component
boundary on which cycle.

Cone propagation runs on one of two engines (``engine=`` at
construction): the interpreted per-gate walk, or the batched
compiled-cone engine (:mod:`repro.faults.batched`), which is bit-for-bit
identical and several times faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.runtime.errors import ConfigError
from repro.logic.gates import eval_gate
from repro.logic.netlist import Gate, Netlist
from repro.logic.simulator import CombSimulator, pack_patterns, unpack_output
from repro.faults.model import Fault, FaultList, collapse_faults


@dataclass
class LocalDetection:
    """Result of fault-simulating one fault over one pattern block.

    ``detected_mask`` packs, per pattern bit, whether any output differed;
    ``faulty_words`` maps output bus name → per-pattern faulty words (only
    for patterns whose bit is set in ``detected_mask``; other entries hold
    the good value).
    """

    fault: Fault
    detected_mask: int
    faulty_words: Dict[str, List[int]]


class CombFaultSimulator:
    """Fault-simulates a combinational netlist under stuck-at faults.

    Two fault-propagation engines share every entry point:

    * ``engine="interpreted"`` (default) — the original per-gate
      :func:`eval_gate` cone walk;
    * ``engine="batched"`` — compiled cone kernels with wide pattern
      blocks and mask-only fault dropping
      (:mod:`repro.faults.batched`), typically several times faster
      under sustained grading and bit-for-bit identical (enforced by
      the differential sweep).  Kernels compile adaptively: a site is
      walked interpreted until it has been excited more than the
      engine's compile threshold, so short-lived faults never pay
      compile time.

    ``block_width`` (batched only) sets the patterns-per-word target
    that :meth:`run_with_dropping` re-chunks its incoming blocks to.
    """

    def __init__(self, netlist: Netlist,
                 fault_list: Optional[FaultList] = None,
                 engine: str = "interpreted",
                 block_width: Optional[int] = None):
        from repro.faults.batched import ENGINES, BatchedConeEngine
        if netlist.dffs:
            raise ConfigError(
                f"netlist {netlist.name!r} is sequential; use SeqFaultSimulator"
            )
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown fault-simulation engine {engine!r}; "
                f"expected one of {ENGINES}"
            )
        self.netlist = netlist
        self.fault_list = fault_list or collapse_faults(netlist)
        self.sim = CombSimulator(netlist)
        from repro.runtime.cache import compiled_evaluator
        self._compiled = compiled_evaluator(netlist)
        self.engine = engine
        self.batched_engine = BatchedConeEngine(netlist, block_width) \
            if engine == "batched" else None
        self._cones: Dict[int, List[Gate]] = {}
        self._cone_outputs: Dict[int, List[int]] = {}
        output_set = set(netlist.outputs)
        self._output_set = output_set

    def _cone(self, net: int) -> Tuple[List[Gate], List[int]]:
        """Fanout cone of ``net`` (gates, observable outputs), cached."""
        if net not in self._cones:
            cone = self.netlist.transitive_fanout_gates(net)
            touched = {net} | {g.output for g in cone}
            self._cones[net] = cone
            self._cone_outputs[net] = [
                o for o in self.netlist.outputs if o in touched
            ]
        return self._cones[net], self._cone_outputs[net]

    # ------------------------------------------------------------------
    def good_values(self, bus_patterns: Mapping[str, Sequence[int]],
                    n_patterns: int) -> List[int]:
        """Evaluate the fault-free machine over a packed pattern block.

        Memoised by ``(netlist hash, pattern block)`` in the shared
        trace cache, so repeated grading passes over the same stimulus
        (metrics sweeps, re-prepared campaigns, pool workers) replay the
        good machine instead of re-simulating it.  The returned vector
        is shared — callers must not mutate it.
        """
        from repro.runtime.cache import cached_good_values

        def compute() -> List[int]:
            with obs.section("sim.comb.good_machine"):
                packed: Dict[int, int] = {}
                for name, words in bus_patterns.items():
                    for i, net in enumerate(self.netlist.buses[name]):
                        packed[net] = pack_patterns(words, i)
                return self._compiled.run(packed, n_patterns)

        return cached_good_values(self.netlist, bus_patterns, n_patterns,
                                  compute)

    def simulate_fault(self, fault: Fault, good: List[int],
                       n_patterns: int) -> Tuple[int, Dict[int, int]]:
        """Re-evaluate one fault's cone on top of good values.

        Returns ``(detected_mask, faulty_net_values)`` where the dict holds
        only the nets whose value changed.
        """
        width_mask = (1 << n_patterns) - 1
        stuck_value = width_mask if fault.stuck_at else 0
        if good[fault.net] == stuck_value:
            return 0, {}  # fault never excited in this block
        if self.batched_engine is not None:
            kernel = self.batched_engine.kernel_or_none(fault.net)
            if kernel is not None:
                return kernel.propagate(good, stuck_value, width_mask)
        return self._cone_walk(fault, good, stuck_value, width_mask)

    def _cone_walk(self, fault: Fault, good: List[int], stuck_value: int,
                   width_mask: int) -> Tuple[int, Dict[int, int]]:
        """The interpreted gate-by-gate cone re-evaluation (no dispatch)."""
        cone, cone_outputs = self._cone(fault.net)
        changed: Dict[int, int] = {fault.net: stuck_value}
        for gate in cone:
            ins = [changed.get(i, good[i]) for i in gate.inputs]
            value = eval_gate(gate.kind, ins, width_mask)
            if value != good[gate.output]:
                changed[gate.output] = value
        detected = 0
        for out in cone_outputs:
            if out in changed:
                detected |= changed[out] ^ good[out]
        if fault.net in self._output_set:
            detected |= stuck_value ^ good[fault.net]
        return detected, changed

    def detect_mask(self, fault: Fault, good: List[int],
                    n_patterns: int) -> int:
        """Packed detected-pattern mask only (no faulty values).

        The batched engine's compiled kernels answer this without
        materialising the changed-net dict — the fault-dropping fast
        path.  During a site's warm-up (and always on the interpreted
        engine) it falls back to ``simulate_fault(...)[0]``.
        """
        if self.batched_engine is not None:
            width_mask = (1 << n_patterns) - 1
            stuck_value = width_mask if fault.stuck_at else 0
            if good[fault.net] == stuck_value:
                return 0
            kernel = self.batched_engine.kernel_or_none(fault.net)
            if kernel is not None:
                return kernel.detect(good, stuck_value, width_mask)
            return self._cone_walk(fault, good, stuck_value, width_mask)[0]
        return self.simulate_fault(fault, good, n_patterns)[0]

    # ------------------------------------------------------------------
    def detect(self, bus_patterns: Mapping[str, Sequence[int]],
               faults: Optional[Iterable[Fault]] = None) -> Dict[Fault, int]:
        """Run one block of patterns; returns fault → detected-pattern mask.

        Faults whose mask is zero were not detected by this block.
        """
        if not bus_patterns:
            raise ConfigError("no pattern buses given")
        lengths = {len(w) for w in bus_patterns.values()}
        if len(lengths) != 1:
            raise ConfigError("all pattern buses must have equal length")
        n_patterns = lengths.pop()
        with obs.section("sim.comb.detect"):
            good = self.good_values(bus_patterns, n_patterns)
            result: Dict[Fault, int] = {}
            for fault in (faults if faults is not None
                          else self.fault_list.faults):
                result[fault] = self.detect_mask(fault, good, n_patterns)
        obs.incr("sim.comb.faults_graded", len(result))
        return result

    def run_with_dropping(
        self,
        blocks: Iterable[Mapping[str, Sequence[int]]],
        faults: Optional[Sequence[Fault]] = None,
    ) -> Dict[Fault, Optional[int]]:
        """Simulate pattern blocks with fault dropping.

        Returns fault → index of the first detecting pattern (global index
        across blocks), or ``None`` if never detected.
        """
        remaining = list(faults if faults is not None else self.fault_list.faults)
        with obs.section("sim.comb.run_with_dropping"):
            if self.batched_engine is not None:
                from repro.faults.batched import drop_faults
                return drop_faults(self, blocks, remaining)
            first_detect: Dict[Fault, Optional[int]] = \
                {f: None for f in remaining}
            offset = 0
            for block in blocks:
                if not remaining:
                    break
                n_patterns = len(next(iter(block.values())))
                good = self.good_values(block, n_patterns)
                still: List[Fault] = []
                for fault in remaining:
                    mask, _ = self.simulate_fault(fault, good, n_patterns)
                    if mask:
                        first_detect[fault] = \
                            offset + (mask & -mask).bit_length() - 1
                    else:
                        still.append(fault)
                remaining = still
                offset += n_patterns
        return first_detect

    def faulty_output_word(self, fault: Fault,
                           input_words: Mapping[str, int],
                           output_bus: str) -> int:
        """Single-pattern faulty evaluation: one input word per bus in,
        the faulty value of ``output_bus`` out.  Used by mixed-level
        propagation (continuous fault injection inside the behavioural
        core)."""
        good = self.good_values(
            {name: [word] for name, word in input_words.items()}, 1
        )
        _, changed = self.simulate_fault(fault, good, 1)
        nets = self.netlist.buses[output_bus]
        bits = [changed.get(n, good[n]) for n in nets]
        return unpack_output(bits, 0)

    def local_detection(self, fault: Fault,
                        bus_patterns: Mapping[str, Sequence[int]],
                        output_buses: Sequence[str]) -> LocalDetection:
        """Detection mask plus per-pattern faulty output words for ``fault``."""
        n_patterns = len(next(iter(bus_patterns.values())))
        good = self.good_values(bus_patterns, n_patterns)
        mask, changed = self.simulate_fault(fault, good, n_patterns)
        faulty_words: Dict[str, List[int]] = {}
        for name in output_buses:
            nets = self.netlist.buses[name]
            bits = [changed.get(n, good[n]) for n in nets]
            faulty_words[name] = [
                unpack_output(bits, k) for k in range(n_patterns)
            ]
        return LocalDetection(fault=fault, detected_mask=mask,
                              faulty_words=faulty_words)
