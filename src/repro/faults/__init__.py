"""Stuck-at fault modelling and fault simulation.

* :mod:`repro.faults.model` — the single-stuck-at fault universe over a
  netlist, with classic equivalence collapsing.
* :mod:`repro.faults.combsim` — pattern-parallel single-fault propagation
  over combinational netlists (per-fault fanout-cone re-evaluation).
* :mod:`repro.faults.seqsim` — fault-parallel sequential fault simulation
  (one fault machine per packed bit) for full-netlist grading.
* :mod:`repro.faults.coverage` — fault/test coverage bookkeeping, matching
  the fault-coverage vs test-coverage distinction the paper reports.
* :mod:`repro.faults.hierarchical` — the Tetramax substitute used for the
  full DSP core: component-local gate-level detection plus exact
  behavioural error propagation to the core output.
"""

from repro.faults.model import (
    Fault,
    FaultList,
    full_fault_list,
    collapse_faults,
)
from repro.faults.combsim import CombFaultSimulator, LocalDetection
from repro.faults.seqsim import SeqFaultSimulator
from repro.faults.coverage import CoverageReport

__all__ = [
    "Fault",
    "FaultList",
    "full_fault_list",
    "collapse_faults",
    "CombFaultSimulator",
    "LocalDetection",
    "SeqFaultSimulator",
    "CoverageReport",
]
